//! # dahlia-backend
//!
//! The two backends of the Dahlia compiler:
//!
//! * [`cpp::emit_cpp`] — annotated Vivado-HLS-style C++ (the real Dahlia
//!   compiler's output format, §5.1);
//! * [`lower::lower`] — the [`hls_sim`] kernel IR consumed by this
//!   repository's traditional-HLS toolchain simulator, which stands in for
//!   Vivado HLS / SDAccel in the evaluation.
//!
//! ```
//! use dahlia_core::parse;
//! use dahlia_backend::{emit_cpp, lower};
//!
//! let p = parse("let A: float[16 bank 4]; let B: float[16 bank 4];
//!                for (let i = 0..16) unroll 4 { B[i] := A[i] * 2.0; }").unwrap();
//! dahlia_core::typecheck(&p).unwrap();
//! let cpp = emit_cpp(&p, "scale");
//! assert!(cpp.contains("#pragma HLS UNROLL factor=4"));
//! let est = hls_sim::estimate(&lower(&p, "scale"));
//! assert!(est.correct);
//! ```

pub mod cpp;
pub mod lower;

pub use cpp::emit_cpp;
pub use lower::{classify_idx, lower};
