//! Lowering a (type-checked) Dahlia program to the [`hls_sim`] kernel IR.
//!
//! Views are inlined first (`dahlia_core::desugar::inline_views`), so every
//! access targets a physical memory with an affine-or-dynamic index. Loop
//! unrolling survives as the IR's per-loop unroll attribute — this is the
//! path on which the toolchain simulator "sees" exactly the directives the
//! real Dahlia compiler would emit as `#pragma HLS` hints.

use dahlia_core::ast::{BinOp, Cmd, Expr, Id, MemType, Program, Type};
use dahlia_core::check::const_eval;
use dahlia_core::desugar::inline_views;
use dahlia_core::SymbolSet;
use hls_sim::{Access, ArrayDecl, Idx, Kernel, Loop, Op, OpKind, Stmt};

/// Lower a program to a kernel for estimation.
///
/// The program should already have passed [`dahlia_core::typecheck`]; the
/// lowering itself is total and treats unknown constructs conservatively.
pub fn lower(prog: &Program, name: &str) -> Kernel {
    let p = inline_views(prog);
    let mut lw = Lower {
        arrays: Vec::new(),
        float_arrays: SymbolSet::default(),
        float_vars: SymbolSet::default(),
    };
    for d in &p.decls {
        lw.add_array(d.name, &d.ty);
    }
    lw.collect_arrays(&p.body);
    let body = lw.cmds(&p.body);
    let mut k = Kernel::new(name);
    k.arrays = lw.arrays;
    k.body = body;
    k
}

struct Lower {
    arrays: Vec<ArrayDecl>,
    float_arrays: SymbolSet,
    /// Scalar variables known to hold floating-point values.
    float_vars: SymbolSet,
}

impl Lower {
    fn add_array(&mut self, name: Id, m: &MemType) {
        let dims: Vec<u64> = m.dims.iter().map(|d| d.size).collect();
        let parts: Vec<u64> = m.dims.iter().map(|d| d.banks).collect();
        let (bits, is_float) = match *m.elem {
            Type::Float => (32, true),
            Type::Double => (64, true),
            Type::Bit(n) | Type::UBit(n) => (n, false),
            Type::Bool => (1, false),
            _ => (32, false),
        };
        if is_float {
            self.float_arrays.insert(name);
        }
        self.arrays.push(
            ArrayDecl::new(name.as_str(), bits, &dims)
                .partitioned(&parts)
                .with_ports(m.ports),
        );
    }

    /// Pre-collect every `let`-declared memory so accesses can resolve
    /// element types regardless of statement order.
    fn collect_arrays(&mut self, c: &Cmd) {
        match c {
            Cmd::Let {
                name,
                ty: Some(Type::Mem(m)),
                ..
            } => self.add_array(*name, m),
            Cmd::Seq(cs) | Cmd::Par(cs) => cs.iter().for_each(|c| self.collect_arrays(c)),
            Cmd::If {
                then_branch,
                else_branch,
                ..
            } => {
                self.collect_arrays(then_branch);
                if let Some(e) = else_branch {
                    self.collect_arrays(e);
                }
            }
            Cmd::While { body, .. } => self.collect_arrays(body),
            Cmd::For { body, combine, .. } => {
                self.collect_arrays(body);
                if let Some(c) = combine {
                    self.collect_arrays(c);
                }
            }
            _ => {}
        }
    }

    fn cmds(&mut self, c: &Cmd) -> Vec<Stmt> {
        match c {
            Cmd::Skip | Cmd::View { .. } => Vec::new(),
            Cmd::Seq(cs) | Cmd::Par(cs) => cs.iter().flat_map(|c| self.cmds(c)).collect(),
            Cmd::Let {
                name,
                ty,
                init: Some(e),
                ..
            } => {
                if matches!(ty, Some(Type::Float | Type::Double)) || self.is_float(e) {
                    self.float_vars.insert(*name);
                }
                self.stmt_ops(&[e], None)
            }
            Cmd::Assign { rhs: e, .. } | Cmd::Expr(e) => self.stmt_ops(&[e], None),
            Cmd::Let { .. } => Vec::new(),
            Cmd::Store { mem, idxs, rhs, .. } => {
                self.stmt_ops(&[rhs], Some(Access::new(mem.as_str(), self.idxs(idxs))))
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                ..
            } => {
                let mut stmts = if target_idxs.is_empty() {
                    self.stmt_ops(&[rhs], None)
                } else {
                    let acc = Access::new(target.as_str(), self.idxs(target_idxs));
                    let mut s = self.stmt_ops(&[rhs], Some(acc.clone()));
                    // Read-modify-write: the read side of the reducer.
                    s.push(Op::compute(OpKind::Copy).read(acc).into_stmt());
                    s
                };
                // The fold operator itself.
                let is_f = self.is_float(rhs)
                    || self.float_vars.contains(target)
                    || (!target_idxs.is_empty() && self.float_arrays.contains(target));
                let kind = self.bin_kind(op.op(), is_f);
                stmts.push(Op::compute(kind).into_stmt());
                stmts
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                // HLS synthesizes both branches plus a select.
                let mut out = self.stmt_ops(&[cond], None);
                out.push(Op::compute(OpKind::Logic).into_stmt());
                out.extend(self.cmds(then_branch));
                if let Some(e) = else_branch {
                    out.extend(self.cmds(e));
                }
                out
            }
            Cmd::While { cond, body, .. } => {
                // Unknown trip count: a conservative fixed estimate.
                let mut l = Loop::new("__w", 16);
                for s in self.stmt_ops(&[cond], None) {
                    l.body.push(s);
                }
                l.body.extend(self.cmds(body));
                vec![l.into_stmt()]
            }
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                ..
            } => {
                let mut l = Loop::new(var.as_str(), (hi - lo).max(0) as u64).unrolled(*unroll);
                l.body = self.cmds(body);
                if let Some(c) = combine {
                    l.body.extend(self.cmds(c));
                }
                vec![l.into_stmt()]
            }
        }
    }

    /// Build the ops for one statement: reads collected from `exprs`, the
    /// optional `write` attached to the first op.
    fn stmt_ops(&mut self, exprs: &[&Expr], write: Option<Access>) -> Vec<Stmt> {
        let mut kinds = Vec::new();
        let mut reads = Vec::new();
        for e in exprs {
            self.walk_expr(e, self.is_float(e), &mut kinds, &mut reads);
        }
        if kinds.is_empty() && (write.is_some() || !reads.is_empty()) {
            kinds.push(OpKind::Copy);
        }
        let mut out = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            let mut op = Op::compute(*k);
            if i == 0 {
                op.reads = std::mem::take(&mut reads);
                if let Some(w) = write.clone() {
                    op.writes.push(w);
                }
            }
            out.push(op.into_stmt());
        }
        out
    }

    fn walk_expr(&self, e: &Expr, float: bool, kinds: &mut Vec<OpKind>, reads: &mut Vec<Access>) {
        match e {
            Expr::Bin { op, lhs, rhs, .. } => {
                kinds.push(self.bin_kind(*op, float));
                self.walk_expr(lhs, float, kinds, reads);
                self.walk_expr(rhs, float, kinds, reads);
            }
            Expr::Un { arg, .. } => {
                kinds.push(OpKind::Logic);
                self.walk_expr(arg, float, kinds, reads);
            }
            Expr::Access { mem, idxs, .. } => {
                reads.push(Access::new(mem.as_str(), self.idxs(idxs)));
                // Index computations contribute logic too, but only the
                // non-trivial ones show up as datapath.
            }
            Expr::Call { args, .. } => {
                kinds.push(OpKind::IntAlu);
                for a in args {
                    self.walk_expr(a, float, kinds, reads);
                }
            }
            _ => {}
        }
    }

    fn bin_kind(&self, op: BinOp, float: bool) -> OpKind {
        match op {
            BinOp::Add | BinOp::Sub => {
                if float {
                    OpKind::FAdd
                } else {
                    OpKind::IntAlu
                }
            }
            BinOp::Mul => {
                if float {
                    OpKind::FMul
                } else {
                    OpKind::IntMul
                }
            }
            BinOp::Div | BinOp::Mod => {
                if float {
                    OpKind::FDiv
                } else {
                    OpKind::IntMul
                }
            }
            _ => OpKind::Logic,
        }
    }

    /// Does this expression compute in floating point?
    fn is_float(&self, e: &Expr) -> bool {
        match e {
            Expr::LitFloat { .. } => true,
            Expr::Var { name, .. } => self.float_vars.contains(name),
            Expr::Access { mem, .. } => self.float_arrays.contains(mem),
            Expr::Bin { lhs, rhs, .. } => self.is_float(lhs) || self.is_float(rhs),
            Expr::Un { arg, .. } => self.is_float(arg),
            _ => false,
        }
    }

    fn idxs(&self, idxs: &[Expr]) -> Vec<Idx> {
        idxs.iter().map(classify_idx).collect()
    }
}

/// Classify an index expression into the IR's affine pattern language.
pub fn classify_idx(e: &Expr) -> Idx {
    if let Some(n) = const_eval(e) {
        return Idx::Const(n);
    }
    match e {
        Expr::Var { name, .. } => Idx::var(name.as_str()),
        Expr::Bin { op, lhs, rhs, .. } => {
            let (l, r) = (classify_idx(lhs), classify_idx(rhs));
            match (op, l, r) {
                // v + c / c + v
                (
                    BinOp::Add,
                    Idx::Affine {
                        var,
                        stride,
                        offset,
                    },
                    Idx::Const(c),
                )
                | (
                    BinOp::Add,
                    Idx::Const(c),
                    Idx::Affine {
                        var,
                        stride,
                        offset,
                    },
                ) => Idx::Affine {
                    var,
                    stride,
                    offset: offset + c,
                },
                // v - c
                (
                    BinOp::Sub,
                    Idx::Affine {
                        var,
                        stride,
                        offset,
                    },
                    Idx::Const(c),
                ) => Idx::Affine {
                    var,
                    stride,
                    offset: offset - c,
                },
                // k * v / v * k
                (
                    BinOp::Mul,
                    Idx::Affine {
                        var,
                        stride,
                        offset,
                    },
                    Idx::Const(c),
                )
                | (
                    BinOp::Mul,
                    Idx::Const(c),
                    Idx::Affine {
                        var,
                        stride,
                        offset,
                    },
                ) => Idx::Affine {
                    var,
                    stride: stride * c,
                    offset: offset * c,
                },
                // affine + affine over the same var
                (
                    BinOp::Add,
                    Idx::Affine {
                        var: v1,
                        stride: s1,
                        offset: o1,
                    },
                    Idx::Affine {
                        var: v2,
                        stride: s2,
                        offset: o2,
                    },
                ) if v1 == v2 => Idx::Affine {
                    var: v1,
                    stride: s1 + s2,
                    offset: o1 + o2,
                },
                _ => Idx::Dynamic,
            }
        }
        _ => Idx::Dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dahlia_core::parse;
    use dahlia_core::parse_expr;

    #[test]
    fn classifies_affine_indices() {
        assert_eq!(classify_idx(&parse_expr("i").unwrap()), Idx::var("i"));
        assert_eq!(
            classify_idx(&parse_expr("2*i + 1").unwrap()),
            Idx::Affine {
                var: "i".into(),
                stride: 2,
                offset: 1
            }
        );
        assert_eq!(
            classify_idx(&parse_expr("i + 3").unwrap()),
            Idx::Affine {
                var: "i".into(),
                stride: 1,
                offset: 3
            }
        );
        assert_eq!(classify_idx(&parse_expr("7").unwrap()), Idx::Const(7));
        assert_eq!(classify_idx(&parse_expr("i * j").unwrap()), Idx::Dynamic);
        assert_eq!(classify_idx(&parse_expr("4 - 1").unwrap()), Idx::Const(3));
    }

    #[test]
    fn lowers_banked_loop() {
        let p = parse(
            "let A: float[16 bank 4]; let B: float[16 bank 4];
             for (let i = 0..16) unroll 4 { B[i] := A[i] * 2.0; }",
        )
        .unwrap();
        let k = lower(&p, "scale");
        assert_eq!(k.arrays.len(), 2);
        assert_eq!(k.arrays[0].partition, vec![4]);
        match &k.body[0] {
            Stmt::Loop(l) => {
                assert_eq!(l.unroll, 4);
                assert_eq!(l.trips, 16);
                assert!(matches!(l.body[0], Stmt::Op(ref o) if o.kind == OpKind::FMul));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn views_are_inlined_before_lowering() {
        let p = parse(
            "let A: float[8 bank 4];
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }",
        )
        .unwrap();
        let k = lower(&p, "v");
        // Only the physical array remains; the access resolves to it.
        assert_eq!(k.arrays.len(), 1);
        match &k.body[0] {
            Stmt::Loop(l) => match &l.body[0] {
                Stmt::Op(o) => assert_eq!(o.reads[0].array, "A"),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn combine_ops_folded_into_loop() {
        let p = parse(
            "let A: float[8 bank 2]; let B: float[8 bank 2];
             let dot = 0.0;
             for (let i = 0..8) unroll 2 {
               let v = A[i] * B[i];
             } combine { dot += v; }",
        )
        .unwrap();
        let k = lower(&p, "dot");
        match &k.body[0] {
            Stmt::Loop(l) => {
                let has_fadd = l
                    .body
                    .iter()
                    .any(|s| matches!(s, Stmt::Op(o) if o.kind == OpKind::FAdd));
                assert!(has_fadd, "reduction adder present: {:?}", l.body);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn estimation_pipeline_end_to_end() {
        let src = |u: u64| {
            format!(
                "let A: float[64 bank 8]; let B: float[64 bank 8];
                 for (let i = 0..64) unroll {u} {{ B[i] := A[i] * 2.0; }}"
            )
        };
        let fast = hls_sim::estimate(&lower(&parse(&src(8)).unwrap(), "k8"));
        let slow = hls_sim::estimate(&lower(&parse(&src(1)).unwrap(), "k1"));
        assert!(
            fast.cycles * 4 < slow.cycles,
            "{} vs {}",
            fast.cycles,
            slow.cycles
        );
    }
}
