//! `cargo bench --bench frontend` — the front-end hot-path benchmark.
//!
//! Measures parse/check/desugar/lower per MachSuite kernel plus a cold
//! gemm-blocked DSE sweep (see [`dahlia_bench::frontend`]), prints the
//! per-stage numbers, and updates `BENCH_frontend.json` at the
//! repository root: the first ever run pins the `baseline` block, later
//! runs rewrite `current` and the derived `speedup` ratios.
//!
//! Flags (after `--`):
//!   `--quick`  coarse sweep stride and few samples (the CI smoke mode);
//!   `--test`   passed by `cargo test` to harness-less benches: runs
//!              quick and skips the trajectory-file write.

use dahlia_bench::frontend::{self, Effort};
use dahlia_server::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode || args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };

    let report = frontend::run(effort);
    println!(
        "frontend ({} mode): parse {:>10.1} ns | check {:>10.1} ns | desugar {:>10.1} ns | lower {:>10.1} ns",
        if quick { "quick" } else { "full" },
        report.parse_ns,
        report.check_ns,
        report.desugar_ns,
        report.lower_ns
    );
    println!(
        "cold DSE sweep: {} points ({} accepted) in {:.3} ms",
        report.sweep_points,
        report.sweep_accepted,
        report.dse_sweep_ns / 1e6
    );
    println!(
        "lower-only warm pass over the {} accepted ASTs: {:>10.1} ns",
        report.sweep_accepted, report.lower_warm_ns
    );

    if test_mode {
        println!("test-mode: skipping BENCH_frontend.json update");
        return;
    }

    let path = frontend::trajectory_path();
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| Json::parse(&s).ok());
    let merged = frontend::merge_into_trajectory(existing.as_ref(), &report);
    std::fs::write(&path, merged.emit() + "\n").expect("write BENCH_frontend.json");
    if let Some(sp) = merged.get("speedup").and_then(|s| s.get("dse_sweep")) {
        println!(
            "recorded {} (dse_sweep speedup vs baseline: {:.2}x)",
            path.display(),
            sp.as_f64().unwrap_or(0.0)
        );
    }
}
