//! `cargo bench --bench gateway` — cluster latency benchmark.
//!
//! Drives the MachSuite batch through live in-process clusters (real
//! TCP shards behind a [`dahlia_gateway::Gateway`]) and reduces each
//! scenario's per-request latencies to `p50`/`p99`/`mean` (nearest
//! rank over the full sample set — see
//! [`dahlia_bench::cluster::LatencyStats`]), then updates
//! `BENCH_gateway.json` at the repository root: the first run of each
//! scenario pins its `baseline`, later runs rewrite `current` and the
//! derived `speedup` ratios.
//!
//! Scenarios:
//!
//! * `cold_2shard` — every request computes somewhere (tail dominated
//!   by the slowest kernel's pipeline);
//! * `warm_{1,2,4}shard` — repeated hot requests behind one front
//!   door: the latency floor of the front door as shipped (binary v1
//!   shard hop + gateway admission cache);
//! * `warm_2shard_binary` — the warm batch over the binary v1 hop with
//!   the admission cache **off**: isolates the wire-format win from
//!   the cache win;
//! * `closed_loop_2shard` — closed-loop submitters hammering the warm
//!   cluster for the full measured window; reports throughput (req/s)
//!   beside the latency percentiles;
//! * `warm_2shard_traced` — the same warm batch with request-scoped
//!   tracing on every request (tracing bypasses the admission cache):
//!   the observability overhead headline;
//! * `warm_2shard_slowlog` — the warm batch with the slow threshold at
//!   0 ms and the admission cache off, so every request is routed and
//!   captured into the slow-request log: pins the cost of the
//!   always-on span recording plus a worst-case capture rate;
//! * `warm_2shard_telemetry` — the warm batch with durable telemetry
//!   on (50 ms sampling into an on-disk ring, one armed alert rule,
//!   warm-key ledger checkpoints) and the admission cache off: pins
//!   the cost of the sampler running beside the routed hot path;
//! * `warm_local_fallback` — the empty-cluster degenerate case, served
//!   by the gateway's embedded local server.
//!
//! Flags (after `--`):
//!   `--quick`      fewer rounds and shard widths (the CI smoke mode);
//!   `--rounds N`   override the measured round count (default 2 in
//!                  quick mode, 8 in full mode);
//!   `--baseline`   pin every gateway to the pre-optimization shape —
//!                  v0 JSON shard hop, admission cache off — so a
//!                  fresh `BENCH_gateway.json` records the JSON
//!                  transport as `baseline` and a following normal run
//!                  records the shipped transport as `current`;
//!   `--test`       passed by `cargo test` to harness-less benches:
//!                  runs the cheapest scenario once and skips the
//!                  trajectory write.

use dahlia_bench::cluster::{
    drive, drive_latencies, gateway_trajectory_path, machsuite_requests, merge_gateway_trajectory,
    shutdown_shards, spawn_shards, LatencyStats,
};
use dahlia_gateway::GatewayConfig;
use dahlia_server::json::Json;

const SHARD_THREADS: usize = 2;
const SUBMITTERS: usize = 8;

/// Which transport shape a scenario's gateway runs with.
#[derive(Clone, Copy, PartialEq)]
enum Transport {
    /// The shipped default: v1 binary shard hop + admission cache.
    Default,
    /// v1 binary hop, admission cache off — isolates the wire format.
    BinaryNoCache,
    /// The pre-optimization shape (`--baseline`): v0 JSON shard hop,
    /// admission cache off.
    Json,
}

impl Transport {
    fn apply(self, cfg: GatewayConfig) -> GatewayConfig {
        match self {
            Transport::Default => cfg,
            Transport::BinaryNoCache => cfg.admission_cache(0),
            Transport::Json => cfg.wire_max(0).admission_cache(0),
        }
    }

    /// In `--baseline` mode every scenario degrades to the JSON shape;
    /// otherwise the scenario's own choice stands.
    fn or_baseline(self, baseline: bool) -> Transport {
        if baseline {
            Transport::Json
        } else {
            self
        }
    }
}

/// Cold batch through `shards` shards: one sample per request, first
/// touch, then tear the cluster down.
fn cold_scenario(shards: usize, transport: Transport) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let gateway = transport
        .apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())))
        .build();
    let requests = machsuite_requests();
    let samples = drive_latencies(&gateway, &requests, SUBMITTERS, false);
    drop(gateway);
    shutdown_shards(cluster);
    LatencyStats::from_samples(samples)
}

/// Warm batch through `shards` shards: one throwaway round warms every
/// shard, then `rounds` measured rounds, traced or not. With
/// `capture_all`, the slow threshold drops to 0 ms so the slow-request
/// log captures every request — the worst-case capture overhead. With
/// `telemetry`, the gateway samples durable telemetry to a scratch
/// on-disk ring every 50 ms with one armed alert rule — the cost of
/// the sampler thread beside the hot path.
fn warm_scenario(
    shards: usize,
    rounds: usize,
    traced: bool,
    capture_all: bool,
    telemetry: bool,
    transport: Transport,
) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let mut cfg = transport.apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())));
    if capture_all {
        cfg = cfg.slow_threshold_ms(0);
    }
    let tele_dir = telemetry.then(|| {
        let dir =
            std::env::temp_dir().join(format!("dahlia-bench-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create telemetry scratch dir");
        dir
    });
    if let Some(dir) = &tele_dir {
        cfg = cfg
            .telemetry_dir(dir)
            .telemetry_interval_ms(50)
            .alert_rule("window.error_rate > 0.5 for 1s");
    }
    let gateway = cfg.build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, traced));
    }
    drop(gateway);
    shutdown_shards(cluster);
    if let Some(dir) = tele_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    LatencyStats::from_samples(samples)
}

/// Closed-loop load: after a warming round, `SUBMITTERS` submitters
/// drive the batch back-to-back for `rounds` rounds while the whole
/// measured window is wall-clocked. Returns the latency percentiles
/// plus the achieved throughput in requests per second — the number
/// the latency scenarios cannot show.
fn closed_loop_scenario(shards: usize, rounds: usize, transport: Transport) -> (LatencyStats, f64) {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let gateway = transport
        .apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())))
        .build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, false));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(gateway);
    shutdown_shards(cluster);
    let throughput = samples.len() as f64 / wall.max(1e-9);
    (LatencyStats::from_samples(samples), throughput)
}

/// The empty-cluster floor: every request answered by the gateway's
/// embedded local server.
fn local_fallback_scenario(rounds: usize, transport: Transport) -> LatencyStats {
    let gateway = transport
        .apply(GatewayConfig::new(Vec::<String>::new()))
        .build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, false));
    }
    LatencyStats::from_samples(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode || args.iter().any(|a| a == "--quick");
    let baseline = args.iter().any(|a| a == "--baseline");
    let rounds = args
        .iter()
        .position(|a| a == "--rounds")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--rounds takes a positive integer")
        })
        .unwrap_or(if quick { 2 } else { 8 });

    let mut throughput: Option<f64> = None;
    let mut scenarios: Vec<(String, LatencyStats)> = Vec::new();
    if test_mode {
        scenarios.push((
            "warm_local_fallback".into(),
            local_fallback_scenario(1, Transport::Default),
        ));
    } else {
        let shipped = Transport::Default.or_baseline(baseline);
        scenarios.push(("cold_2shard".into(), cold_scenario(2, shipped)));
        let widths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
        for &shards in widths {
            scenarios.push((
                format!("warm_{shards}shard"),
                warm_scenario(shards, rounds, false, false, false, shipped),
            ));
        }
        scenarios.push((
            "warm_2shard_binary".into(),
            warm_scenario(
                2,
                rounds,
                false,
                false,
                false,
                Transport::BinaryNoCache.or_baseline(baseline),
            ),
        ));
        let (closed, reqs_per_sec) = closed_loop_scenario(2, rounds, shipped);
        throughput = Some(reqs_per_sec);
        scenarios.push(("closed_loop_2shard".into(), closed));
        scenarios.push((
            "warm_2shard_traced".into(),
            warm_scenario(2, rounds, true, false, false, shipped),
        ));
        let routed = Transport::BinaryNoCache.or_baseline(baseline);
        scenarios.push((
            "warm_2shard_slowlog".into(),
            warm_scenario(2, rounds, false, true, false, routed),
        ));
        scenarios.push((
            "warm_2shard_telemetry".into(),
            warm_scenario(2, rounds, false, false, true, routed),
        ));
        scenarios.push((
            "warm_local_fallback".into(),
            local_fallback_scenario(rounds, shipped),
        ));
    }

    for (name, s) in &scenarios {
        println!(
            "gateway/{name:<22} p50 {:>7} µs | p99 {:>7} µs | mean {:>7} µs | n {}",
            s.p50_us, s.p99_us, s.mean_us, s.requests
        );
    }
    if let Some(rate) = throughput {
        println!("gateway/closed_loop_2shard throughput {rate:.0} req/s");
    }
    if baseline {
        println!("baseline mode: v0 JSON shard hop, admission cache off");
    }

    if test_mode {
        println!("test-mode: skipping BENCH_gateway.json update");
        return;
    }

    let path = gateway_trajectory_path();
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| Json::parse(&s).ok());
    let merged = merge_gateway_trajectory(existing.as_ref(), &scenarios);
    std::fs::write(&path, merged.emit() + "\n").expect("write BENCH_gateway.json");
    println!("recorded {}", path.display());
}
