//! `cargo bench --bench gateway` — cluster latency benchmark.
//!
//! Drives the MachSuite batch through live in-process clusters (real
//! TCP shards behind a [`dahlia_gateway::Gateway`]) and reduces each
//! scenario's per-request latencies to `p50`/`p99`/`mean` (nearest
//! rank over the full sample set — see
//! [`dahlia_bench::cluster::LatencyStats`]), then updates
//! `BENCH_gateway.json` at the repository root: the first run of each
//! scenario pins its `baseline`, later runs rewrite `current` and the
//! derived `speedup` ratios.
//!
//! Scenarios:
//!
//! * `cold_2shard` — every request computes somewhere (tail dominated
//!   by the slowest kernel's pipeline);
//! * `warm_{1,2,4}shard` — repeated hot requests behind one front
//!   door: the latency floor of the front door as shipped (binary v1
//!   shard hop + gateway admission cache);
//! * `warm_2shard_binary` — the warm batch over the binary v1 hop with
//!   the admission cache **off**: isolates the wire-format win from
//!   the cache win;
//! * `closed_loop_2shard` — closed-loop submitters hammering the warm
//!   cluster for the full measured window; reports throughput (req/s)
//!   beside the latency percentiles;
//! * `warm_2shard_traced` — the same warm batch with request-scoped
//!   tracing on every request (tracing bypasses the admission cache):
//!   the observability overhead headline;
//! * `warm_2shard_slowlog` — the warm batch with the slow threshold at
//!   0 ms and the admission cache off, so every request is routed and
//!   captured into the slow-request log: pins the cost of the
//!   always-on span recording plus a worst-case capture rate;
//! * `warm_2shard_telemetry` — the warm batch with durable telemetry
//!   on (50 ms sampling into an on-disk ring, one armed alert rule,
//!   warm-key ledger checkpoints) and the admission cache off: pins
//!   the cost of the sampler running beside the routed hot path;
//! * `warm_local_fallback` — the empty-cluster degenerate case, served
//!   by the gateway's embedded local server;
//! * `sweep_4shard` / `sweep_single_node` — the strided gemm-blocked
//!   design-space sweep as one `{"op":"sweep"}` scatter through a warm
//!   4-shard cluster vs the same configurations through the
//!   single-node `dse::explore_configs` explorer. Each records the
//!   whole sweep's wall time as its single sample; the derived
//!   cluster-over-single-node ratio is pinned in the trajectory file's
//!   `sweep` section (the ≥ 3× acceptance headline).
//!
//! Flags (after `--`):
//!   `--quick`      fewer rounds and shard widths (the CI smoke mode);
//!   `--rounds N`   override the measured round count (default 2 in
//!                  quick mode, 8 in full mode);
//!   `--baseline`   pin every gateway to the pre-optimization shape —
//!                  v0 JSON shard hop, admission cache off — so a
//!                  fresh `BENCH_gateway.json` records the JSON
//!                  transport as `baseline` and a following normal run
//!                  records the shipped transport as `current`;
//!   `--test`       passed by `cargo test` to harness-less benches:
//!                  runs the cheapest scenario once and skips the
//!                  trajectory write.

use dahlia_bench::cluster::{
    drive, drive_latencies, gateway_trajectory_path, machsuite_requests, merge_gateway_trajectory,
    shutdown_shards, spawn_shards, LatencyStats,
};
use dahlia_gateway::GatewayConfig;
use dahlia_server::json::Json;

const SHARD_THREADS: usize = 2;
const SUBMITTERS: usize = 8;

/// Which transport shape a scenario's gateway runs with.
#[derive(Clone, Copy, PartialEq)]
enum Transport {
    /// The shipped default: v1 binary shard hop + admission cache.
    Default,
    /// v1 binary hop, admission cache off — isolates the wire format.
    BinaryNoCache,
    /// The pre-optimization shape (`--baseline`): v0 JSON shard hop,
    /// admission cache off.
    Json,
}

impl Transport {
    fn apply(self, cfg: GatewayConfig) -> GatewayConfig {
        match self {
            Transport::Default => cfg,
            Transport::BinaryNoCache => cfg.admission_cache(0),
            Transport::Json => cfg.wire_max(0).admission_cache(0),
        }
    }

    /// In `--baseline` mode every scenario degrades to the JSON shape;
    /// otherwise the scenario's own choice stands.
    fn or_baseline(self, baseline: bool) -> Transport {
        if baseline {
            Transport::Json
        } else {
            self
        }
    }
}

/// Cold batch through `shards` shards: one sample per request, first
/// touch, then tear the cluster down.
fn cold_scenario(shards: usize, transport: Transport) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let gateway = transport
        .apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())))
        .build();
    let requests = machsuite_requests();
    let samples = drive_latencies(&gateway, &requests, SUBMITTERS, false);
    drop(gateway);
    shutdown_shards(cluster);
    LatencyStats::from_samples(samples)
}

/// Warm batch through `shards` shards: one throwaway round warms every
/// shard, then `rounds` measured rounds, traced or not. With
/// `capture_all`, the slow threshold drops to 0 ms so the slow-request
/// log captures every request — the worst-case capture overhead. With
/// `telemetry`, the gateway samples durable telemetry to a scratch
/// on-disk ring every 50 ms with one armed alert rule — the cost of
/// the sampler thread beside the hot path.
fn warm_scenario(
    shards: usize,
    rounds: usize,
    traced: bool,
    capture_all: bool,
    telemetry: bool,
    transport: Transport,
) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let mut cfg = transport.apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())));
    if capture_all {
        cfg = cfg.slow_threshold_ms(0);
    }
    let tele_dir = telemetry.then(|| {
        let dir =
            std::env::temp_dir().join(format!("dahlia-bench-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create telemetry scratch dir");
        dir
    });
    if let Some(dir) = &tele_dir {
        cfg = cfg
            .telemetry_dir(dir)
            .telemetry_interval_ms(50)
            .alert_rule("window.error_rate > 0.5 for 1s");
    }
    let gateway = cfg.build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, traced));
    }
    drop(gateway);
    shutdown_shards(cluster);
    if let Some(dir) = tele_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    LatencyStats::from_samples(samples)
}

/// Closed-loop load: after a warming round, `SUBMITTERS` submitters
/// drive the batch back-to-back for `rounds` rounds while the whole
/// measured window is wall-clocked. Returns the latency percentiles
/// plus the achieved throughput in requests per second — the number
/// the latency scenarios cannot show.
fn closed_loop_scenario(shards: usize, rounds: usize, transport: Transport) -> (LatencyStats, f64) {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let gateway = transport
        .apply(GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())))
        .build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, false));
    }
    let wall = start.elapsed().as_secs_f64();
    drop(gateway);
    shutdown_shards(cluster);
    let throughput = samples.len() as f64 / wall.max(1e-9);
    (LatencyStats::from_samples(samples), throughput)
}

/// The distributed-sweep headline: every `stride`-th point of the
/// paper's 32,000-point gemm-blocked space, once as a `sweep` op
/// scattered across a warm 4-shard cluster and once through the
/// single-node [`dahlia_dse::explore_configs`] explorer over the
/// identical configurations. Returns `(cluster, single_node, points)`;
/// both latency stats carry the whole sweep's wall time as their one
/// sample, so `mean_us` *is* the sweep wall time.
fn sweep_scenarios(stride: u64) -> (LatencyStats, LatencyStats, u64) {
    use dahlia_server::{SessionHost as _, SweepOp};
    let banks = vec![1, 2, 3, 4];
    let unrolls = vec![1, 2, 4, 6, 8];
    let op = |id: &str| SweepOp {
        id: id.to_string(),
        name: "gemm_blocked".into(),
        template: dahlia_kernels::gemm::gemm_blocked_template(128, 8),
        params: vec![
            ("bank_m1_d1".into(), banks.clone()),
            ("bank_m1_d2".into(), banks.clone()),
            ("bank_m2_d1".into(), banks.clone()),
            ("bank_m2_d2".into(), banks.clone()),
            ("unroll_i".into(), unrolls.clone()),
            ("unroll_j".into(), unrolls.clone()),
            ("unroll_k".into(), unrolls.clone()),
        ],
        stage: "est".into(),
        stride,
        resume: false,
        prune: false,
        update_every: 0,
    };
    let cluster = spawn_shards(4, SHARD_THREADS);
    let gateway = GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())).build();
    let run = |id: &str| {
        let (tx, rx) = std::sync::mpsc::channel();
        gateway.dispatch_sweep(
            op(id),
            Box::new(move |line, done| {
                if done {
                    let _ = tx.send(line);
                }
            }),
        );
        rx.recv().expect("sweep summary line")
    };
    // One throwaway sweep computes every point once across the shards;
    // the measured sweep then pays only scatter + wire + front fold.
    run("sweep-warm");
    let t0 = std::time::Instant::now();
    let line = run("sweep-measured");
    let cluster_us = t0.elapsed().as_micros() as u64;
    let summary = Json::parse(&line).expect("sweep summary json");
    assert_eq!(
        summary.get("ok").and_then(Json::as_bool),
        Some(true),
        "{line}"
    );
    let points = summary
        .get("sweep")
        .and_then(|s| s.get("points_total"))
        .and_then(Json::as_u64)
        .expect("summary carries points_total");
    drop(gateway);
    shutdown_shards(cluster);

    // The identical strided slice, one node, no cluster help. Timed as
    // the whole job — planning included, exactly as the sweep op's
    // wall time above includes its own planner.
    let provider = dahlia_dse::DirectProvider::new();
    let t0 = std::time::Instant::now();
    let cfgs: Vec<_> = dahlia_bench::fig7::space()
        .iter()
        .step_by(stride.max(1) as usize)
        .collect();
    let planned = cfgs.len() as u64;
    let ex = dahlia_dse::explore_configs(cfgs, "gemm_blocked", &provider, |cfg| {
        dahlia_kernels::gemm::gemm_blocked_source(&dahlia_bench::fig7::params_of(cfg))
    });
    let single_us = t0.elapsed().as_micros() as u64;
    std::hint::black_box(ex.summary());
    assert_eq!(planned, points, "both sides must sweep the same slice");
    (
        LatencyStats::from_samples(vec![cluster_us]),
        LatencyStats::from_samples(vec![single_us]),
        points,
    )
}

/// The empty-cluster floor: every request answered by the gateway's
/// embedded local server.
fn local_fallback_scenario(rounds: usize, transport: Transport) -> LatencyStats {
    let gateway = transport
        .apply(GatewayConfig::new(Vec::<String>::new()))
        .build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, false));
    }
    LatencyStats::from_samples(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode || args.iter().any(|a| a == "--quick");
    let baseline = args.iter().any(|a| a == "--baseline");
    let rounds = args
        .iter()
        .position(|a| a == "--rounds")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .expect("--rounds takes a positive integer")
        })
        .unwrap_or(if quick { 2 } else { 8 });

    let mut throughput: Option<f64> = None;
    let mut sweep_summary: Option<(u64, u64, u64)> = None;
    let mut scenarios: Vec<(String, LatencyStats)> = Vec::new();
    if test_mode {
        scenarios.push((
            "warm_local_fallback".into(),
            local_fallback_scenario(1, Transport::Default),
        ));
    } else {
        let shipped = Transport::Default.or_baseline(baseline);
        scenarios.push(("cold_2shard".into(), cold_scenario(2, shipped)));
        let widths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
        for &shards in widths {
            scenarios.push((
                format!("warm_{shards}shard"),
                warm_scenario(shards, rounds, false, false, false, shipped),
            ));
        }
        scenarios.push((
            "warm_2shard_binary".into(),
            warm_scenario(
                2,
                rounds,
                false,
                false,
                false,
                Transport::BinaryNoCache.or_baseline(baseline),
            ),
        ));
        let (closed, reqs_per_sec) = closed_loop_scenario(2, rounds, shipped);
        throughput = Some(reqs_per_sec);
        scenarios.push(("closed_loop_2shard".into(), closed));
        scenarios.push((
            "warm_2shard_traced".into(),
            warm_scenario(2, rounds, true, false, false, shipped),
        ));
        let routed = Transport::BinaryNoCache.or_baseline(baseline);
        scenarios.push((
            "warm_2shard_slowlog".into(),
            warm_scenario(2, rounds, false, true, false, routed),
        ));
        scenarios.push((
            "warm_2shard_telemetry".into(),
            warm_scenario(2, rounds, false, false, true, routed),
        ));
        scenarios.push((
            "warm_local_fallback".into(),
            local_fallback_scenario(rounds, shipped),
        ));
        // Quick mode thins the space harder so CI stays in seconds.
        let (sweep4, sweep1, sweep_points) = sweep_scenarios(if quick { 401 } else { 101 });
        sweep_summary = Some((sweep4.mean_us, sweep1.mean_us, sweep_points));
        scenarios.push(("sweep_4shard".into(), sweep4));
        scenarios.push(("sweep_single_node".into(), sweep1));
    }

    for (name, s) in &scenarios {
        println!(
            "gateway/{name:<22} p50 {:>7} µs | p99 {:>7} µs | mean {:>7} µs | n {}",
            s.p50_us, s.p99_us, s.mean_us, s.requests
        );
    }
    if let Some(rate) = throughput {
        println!("gateway/closed_loop_2shard throughput {rate:.0} req/s");
    }
    if let Some((cluster_us, single_us, points)) = sweep_summary {
        println!(
            "gateway/sweep {points} points: 4-shard warm {cluster_us} µs vs single-node \
             {single_us} µs — {:.2}x",
            single_us as f64 / (cluster_us.max(1)) as f64
        );
    }
    if baseline {
        println!("baseline mode: v0 JSON shard hop, admission cache off");
    }

    if test_mode {
        println!("test-mode: skipping BENCH_gateway.json update");
        return;
    }

    let path = gateway_trajectory_path();
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| Json::parse(&s).ok());
    let mut merged = merge_gateway_trajectory(existing.as_ref(), &scenarios);
    if let (Some((cluster_us, single_us, points)), Json::Obj(fields)) = (sweep_summary, &mut merged)
    {
        // The headline cross-scenario ratio, pinned beside the
        // per-scenario trajectory: warm 4-shard sweep wall time over
        // the single-node explorer on the identical configurations.
        fields.push((
            "sweep".into(),
            dahlia_server::json::obj([
                ("points", Json::Num(points as f64)),
                ("cluster_4shard_us", Json::Num(cluster_us as f64)),
                ("single_node_us", Json::Num(single_us as f64)),
                (
                    "speedup",
                    Json::Num(single_us as f64 / (cluster_us.max(1)) as f64),
                ),
            ]),
        ));
    }
    std::fs::write(&path, merged.emit() + "\n").expect("write BENCH_gateway.json");
    println!("recorded {}", path.display());
}
