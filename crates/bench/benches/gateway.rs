//! Cluster scaling benches: the MachSuite batch through 1/2/4-shard
//! gateways, replicated and not, plus the degenerate local-fallback
//! path.
//!
//! The headline comparisons are `gateway/cold_batch_1shard` vs
//! `..._2shard` vs `..._4shard` — throughput scaling of compile work
//! behind one front door — `gateway/warm_batch_2shard` (the
//! cache-locality dividend of rendezvous routing), and
//! `gateway/failover_batch_{2,4}shard_x2` (the availability dividend
//! of `--replication 2`: a post-kill batch that recomputes nothing).

use criterion::{criterion_group, criterion_main, Criterion};

use dahlia_bench::cluster::{
    cluster_batch, cluster_batch_replicated, drive, failover_batch, machsuite_requests,
    shutdown_shards, spawn_shards,
};
use dahlia_gateway::GatewayConfig;

const SHARD_THREADS: usize = 2;
const SUBMITTERS: usize = 8;

fn bench_cold_scaling(c: &mut Criterion) {
    for shards in [1usize, 2, 4] {
        c.bench_function(&format!("gateway/cold_batch_{shards}shard"), |b| {
            b.iter(|| {
                // A full cluster per iteration: spawn, cold batch, tear
                // down — the measured unit is "stand up and serve".
                cluster_batch(shards, SHARD_THREADS, SUBMITTERS).cold_wall_us
            })
        });
    }
}

fn bench_warm_batches(c: &mut Criterion) {
    for shards in [1usize, 2, 4] {
        let cluster = spawn_shards(shards, SHARD_THREADS);
        let gateway = GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())).build();
        let requests = machsuite_requests();
        drive(&gateway, &requests, SUBMITTERS); // warm every shard once
        c.bench_function(&format!("gateway/warm_batch_{shards}shard"), |b| {
            b.iter(|| drive(&gateway, &requests, SUBMITTERS))
        });
        drop(gateway);
        shutdown_shards(cluster);
    }
}

fn bench_replicated(c: &mut Criterion) {
    // The cost side: a replicated cold batch does R× the compile work
    // cluster-wide (fan-out is async, so cold wall time should stay
    // close to the unreplicated run).
    for shards in [2usize, 4] {
        c.bench_function(&format!("gateway/cold_batch_{shards}shard_x2"), |b| {
            b.iter(|| cluster_batch_replicated(shards, 2, SHARD_THREADS, SUBMITTERS).cold_wall_us)
        });
    }
    // The dividend side: kill a shard, re-drive the batch — warm
    // failover, zero recomputed stages.
    for shards in [2usize, 4] {
        c.bench_function(&format!("gateway/failover_batch_{shards}shard_x2"), |b| {
            b.iter(|| {
                let run = failover_batch(shards, 2, SHARD_THREADS, SUBMITTERS);
                assert_eq!(run.recomputed_stages, 0, "{run}");
                run.failover_wall_us
            })
        });
    }
}

fn bench_local_fallback(c: &mut Criterion) {
    // The empty-cluster degenerate case: every request compiles in the
    // gateway's embedded server. The floor the cluster must beat.
    let gateway = GatewayConfig::new(Vec::<String>::new()).build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    c.bench_function("gateway/warm_batch_local_fallback", |b| {
        b.iter(|| drive(&gateway, &requests, SUBMITTERS))
    });
}

criterion_group!(
    benches,
    bench_cold_scaling,
    bench_warm_batches,
    bench_replicated,
    bench_local_fallback
);
criterion_main!(benches);
