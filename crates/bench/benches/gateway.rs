//! Cluster scaling benches: the MachSuite batch through 1/2/4-shard
//! gateways, plus the degenerate local-fallback path.
//!
//! The headline comparison is `gateway/cold_batch_1shard` vs
//! `..._2shard` vs `..._4shard` — throughput scaling of compile work
//! behind one front door — and `gateway/warm_batch_2shard`, the
//! cache-locality dividend of rendezvous routing (every request is a
//! warm hit on the shard that compiled it).

use criterion::{criterion_group, criterion_main, Criterion};

use dahlia_bench::cluster::{
    cluster_batch, drive, machsuite_requests, shutdown_shards, spawn_shards,
};
use dahlia_gateway::GatewayConfig;

const SHARD_THREADS: usize = 2;
const SUBMITTERS: usize = 8;

fn bench_cold_scaling(c: &mut Criterion) {
    for shards in [1usize, 2, 4] {
        c.bench_function(&format!("gateway/cold_batch_{shards}shard"), |b| {
            b.iter(|| {
                // A full cluster per iteration: spawn, cold batch, tear
                // down — the measured unit is "stand up and serve".
                cluster_batch(shards, SHARD_THREADS, SUBMITTERS).cold_wall_us
            })
        });
    }
}

fn bench_warm_batches(c: &mut Criterion) {
    for shards in [1usize, 2, 4] {
        let cluster = spawn_shards(shards, SHARD_THREADS);
        let gateway = GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())).build();
        let requests = machsuite_requests();
        drive(&gateway, &requests, SUBMITTERS); // warm every shard once
        c.bench_function(&format!("gateway/warm_batch_{shards}shard"), |b| {
            b.iter(|| drive(&gateway, &requests, SUBMITTERS))
        });
        drop(gateway);
        shutdown_shards(cluster);
    }
}

fn bench_local_fallback(c: &mut Criterion) {
    // The empty-cluster degenerate case: every request compiles in the
    // gateway's embedded server. The floor the cluster must beat.
    let gateway = GatewayConfig::new(Vec::<String>::new()).build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    c.bench_function("gateway/warm_batch_local_fallback", |b| {
        b.iter(|| drive(&gateway, &requests, SUBMITTERS))
    });
}

criterion_group!(
    benches,
    bench_cold_scaling,
    bench_warm_batches,
    bench_local_fallback
);
criterion_main!(benches);
