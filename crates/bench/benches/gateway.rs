//! `cargo bench --bench gateway` — cluster latency benchmark.
//!
//! Drives the MachSuite batch through live in-process clusters (real
//! TCP shards behind a [`dahlia_gateway::Gateway`]) and reduces each
//! scenario's per-request latencies to `p50`/`p99`/`mean` (nearest
//! rank over the full sample set — see
//! [`dahlia_bench::cluster::LatencyStats`]), then updates
//! `BENCH_gateway.json` at the repository root: the first run of each
//! scenario pins its `baseline`, later runs rewrite `current` and the
//! derived `speedup` ratios.
//!
//! Scenarios:
//!
//! * `cold_2shard` — every request computes somewhere (tail dominated
//!   by the slowest kernel's pipeline);
//! * `warm_{1,2,4}shard` — shard-cache hits behind one front door,
//!   the latency floor of the routing layer itself;
//! * `warm_2shard_traced` — the same warm batch with request-scoped
//!   tracing on every request: the observability overhead headline;
//! * `warm_2shard_slowlog` — the warm batch with the slow threshold at
//!   0 ms, so every untraced request is captured into the slow-request
//!   log: pins the cost of the always-on span recording plus a
//!   worst-case capture rate;
//! * `warm_2shard_telemetry` — the warm batch with durable telemetry
//!   on (50 ms sampling into an on-disk ring, one armed alert rule,
//!   warm-key ledger checkpoints): pins the cost of the sampler
//!   running beside the hot path next to the `warm_2shard` floor;
//! * `warm_local_fallback` — the empty-cluster degenerate case, served
//!   by the gateway's embedded local server.
//!
//! Flags (after `--`):
//!   `--quick`  fewer rounds and shard widths (the CI smoke mode);
//!   `--test`   passed by `cargo test` to harness-less benches: runs
//!              the cheapest scenario once and skips the trajectory
//!              write.

use dahlia_bench::cluster::{
    drive, drive_latencies, gateway_trajectory_path, machsuite_requests, merge_gateway_trajectory,
    shutdown_shards, spawn_shards, LatencyStats,
};
use dahlia_gateway::GatewayConfig;
use dahlia_server::json::Json;

const SHARD_THREADS: usize = 2;
const SUBMITTERS: usize = 8;

/// Cold batch through `shards` shards: one sample per request, first
/// touch, then tear the cluster down.
fn cold_scenario(shards: usize) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let gateway = GatewayConfig::new(cluster.iter().map(|s| s.addr.clone())).build();
    let requests = machsuite_requests();
    let samples = drive_latencies(&gateway, &requests, SUBMITTERS, false);
    drop(gateway);
    shutdown_shards(cluster);
    LatencyStats::from_samples(samples)
}

/// Warm batch through `shards` shards: one throwaway round warms every
/// shard, then `rounds` measured rounds, traced or not. With
/// `capture_all`, the slow threshold drops to 0 ms so the slow-request
/// log captures every request — the worst-case capture overhead. With
/// `telemetry`, the gateway samples durable telemetry to a scratch
/// on-disk ring every 50 ms with one armed alert rule — the cost of
/// the sampler thread beside the hot path.
fn warm_scenario(
    shards: usize,
    rounds: usize,
    traced: bool,
    capture_all: bool,
    telemetry: bool,
) -> LatencyStats {
    let cluster = spawn_shards(shards, SHARD_THREADS);
    let mut cfg = GatewayConfig::new(cluster.iter().map(|s| s.addr.clone()));
    if capture_all {
        cfg = cfg.slow_threshold_ms(0);
    }
    let tele_dir = telemetry.then(|| {
        let dir =
            std::env::temp_dir().join(format!("dahlia-bench-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create telemetry scratch dir");
        dir
    });
    if let Some(dir) = &tele_dir {
        cfg = cfg
            .telemetry_dir(dir)
            .telemetry_interval_ms(50)
            .alert_rule("window.error_rate > 0.5 for 1s");
    }
    let gateway = cfg.build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, traced));
    }
    drop(gateway);
    shutdown_shards(cluster);
    if let Some(dir) = tele_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    LatencyStats::from_samples(samples)
}

/// The empty-cluster floor: every request answered by the gateway's
/// embedded local server.
fn local_fallback_scenario(rounds: usize) -> LatencyStats {
    let gateway = GatewayConfig::new(Vec::<String>::new()).build();
    let requests = machsuite_requests();
    drive(&gateway, &requests, SUBMITTERS);
    let mut samples = Vec::new();
    for _ in 0..rounds {
        samples.extend(drive_latencies(&gateway, &requests, SUBMITTERS, false));
    }
    LatencyStats::from_samples(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let quick = test_mode || args.iter().any(|a| a == "--quick");
    let rounds = if quick { 2 } else { 8 };

    let mut scenarios: Vec<(String, LatencyStats)> = Vec::new();
    if test_mode {
        scenarios.push(("warm_local_fallback".into(), local_fallback_scenario(1)));
    } else {
        scenarios.push(("cold_2shard".into(), cold_scenario(2)));
        let widths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
        for &shards in widths {
            scenarios.push((
                format!("warm_{shards}shard"),
                warm_scenario(shards, rounds, false, false, false),
            ));
        }
        scenarios.push((
            "warm_2shard_traced".into(),
            warm_scenario(2, rounds, true, false, false),
        ));
        scenarios.push((
            "warm_2shard_slowlog".into(),
            warm_scenario(2, rounds, false, true, false),
        ));
        scenarios.push((
            "warm_2shard_telemetry".into(),
            warm_scenario(2, rounds, false, false, true),
        ));
        scenarios.push((
            "warm_local_fallback".into(),
            local_fallback_scenario(rounds),
        ));
    }

    for (name, s) in &scenarios {
        println!(
            "gateway/{name:<22} p50 {:>7} µs | p99 {:>7} µs | mean {:>7} µs | n {}",
            s.p50_us, s.p99_us, s.mean_us, s.requests
        );
    }

    if test_mode {
        println!("test-mode: skipping BENCH_gateway.json update");
        return;
    }

    let path = gateway_trajectory_path();
    let existing = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| Json::parse(&s).ok());
    let merged = merge_gateway_trajectory(existing.as_ref(), &scenarios);
    std::fs::write(&path, merged.emit() + "\n").expect("write BENCH_gateway.json");
    println!("recorded {}", path.display());
}
