//! Criterion benches over the compiler and substrate pipeline stages:
//! one bench per paper artifact, timing the machinery that regenerates it.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dahlia_bench::{fig4, fig7, fig8, fig9};
use dahlia_dse::pareto_mask;
use dahlia_kernels::gemm::{gemm_blocked_source, GemmBlockedParams};

/// Fig. 4: one estimation-mode evaluation of the matmul kernel.
fn bench_fig4_estimate(c: &mut Criterion) {
    let k = fig4::matmul_kernel(512, 8, 9);
    c.bench_function("fig4/estimate_matmul_512_b8_u9", |b| {
        b.iter(|| hls_sim::estimate(black_box(&k)))
    });
}

/// Fig. 7: one full DSE point — source generation, type check, estimate.
fn bench_fig7_point(c: &mut Criterion) {
    let cfg: dahlia_dse::Config = [
        ("bank_m1_d1", 2),
        ("bank_m1_d2", 2),
        ("bank_m2_d1", 2),
        ("bank_m2_d2", 2),
        ("unroll_i", 2),
        ("unroll_j", 2),
        ("unroll_k", 2),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    c.bench_function("fig7/evaluate_one_config", |b| {
        b.iter(|| fig7::evaluate(black_box(cfg.clone())))
    });
}

/// The type checker alone on the paper's flagship kernel.
fn bench_typecheck(c: &mut Criterion) {
    let src = gemm_blocked_source(&GemmBlockedParams {
        n: 128,
        block: 8,
        bank_m1: (4, 4),
        bank_m2: (4, 4),
        unroll: (4, 4, 4),
    });
    c.bench_function("core/typecheck_gemm_blocked", |b| {
        b.iter(|| {
            let p = dahlia_core::parse(black_box(&src)).unwrap();
            dahlia_core::typecheck(&p).unwrap()
        })
    });
}

/// Fig. 8: acceptance filtering throughput (the checker as a DSE pruner).
fn bench_fig8_accept(c: &mut Criterion) {
    let study = fig8::Study::Stencil2d;
    let cfgs: Vec<_> = study.space().iter().step_by(97).collect();
    c.bench_function("fig8/accept_30_stencil_configs", |b| {
        b.iter(|| {
            cfgs.iter()
                .filter(|cfg| dahlia_dse::accepts(&study.source(black_box(cfg))))
                .count()
        })
    });
}

/// Fig. 9: the whole Spatial sweep.
fn bench_fig9_sweep(c: &mut Criterion) {
    c.bench_function("fig9/spatial_sweep_16", |b| b.iter(fig9::run));
}

/// Fig. 7's Pareto filter over a realistic point cloud.
fn bench_pareto(c: &mut Criterion) {
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut objs = Vec::new();
    for _ in 0..2000 {
        let mut row = Vec::with_capacity(5);
        for _ in 0..5 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            row.push((x % 100_000) as f64);
        }
        objs.push(row);
    }
    c.bench_function("dse/pareto_2000x5", |b| {
        b.iter(|| pareto_mask(black_box(&objs)))
    });
}

/// The checked interpreter on a small gemm (functional simulation speed).
fn bench_interp(c: &mut Criterion) {
    let p = GemmBlockedParams::small();
    let src = gemm_blocked_source(&p);
    let prog = dahlia_core::parse(&src).unwrap();
    let (inputs, _, _) = dahlia_kernels::gemm::gemm_inputs(p.n as usize, 1);
    c.bench_function("core/interpret_gemm_16", |b| {
        b.iter(|| {
            dahlia_core::interp::interpret_with(
                black_box(&prog),
                &dahlia_core::interp::InterpOptions::default(),
                &inputs,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig4_estimate, bench_fig7_point, bench_typecheck, bench_fig8_accept, bench_fig9_sweep, bench_pareto, bench_interp
}
criterion_main!(benches);
