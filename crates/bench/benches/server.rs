//! Served-vs-cold throughput benches for the compilation service.
//!
//! Three ways to run the same checker-pruned stencil sweep, plus the
//! raw batch path over the MachSuite kernel suite. The headline numbers:
//! `serve/warm_sweep` vs `serve/direct_sweep` is the cache win;
//! `serve/batch_kernels_warm` vs `..._cold` is the `dahliac batch` win.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use dahlia_bench::fig8::Study;
use dahlia_bench::serve::sweep;
use dahlia_dse::DirectProvider;
use dahlia_server::{CachedProvider, Request, Server, ServerConfig, Stage};

const STRIDE: usize = 211;

fn bench_direct_sweep(c: &mut Criterion) {
    c.bench_function("serve/direct_sweep", |b| {
        b.iter(|| {
            let p = DirectProvider::new();
            sweep(Study::Stencil2d, STRIDE, &p).points.len()
        })
    });
}

fn bench_cold_sweep(c: &mut Criterion) {
    c.bench_function("serve/cold_sweep", |b| {
        b.iter(|| {
            // A fresh server per iteration: every stage is a miss.
            let p = CachedProvider::new(Server::with_threads(2));
            sweep(Study::Stencil2d, STRIDE, &p).points.len()
        })
    });
}

fn bench_warm_sweep(c: &mut Criterion) {
    let p = CachedProvider::new(Server::with_threads(2));
    sweep(Study::Stencil2d, STRIDE, &p); // warm the cache once
    c.bench_function("serve/warm_sweep", |b| {
        b.iter(|| sweep(Study::Stencil2d, STRIDE, &p).points.len())
    });
}

fn bench_warm_disk_sweep(c: &mut Criterion) {
    // Warm the directory once, then measure fresh-server sweeps that are
    // answered entirely by the persistent tier (the restart story:
    // between cold_sweep and warm_sweep).
    let dir = std::env::temp_dir().join(format!("dahlia-bench-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let warmer = CachedProvider::new(
        ServerConfig::new()
            .threads(2)
            .cache_dir(&dir)
            .build()
            .expect("cache dir"),
    );
    sweep(Study::Stencil2d, STRIDE, &warmer);
    warmer.server().flush();
    drop(warmer);
    c.bench_function("serve/warm_disk_sweep", |b| {
        b.iter(|| {
            let p = CachedProvider::new(
                ServerConfig::new()
                    .threads(2)
                    .cache_dir(&dir)
                    .build()
                    .expect("cache dir"),
            );
            sweep(Study::Stencil2d, STRIDE, &p).points.len()
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn kernel_requests(round: u32) -> Vec<Request> {
    dahlia_kernels::all_benches()
        .into_iter()
        .map(|bench| {
            Request::new(
                format!("{}#{round}", bench.name),
                Stage::Estimate,
                bench.source,
                bench.name,
            )
        })
        .collect()
}

fn bench_batch_kernels_cold(c: &mut Criterion) {
    c.bench_function("serve/batch_kernels_cold", |b| {
        b.iter(|| {
            let server = Server::new();
            server.submit_batch(kernel_requests(0)).len()
        })
    });
}

fn bench_batch_kernels_warm(c: &mut Criterion) {
    let server = Server::new();
    server.submit_batch(kernel_requests(0));
    c.bench_function("serve/batch_kernels_warm", |b| {
        b.iter(|| server.submit_batch(kernel_requests(0)).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_direct_sweep, bench_cold_sweep, bench_warm_sweep,
              bench_warm_disk_sweep, bench_batch_kernels_cold,
              bench_batch_kernels_warm
}
criterion_main!(benches);
