//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Port constraints** — re-estimate kernels with idealized
//!    (unbounded-port) memories. The gap between real and idealized
//!    latency is exactly the serialization the paper's Fig. 4a/4b
//!    attribute to bank ports; on matched configurations the gap vanishes.
//! 2. **The affine discipline as a pruner** — compare the best accepted
//!    design against the best point of the unrestricted space. The paper's
//!    position (§8): predictability costs a few outliers but keeps the
//!    frontier.

use dahlia_dse::{Config, DesignPoint};
use hls_sim::{estimate, Estimate, Kernel};

use crate::fig4::matmul_kernel;
use crate::fig7;

/// Re-estimate with idealized memories (every bank gets effectively
/// unlimited ports), ablating the port-conflict model.
pub fn estimate_idealized(k: &Kernel) -> Estimate {
    let mut ideal = k.clone();
    for a in &mut ideal.arrays {
        a.ports = u32::MAX >> 1;
    }
    estimate(&ideal)
}

/// One row of the port-constraint ablation.
#[derive(Debug, Clone)]
pub struct PortAblation {
    /// Unroll factor swept.
    pub unroll: u64,
    /// Real (port-constrained) estimate.
    pub real: Estimate,
    /// Idealized estimate.
    pub ideal: Estimate,
}

impl PortAblation {
    /// Latency penalty attributable to bank-port serialization.
    pub fn serialization_factor(&self) -> f64 {
        self.real.cycles as f64 / self.ideal.cycles.max(1) as f64
    }
}

/// Sweep the §2 matmul with fixed banking, comparing real vs idealized
/// memories.
pub fn port_ablation(n: u64, banking: u64, max_unroll: u64) -> Vec<PortAblation> {
    (1..=max_unroll)
        .map(|u| {
            let k = matmul_kernel(n, banking, u);
            PortAblation {
                unroll: u,
                real: estimate(&k),
                ideal: estimate_idealized(&k),
            }
        })
        .collect()
}

/// The affine-pruning ablation over a (possibly subsampled) gemm-blocked
/// space: best latency among accepted vs among all points.
#[derive(Debug, Clone, Copy)]
pub struct PruningAblation {
    /// Fastest correct design in the unrestricted space (cycles).
    pub best_unrestricted: u64,
    /// Fastest design Dahlia accepts (cycles).
    pub best_accepted: u64,
    /// Points the checker pruned away.
    pub pruned: usize,
    /// Pruned points that were *incorrect hardware*.
    pub pruned_incorrect: usize,
}

/// Run the pruning ablation.
pub fn pruning_ablation(stride: usize) -> PruningAblation {
    let points: Vec<DesignPoint> = fig7::run(stride);
    let best = |it: &mut dyn Iterator<Item = &DesignPoint>| {
        it.filter(|p| p.correct)
            .map(|p| p.cycles)
            .min()
            .unwrap_or(u64::MAX)
    };
    PruningAblation {
        best_unrestricted: best(&mut points.iter()),
        best_accepted: best(&mut points.iter().filter(|p| p.accepted)),
        pruned: points.iter().filter(|p| !p.accepted).count(),
        pruned_incorrect: points.iter().filter(|p| !p.accepted && !p.correct).count(),
    }
}

/// Decode helper shared with `fig7` consumers.
pub fn config_label(cfg: &Config) -> String {
    let mut parts: Vec<String> = cfg.iter().map(|(k, v)| format!("{k}={v}")).collect();
    parts.sort();
    parts.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idealized_memories_remove_serialization() {
        // Unroll 8 on a single bank: real is ~8× slower than ideal.
        let rows = port_ablation(256, 1, 8);
        let row8 = &rows[7];
        assert!(
            row8.serialization_factor() > 4.0,
            "expected heavy serialization: {:.2}",
            row8.serialization_factor()
        );
        // On matched banking, the gap closes.
        let matched = port_ablation(256, 8, 8);
        let m8 = &matched[7];
        assert!(
            m8.serialization_factor() < 1.5,
            "matched config should not serialize: {:.2}",
            m8.serialization_factor()
        );
    }

    #[test]
    fn sequential_configs_are_port_insensitive() {
        let rows = port_ablation(128, 2, 1);
        assert!(rows[0].serialization_factor() <= 1.01);
    }

    #[test]
    fn pruning_keeps_competitive_designs() {
        let a = pruning_ablation(61);
        assert!(a.best_accepted < u64::MAX, "some design accepted");
        assert!(a.pruned > 0);
        assert!(
            a.best_unrestricted <= a.best_accepted,
            "accepted ⊆ unrestricted"
        );

        // The *full-space* accepted optimum (all-4 banking, unroll 4/4/4 —
        // the highest parallelism the affine rules admit here) must be
        // within a small factor of the sampled unrestricted optimum: the
        // paper's "worthy sacrifice".
        let flagship = fig7::evaluate(
            [
                ("bank_m1_d1", 4u64),
                ("bank_m1_d2", 4),
                ("bank_m2_d1", 4),
                ("bank_m2_d2", 4),
                ("unroll_i", 4),
                ("unroll_j", 4),
                ("unroll_k", 4),
            ]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        );
        assert!(flagship.accepted, "the flagship config is accepted");
        assert!(
            flagship.cycles <= a.best_unrestricted.saturating_mul(4),
            "accepted flagship {} vs unrestricted best {}",
            flagship.cycles,
            a.best_unrestricted
        );
    }
}
