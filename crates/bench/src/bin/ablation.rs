//! Ablation study: what the port-conflict model and the affine pruning
//! each contribute. See `dahlia_bench::ablation`.

use dahlia_bench::ablation::{port_ablation, pruning_ablation};

fn main() {
    println!("# Ablation 1 — port constraints (matmul 512, banking 8)");
    println!("unroll,real_cycles,ideal_cycles,serialization");
    for r in port_ablation(512, 8, 16) {
        println!(
            "{},{},{},{:.2}",
            r.unroll,
            r.real.cycles,
            r.ideal.cycles,
            r.serialization_factor()
        );
    }
    println!("\n# Ablation 1b — same sweep with a single bank");
    println!("unroll,real_cycles,ideal_cycles,serialization");
    for r in port_ablation(512, 1, 8) {
        println!(
            "{},{},{},{:.2}",
            r.unroll,
            r.real.cycles,
            r.ideal.cycles,
            r.serialization_factor()
        );
    }
    println!("\n# Ablation 2 — the affine discipline as a DSE pruner (gemm-blocked, stride 7)");
    let a = pruning_ablation(7);
    println!("best_unrestricted_cycles,{}", a.best_unrestricted);
    println!("best_accepted_cycles,{}", a.best_accepted);
    println!("pruned_points,{}", a.pruned);
    println!("pruned_incorrect_hardware,{}", a.pruned_incorrect);
}
