//! Regenerates Fig. 11: MachSuite baselines vs Dahlia rewrites across six
//! resource panels.

use dahlia_bench::fig11;

fn main() {
    println!("# Fig. 11 — MachSuite baseline vs Dahlia rewrite");
    print!("{}", fig11::to_csv(&fig11::run()));
}
