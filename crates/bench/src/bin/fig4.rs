//! Regenerates Fig. 4: the three HLS predictability sweeps on the §2
//! matrix-multiply kernel (512×512, 250 MHz target).

use dahlia_bench::fig4::{sweep_a, sweep_b, sweep_c, to_csv};

fn main() {
    println!("# Fig. 4a — unrolling, no partitioning (LUTs up, runtime flat)");
    print!("{}", to_csv(&sweep_a(512, 10)));
    println!("\n# Fig. 4b — unrolling with 8-way partitioning (predictable ⟺ u | 8)");
    print!("{}", to_csv(&sweep_b(512, 16)));
    println!("\n# Fig. 4c — banking = unrolling in lockstep (predictable ⟺ k | 512)");
    print!("{}", to_csv(&sweep_c(512, 16)));
}
