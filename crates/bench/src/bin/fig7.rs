//! Regenerates Fig. 7: the exhaustive 32,000-point gemm-blocked DSE.
//!
//! Pass stride arguments to subsample (default 1 = the full sweep).
//! Several strides may be given; every sweep runs through one shared
//! `dahlia_server::CachedProvider`, so overlapping configurations are
//! compiled once — re-running at a finer stride only pays for the new
//! points.

use dahlia_bench::fig7;
use dahlia_dse::to_csv;
use dahlia_server::CachedProvider;

fn main() {
    let strides = match dahlia_bench::strides_from_args(std::env::args().skip(1)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig7: {e}");
            std::process::exit(2);
        }
    };
    let provider = CachedProvider::default();
    for stride in strides {
        let points = fig7::run_with(stride, &provider);
        let summary = fig7::summarize(&points);
        eprintln!("gemm-blocked DSE (stride {stride}): {summary}");
        println!(
            "# Fig. 7 — gemm-blocked design space (stride {stride}, {} points)",
            points.len()
        );
        println!("# {summary}");
        let params = [
            "bank_m1_d1",
            "bank_m1_d2",
            "bank_m2_d1",
            "bank_m2_d2",
            "unroll_i",
            "unroll_j",
            "unroll_k",
        ];
        // 7a: the Pareto-optimal points; 7b: the Dahlia-accepted points.
        let pareto: Vec<_> = points.iter().filter(|p| p.pareto).cloned().collect();
        let accepted: Vec<_> = points.iter().filter(|p| p.accepted).cloned().collect();
        println!("\n# Fig. 7a — Pareto-optimal points ({})", pareto.len());
        print!("{}", to_csv(&pareto, &params));
        println!("\n# Fig. 7b — Dahlia-accepted points ({})", accepted.len());
        print!("{}", to_csv(&accepted, &params));
    }
    eprintln!("cache: {}", provider.server().stats());
}
