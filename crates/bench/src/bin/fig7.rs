//! Regenerates Fig. 7: the exhaustive 32,000-point gemm-blocked DSE.
//! Pass a stride argument to subsample (default 1 = full sweep).

use dahlia_bench::fig7;
use dahlia_dse::to_csv;

fn main() {
    let stride: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let points = fig7::run(stride);
    let summary = fig7::summarize(&points);
    eprintln!("gemm-blocked DSE (stride {stride}): {summary}");
    println!(
        "# Fig. 7 — gemm-blocked design space ({} points)",
        points.len()
    );
    println!("# {summary}");
    let params = [
        "bank_m1_d1",
        "bank_m1_d2",
        "bank_m2_d1",
        "bank_m2_d2",
        "unroll_i",
        "unroll_j",
        "unroll_k",
    ];
    // 7a: the Pareto-optimal points; 7b: the Dahlia-accepted points.
    let pareto: Vec<_> = points.iter().filter(|p| p.pareto).cloned().collect();
    let accepted: Vec<_> = points.iter().filter(|p| p.accepted).cloned().collect();
    println!("\n# Fig. 7a — Pareto-optimal points ({})", pareto.len());
    print!("{}", to_csv(&pareto, &params));
    println!("\n# Fig. 7b — Dahlia-accepted points ({})", accepted.len());
    print!("{}", to_csv(&accepted, &params));
}
