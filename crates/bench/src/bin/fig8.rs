//! Regenerates Fig. 8: Dahlia-directed DSE for stencil2d, md-knn, md-grid.
//! Pass a stride argument to subsample (default 1 = full sweeps).

use dahlia_bench::fig8::{run, summarize, Study};
use dahlia_dse::to_csv;

fn main() {
    let stride: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    for (study, fig) in [
        (Study::Stencil2d, "8a"),
        (Study::MdKnn, "8b"),
        (Study::MdGrid, "8c"),
    ] {
        let points = run(study, stride);
        let s = summarize(&points);
        eprintln!("{}: {s}", study.name());
        println!(
            "\n# Fig. {fig} — {} ({} points swept): {s}",
            study.name(),
            points.len()
        );
        let names = study.space();
        let params: Vec<&str> = names.names();
        let accepted: Vec<_> = points.iter().filter(|p| p.accepted).cloned().collect();
        print!("{}", to_csv(&accepted, &params));
    }
}
