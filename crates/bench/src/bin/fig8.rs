//! Regenerates Fig. 8: Dahlia-directed DSE for stencil2d, md-knn, md-grid.
//!
//! Pass stride arguments to subsample (default 1 = full sweeps). Several
//! strides may be given; all sweeps — across strides *and* studies —
//! share one `dahlia_server::CachedProvider`, so overlapping
//! configurations compile once and front-end artifacts are reused across
//! differently-named requests.

use dahlia_bench::fig8::{run_with, summarize, Study};
use dahlia_dse::to_csv;
use dahlia_server::CachedProvider;

fn main() {
    let strides = match dahlia_bench::strides_from_args(std::env::args().skip(1)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig8: {e}");
            std::process::exit(2);
        }
    };
    let provider = CachedProvider::default();
    for stride in strides {
        for (study, fig) in [
            (Study::Stencil2d, "8a"),
            (Study::MdKnn, "8b"),
            (Study::MdGrid, "8c"),
        ] {
            let points = run_with(study, stride, &provider);
            let s = summarize(&points);
            eprintln!("{} (stride {stride}): {s}", study.name());
            println!(
                "\n# Fig. {fig} — {} (stride {stride}, {} points swept): {s}",
                study.name(),
                points.len()
            );
            let names = study.space();
            let params: Vec<&str> = names.names();
            let accepted: Vec<_> = points.iter().filter(|p| p.accepted).cloned().collect();
            print!("{}", to_csv(&accepted, &params));
        }
    }
    eprintln!("cache: {}", provider.server().stats());
}
