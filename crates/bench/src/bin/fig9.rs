//! Regenerates Fig. 9 / Fig. 13: the Spatial banking-inference sweep.

use dahlia_bench::fig9;

fn main() {
    println!("# Fig. 9 / Fig. 13 — Spatial gemm-ncubed sweep (banking inferred)");
    print!("{}", fig9::to_csv(&fig9::run()));
}
