//! Cluster throughput: the MachSuite batch through 1/2/4-shard
//! gateways, replicated and not.
//!
//! Each run spins up N real TCP shards (in-process `serve_listener`
//! threads), a gateway over them, and drives the MachSuite suite
//! through the gateway from a small army of submitter threads — once
//! cold, once warm. The interesting numbers:
//!
//! * **throughput scaling** — cold wall-clock versus shard count (more
//!   shards, more compile parallelism behind one front door);
//! * **cache locality** — the warm round's per-shard hit rate: with
//!   rendezvous routing every source goes back to the shard that
//!   compiled it, so the warm round must add **zero** misses anywhere
//!   (`pinned`), regardless of shard count;
//! * **replication cost and dividend** — with `--replication 2` the
//!   cold round additionally fans every artifact out to its secondary
//!   ([`ClusterRun::replica_writes`]), and [`failover_batch`] measures
//!   what that buys: kill the first shard and re-drive the batch —
//!   zero recomputed stages, only re-routing overhead.
//!
//! `cargo bench --bench gateway` prints the sweep; the unit tests here
//! pin the invariants at reduced concurrency.

use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dahlia_gateway::{Gateway, GatewayConfig};
use dahlia_server::json::{obj, Json};
use dahlia_server::{serve_listener, Client, NetSummary, Request, Server, Stage};

/// One live in-process shard: its address and listener thread.
pub struct ShardHandle {
    /// The shard's loopback address.
    pub addr: String,
    join: std::thread::JoinHandle<NetSummary>,
}

/// Spawn `n` TCP shards, each with `threads` pool workers.
pub fn spawn_shards(n: usize, threads: usize) -> Vec<ShardHandle> {
    (0..n)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().unwrap().to_string();
            let server = Arc::new(Server::with_threads(threads));
            let join = std::thread::spawn(move || {
                serve_listener(server, listener).expect("serve_listener")
            });
            ShardHandle { addr, join }
        })
        .collect()
}

/// Gracefully stop every shard and join its listener thread.
pub fn shutdown_shards(shards: Vec<ShardHandle>) {
    for s in &shards {
        if let Ok(mut c) = Client::connect(s.addr.as_str()) {
            let _ = c.shutdown_server();
        }
    }
    for s in shards {
        let _ = s.join.join();
    }
}

/// The MachSuite request set.
pub fn machsuite_requests() -> Vec<Request> {
    dahlia_kernels::all_benches()
        .into_iter()
        .map(|b| Request::new(b.name, Stage::Estimate, b.source, b.name))
        .collect()
}

/// Drive `requests` through the gateway from `submitters` concurrent
/// threads; panics if any request fails. Returns the wall time in µs.
pub fn drive(gateway: &Gateway, requests: &[Request], submitters: usize) -> u64 {
    let cursor = AtomicUsize::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..submitters.max(1) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(req) = requests.get(i) else { break };
                let resp = gateway.submit(req);
                assert_eq!(
                    resp.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "request {} failed through the gateway: {}",
                    req.id,
                    resp.emit()
                );
            });
        }
    });
    t0.elapsed().as_micros() as u64
}

/// Drive `requests` through the gateway from `submitters` concurrent
/// threads, collecting one per-request latency sample (µs) per
/// submit. With `traced`, every request carries a bench trace id —
/// the tracing-overhead scenario. Panics if any request fails.
pub fn drive_latencies(
    gateway: &Gateway,
    requests: &[Request],
    submitters: usize,
    traced: bool,
) -> Vec<u64> {
    let cursor = AtomicUsize::new(0);
    let samples = std::sync::Mutex::new(Vec::with_capacity(requests.len()));
    std::thread::scope(|s| {
        for _ in 0..submitters.max(1) {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(req) = requests.get(i) else { break };
                    let req = if traced {
                        req.clone().traced(format!("bench-{i}"))
                    } else {
                        req.clone()
                    };
                    let t0 = Instant::now();
                    let resp = gateway.submit(&req);
                    local.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(
                        resp.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "request {} failed through the gateway: {}",
                        req.id,
                        resp.emit()
                    );
                }
                samples.lock().unwrap().extend(local);
            });
        }
    });
    samples.into_inner().unwrap()
}

/// Per-request latency quantiles for one bench scenario, derived from
/// the full collected sample set (nearest rank), not the histogram's
/// power-of-two buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    /// Samples the scenario collected.
    pub requests: u64,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 99th-percentile request latency (µs).
    pub p99_us: u64,
    /// Mean request latency (µs).
    pub mean_us: u64,
}

impl LatencyStats {
    /// Reduce a scenario's raw samples (µs) to its quantile summary.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        assert!(!samples.is_empty(), "a scenario produced no samples");
        samples.sort_unstable();
        let rank = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
        let sum: u64 = samples.iter().sum();
        LatencyStats {
            requests: samples.len() as u64,
            p50_us: rank(0.50),
            p99_us: rank(0.99),
            mean_us: sum / samples.len() as u64,
        }
    }

    /// The trajectory-file shape of one scenario.
    pub fn to_json(&self) -> Json {
        obj([
            ("requests", Json::Num(self.requests as f64)),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
            ("mean_us", Json::Num(self.mean_us as f64)),
        ])
    }

    /// Parse a scenario back out of a trajectory file.
    pub fn from_json(v: &Json) -> Option<LatencyStats> {
        Some(LatencyStats {
            requests: v.get("requests")?.as_u64()?,
            p50_us: v.get("p50_us")?.as_u64()?,
            p99_us: v.get("p99_us")?.as_u64()?,
            mean_us: v.get("mean_us")?.as_u64()?,
        })
    }
}

/// Merge one bench run into the `BENCH_gateway.json` trajectory: the
/// first run of each scenario pins its `baseline`, later runs rewrite
/// `current` and the derived `speedup` ratios (baseline / current, so
/// bigger is better).
pub fn merge_gateway_trajectory(
    existing: Option<&Json>,
    current: &[(String, LatencyStats)],
) -> Json {
    let mut baseline_fields = Vec::new();
    let mut current_fields = Vec::new();
    let mut speedup_fields = Vec::new();
    let ratio = |b: u64, c: u64| {
        if c > 0 {
            Json::Num(b as f64 / c as f64)
        } else {
            Json::Num(0.0)
        }
    };
    for (name, stats) in current {
        let base = existing
            .and_then(|j| j.get("baseline"))
            .and_then(|b| b.get(name))
            .and_then(LatencyStats::from_json)
            .unwrap_or_else(|| stats.clone());
        speedup_fields.push((
            name.clone(),
            obj([
                ("p50", ratio(base.p50_us, stats.p50_us)),
                ("p99", ratio(base.p99_us, stats.p99_us)),
            ]),
        ));
        baseline_fields.push((name.clone(), base.to_json()));
        current_fields.push((name.clone(), stats.to_json()));
    }
    obj([
        ("schema", Json::Num(1.0)),
        ("unit", Json::Str("us".into())),
        (
            "workload",
            Json::Str(
                "MachSuite estimate batch through a live in-process gateway; \
                 per-request latency quantiles per scenario"
                    .into(),
            ),
        ),
        ("baseline", Json::Obj(baseline_fields)),
        ("current", Json::Obj(current_fields)),
        ("speedup", Json::Obj(speedup_fields)),
    ])
}

/// The gateway trajectory file lives at the repository root, next to
/// `BENCH_frontend.json`, regardless of the invocation directory.
pub fn gateway_trajectory_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_gateway.json")
}

/// Results of one cold+warm MachSuite batch through an N-shard gateway.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Shard count.
    pub shards: usize,
    /// Replication factor the gateway ran with.
    pub replication: usize,
    /// Programs in the batch.
    pub programs: usize,
    /// Cold round wall time (µs): every stage computes somewhere.
    pub cold_wall_us: u64,
    /// Warm round wall time (µs): every request is a shard cache hit.
    pub warm_wall_us: u64,
    /// Requests routed to each shard across both rounds.
    pub per_shard_routed: Vec<u64>,
    /// Replication fan-out calls the cold round dispatched.
    pub replica_writes: u64,
    /// Aggregate shard-side misses after the warm round.
    pub misses: u64,
    /// Did the warm round add zero misses on every shard (i.e. every
    /// source stayed pinned to the shard that compiled it)?
    pub pinned: bool,
}

impl std::fmt::Display for ClusterRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shard(s) x{}: cold {:.1} ms, warm {:.1} ms, routed {:?}, \
             {} replica writes, pinned: {}",
            self.shards,
            self.replication,
            self.cold_wall_us as f64 / 1e3,
            self.warm_wall_us as f64 / 1e3,
            self.per_shard_routed,
            self.replica_writes,
            self.pinned,
        )
    }
}

fn aggregate_misses(gateway: &Gateway) -> u64 {
    gateway
        .shard_snapshots()
        .iter()
        .map(|s| {
            s.stats
                .as_ref()
                .and_then(|v| v.get("misses"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        })
        .sum()
}

/// Run the MachSuite batch cold and warm through an `n`-shard cluster.
pub fn cluster_batch(n: usize, shard_threads: usize, submitters: usize) -> ClusterRun {
    cluster_batch_replicated(n, 1, shard_threads, submitters)
}

/// Wait until the cluster-wide shard request count reaches `want`
/// (replication fan-out is asynchronous) or ~20 s elapse.
fn await_shard_requests(gateway: &Gateway, want: u64) -> bool {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let total: u64 = gateway
            .shard_snapshots()
            .iter()
            .map(|s| {
                s.stats
                    .as_ref()
                    .and_then(|v| v.get("requests"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            })
            .sum();
        if total >= want {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// [`cluster_batch`] with a replication factor: the cold round fans
/// every artifact out to its replica set (the run waits for the
/// asynchronous fan-out to drain before the warm round, so
/// `replica_writes` and the pinning check are deterministic).
pub fn cluster_batch_replicated(
    n: usize,
    replication: usize,
    shard_threads: usize,
    submitters: usize,
) -> ClusterRun {
    let shards = spawn_shards(n, shard_threads);
    // These runs measure shard routing and cache pinning, so the
    // gateway's admission cache is off — it would answer the warm
    // round at the front door and no request would reach a shard.
    let gateway = GatewayConfig::new(shards.iter().map(|s| s.addr.clone()))
        .replication(replication)
        .admission_cache(0)
        .build();
    assert_eq!(gateway.live_shards(), n, "all shards dialed");
    let requests = machsuite_requests();

    let cold_wall_us = drive(&gateway, &requests, submitters);
    // Each cold compute reaches its primary plus min(replication, n) - 1
    // replicas.
    let fan = replication.min(n.max(1)) as u64;
    assert!(
        await_shard_requests(&gateway, requests.len() as u64 * fan),
        "replication fan-out never drained"
    );
    let cold_misses = aggregate_misses(&gateway);
    let warm_wall_us = drive(&gateway, &requests, submitters);
    let warm_misses = aggregate_misses(&gateway);

    let snaps = gateway.shard_snapshots();
    let run = ClusterRun {
        shards: n,
        replication,
        programs: requests.len(),
        cold_wall_us,
        warm_wall_us,
        per_shard_routed: snaps.iter().map(|s| s.routed).collect(),
        replica_writes: gateway.replica_writes(),
        misses: warm_misses,
        pinned: warm_misses == cold_misses && gateway.local_fallbacks() == 0,
    };
    drop(gateway);
    shutdown_shards(shards);
    run
}

/// The shard-scaling sweep: one [`ClusterRun`] per requested count.
pub fn shard_scaling(counts: &[usize], shard_threads: usize, submitters: usize) -> Vec<ClusterRun> {
    counts
        .iter()
        .map(|&n| cluster_batch(n, shard_threads, submitters))
        .collect()
}

/// Results of one replicated failover run: cold batch, kill the first
/// shard, re-drive the batch on the survivors.
#[derive(Debug, Clone)]
pub struct FailoverRun {
    /// Shard count before the kill.
    pub shards: usize,
    /// Replication factor.
    pub replication: usize,
    /// Cold round wall time (µs), all shards up.
    pub cold_wall_us: u64,
    /// Post-kill round wall time (µs), one shard down.
    pub failover_wall_us: u64,
    /// Pipeline stage executions the post-kill round added anywhere in
    /// the cluster — **zero** when replication did its job.
    pub recomputed_stages: u64,
    /// Requests the gateway answered from its embedded local server
    /// (should stay zero: the survivors own every key).
    pub local_fallbacks: u64,
}

impl std::fmt::Display for FailoverRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} shard(s) x{}: cold {:.1} ms, failover {:.1} ms, \
             {} recomputed stages, {} local fallbacks",
            self.shards,
            self.replication,
            self.cold_wall_us as f64 / 1e3,
            self.failover_wall_us as f64 / 1e3,
            self.recomputed_stages,
            self.local_fallbacks,
        )
    }
}

fn aggregate_executions(gateway: &Gateway) -> u64 {
    gateway
        .shard_snapshots()
        .iter()
        .map(|s| {
            s.stats
                .as_ref()
                .and_then(|v| v.get("executions"))
                .map(|ex| match ex {
                    Json::Obj(fields) => fields.iter().filter_map(|(_, v)| v.as_u64()).sum(),
                    _ => 0,
                })
                .unwrap_or(0)
        })
        .sum()
}

/// The availability headline: cold MachSuite batch through `n` shards
/// with the given replication, kill the first shard, re-drive the
/// batch. With replication ≥ 2 the failover round must recompute
/// nothing.
pub fn failover_batch(
    n: usize,
    replication: usize,
    shard_threads: usize,
    submitters: usize,
) -> FailoverRun {
    assert!(n >= 2, "failover needs a survivor");
    let mut shards = spawn_shards(n, shard_threads);
    // Admission cache off: the post-kill round must actually re-route
    // to the survivors, not be answered from the gateway's front door.
    let gateway = GatewayConfig::new(shards.iter().map(|s| s.addr.clone()))
        .replication(replication)
        .admission_cache(0)
        .build();
    assert_eq!(gateway.live_shards(), n, "all shards dialed");
    let requests = machsuite_requests();

    let cold_wall_us = drive(&gateway, &requests, submitters);
    let fan = replication.min(n) as u64;
    assert!(
        await_shard_requests(&gateway, requests.len() as u64 * fan),
        "replication fan-out never drained"
    );
    let baseline = aggregate_executions(&gateway);

    // Kill the first shard (graceful: the bench measures routing, not
    // TCP teardown pathology — the tests cover SIGKILL).
    let victim = shards.remove(0);
    if let Ok(mut c) = Client::connect(victim.addr.as_str()) {
        let _ = c.shutdown_server();
    }
    let _ = victim.join.join();

    let failover_wall_us = drive(&gateway, &requests, submitters);
    let run = FailoverRun {
        shards: n,
        replication,
        cold_wall_us,
        failover_wall_us,
        recomputed_stages: aggregate_executions(&gateway) - baseline,
        local_fallbacks: gateway.local_fallbacks(),
    };
    drop(gateway);
    shutdown_shards(shards);
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_shard_cluster_pins_sources_and_spreads_load() {
        let run = cluster_batch(2, 2, 4);
        assert_eq!(run.shards, 2);
        assert!(run.programs >= 8);
        assert!(run.misses > 0, "cold round computed somewhere");
        assert!(run.pinned, "warm round must not recompile: {run}");
        // Both shards saw traffic, and every request went to a shard.
        assert_eq!(run.per_shard_routed.len(), 2);
        for (i, &routed) in run.per_shard_routed.iter().enumerate() {
            assert!(routed > 0, "shard {i} idle: {run}");
        }
        assert_eq!(
            run.per_shard_routed.iter().sum::<u64>(),
            2 * run.programs as u64
        );
    }

    #[test]
    fn scaling_sweep_is_pinned_at_every_width() {
        for run in shard_scaling(&[1, 2], 1, 2) {
            assert!(run.pinned, "{run}");
            assert_eq!(
                run.per_shard_routed.iter().sum::<u64>(),
                2 * run.programs as u64,
                "{run}"
            );
        }
    }

    #[test]
    fn replicated_cluster_fans_out_and_stays_pinned() {
        let run = cluster_batch_replicated(2, 2, 2, 4);
        assert_eq!(run.replication, 2);
        // Every cold compute fanned out to the one other shard.
        assert_eq!(run.replica_writes, run.programs as u64, "{run}");
        assert!(run.pinned, "replication broke pinning: {run}");
    }

    #[test]
    fn replicated_failover_recomputes_nothing() {
        let run = failover_batch(2, 2, 2, 4);
        assert_eq!(run.recomputed_stages, 0, "{run}");
        assert_eq!(run.local_fallbacks, 0, "{run}");
    }

    #[test]
    fn latency_stats_take_nearest_rank_quantiles() {
        let stats = LatencyStats::from_samples((1..=100).rev().collect());
        assert_eq!(stats.requests, 100);
        assert_eq!(stats.p50_us, 51, "rank rounds half away from zero");
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.mean_us, 50);
        assert_eq!(LatencyStats::from_json(&stats.to_json()), Some(stats));

        let one = LatencyStats::from_samples(vec![7]);
        assert_eq!((one.p50_us, one.p99_us, one.mean_us), (7, 7, 7));
    }

    #[test]
    fn gateway_trajectory_pins_the_first_baseline() {
        let first = vec![(
            "warm_2shard".to_string(),
            LatencyStats {
                requests: 32,
                p50_us: 100,
                p99_us: 400,
                mean_us: 150,
            },
        )];
        let pinned = merge_gateway_trajectory(None, &first);
        assert_eq!(
            pinned.get("baseline").and_then(|b| b.get("warm_2shard")),
            pinned.get("current").and_then(|c| c.get("warm_2shard")),
        );

        // A faster second run keeps the old baseline and reports the
        // improvement as a >1 ratio; a brand-new scenario self-pins.
        let second = vec![
            (
                "warm_2shard".to_string(),
                LatencyStats {
                    requests: 32,
                    p50_us: 50,
                    p99_us: 200,
                    mean_us: 75,
                },
            ),
            (
                "warm_2shard_traced".to_string(),
                LatencyStats {
                    requests: 32,
                    p50_us: 60,
                    p99_us: 240,
                    mean_us: 90,
                },
            ),
        ];
        let merged = merge_gateway_trajectory(Some(&pinned), &second);
        let speedup = |name: &str, q: &str| {
            merged
                .get("speedup")
                .and_then(|s| s.get(name))
                .and_then(|s| s.get(q))
                .and_then(Json::as_f64)
                .unwrap()
        };
        assert_eq!(speedup("warm_2shard", "p50"), 2.0);
        assert_eq!(speedup("warm_2shard", "p99"), 2.0);
        assert_eq!(speedup("warm_2shard_traced", "p50"), 1.0);
        assert_eq!(
            merged
                .get("baseline")
                .and_then(|b| b.get("warm_2shard"))
                .and_then(|s| s.get("p50_us"))
                .and_then(Json::as_u64),
            Some(100),
            "baseline survives later runs"
        );
    }
}
