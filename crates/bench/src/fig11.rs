//! Fig. 11 — resource usage of the 16 MachSuite baselines vs their Dahlia
//! rewrites after the full flow (Appendix D).
//!
//! Both sides run through the same toolchain substrate, which is the
//! paper's point: "most of the benchmarks perform identically when
//! rewritten in Dahlia... because Dahlia generates C++ which goes through
//! the same synthesis flow".

use dahlia_kernels::all_benches;
use hls_sim::Estimate;

/// Baseline-vs-rewrite comparison for one benchmark — one group of bars in
/// each of the six panels (BRAM, DSP, LUT-mem, LUT, registers, runtime).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark name.
    pub name: &'static str,
    /// The hand-written HLS baseline.
    pub baseline: Estimate,
    /// The Dahlia rewrite, lowered through the compiler.
    pub rewrite: Estimate,
}

impl Comparison {
    /// Runtime in milliseconds at the paper's 250 MHz target.
    pub fn runtimes_ms(&self) -> (f64, f64) {
        (
            self.baseline.runtime_ms(250.0),
            self.rewrite.runtime_ms(250.0),
        )
    }
}

/// Run the comparison for all 16 benchmarks.
pub fn run() -> Vec<Comparison> {
    all_benches()
        .into_iter()
        .map(|b| {
            let prog = dahlia_core::parse(&b.source).expect("bench sources parse");
            dahlia_core::typecheck(&prog).expect("bench sources typecheck");
            let rewrite = hls_sim::estimate(&dahlia_backend::lower(&prog, b.name));
            let baseline = hls_sim::estimate(&b.baseline);
            Comparison {
                name: b.name,
                baseline,
                rewrite,
            }
        })
        .collect()
}

/// Render the six panels as CSV.
pub fn to_csv(rows: &[Comparison]) -> String {
    let mut out = String::from(
        "name,brams_base,brams_rw,dsps_base,dsps_rw,lutmem_base,lutmem_rw,\
         luts_base,luts_rw,regs_base,regs_rw,runtime_base_ms,runtime_rw_ms\n",
    );
    for c in rows {
        let (rb, rr) = c.runtimes_ms();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3}\n",
            c.name,
            c.baseline.brams,
            c.rewrite.brams,
            c.baseline.dsps,
            c.rewrite.dsps,
            c.baseline.lut_mems,
            c.rewrite.lut_mems,
            c.baseline.luts,
            c.rewrite.luts,
            c.baseline.ffs,
            c.rewrite.ffs,
            rb,
            rr
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows() {
        let rows = run();
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn rewrites_track_baselines() {
        // The figure's visual claim: bars of comparable height. Geometric
        // mean of the LUT ratio should be near 1.
        let rows = run();
        let mut log_sum = 0.0;
        for c in &rows {
            let ratio = c.rewrite.luts as f64 / c.baseline.luts.max(1) as f64;
            log_sum += ratio.ln();
        }
        let geomean = (log_sum / rows.len() as f64).exp();
        assert!(
            (0.5..2.0).contains(&geomean),
            "geomean LUT ratio {geomean:.2} should be near 1"
        );
    }

    #[test]
    fn csv_renders() {
        let rows = run();
        let csv = to_csv(&rows);
        assert_eq!(csv.lines().count(), 17);
        assert!(csv.contains("gemm-ncubed"));
    }
}
