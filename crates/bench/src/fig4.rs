//! Fig. 4 — the predictability pitfalls of traditional HLS, measured on the
//! §2 dense matrix-multiplication kernel (Fig. 2) through the toolchain
//! simulator:
//!
//! * **4a** — unrolling without partitioning: area grows, latency doesn't
//!   improve (bank-port serialization);
//! * **4b** — unrolling against fixed 8-way partitioning: only unroll
//!   factors dividing 8 behave ("predictable points"); some configurations
//!   miscompile;
//! * **4c** — banking and unrolling in lockstep: factors that do not divide
//!   the array size pay leftover hardware.

use hls_sim::{estimate, Access, ArrayDecl, Estimate, Idx, Kernel, Loop, Op, OpKind};

/// One point of a Fig. 4 sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept factor (unroll and/or banking).
    pub factor: u64,
    /// Banking in effect.
    pub banking: u64,
    /// Toolchain estimate.
    pub estimate: Estimate,
    /// Does the configuration obey the paper's "unwritten rule"?
    pub predictable: bool,
}

/// The Fig. 2 matrix-multiply kernel: `prod[i][j] = Σ_k m1[i][k]·m2[k][j]`,
/// with the operand matrices cyclically partitioned `banking` ways along
/// the `k` dimension and the inner loop unrolled `unroll` times.
pub fn matmul_kernel(n: u64, banking: u64, unroll: u64) -> Kernel {
    let inner = Loop::new("k", n)
        .unrolled(unroll)
        .stmt(
            Op::compute(OpKind::IntMul)
                .read(Access::new("m1", vec![Idx::var("i"), Idx::var("k")]))
                .read(Access::new("m2", vec![Idx::var("k"), Idx::var("j")]))
                .into_stmt(),
        )
        .stmt(Op::compute(OpKind::IntAlu).into_stmt());
    let nest = Loop::new("i", n).stmt(
        Loop::new("j", n)
            .stmt(inner.into_stmt())
            .stmt(
                Op::compute(OpKind::Copy)
                    .write(Access::new("prod", vec![Idx::var("i"), Idx::var("j")]))
                    .into_stmt(),
            )
            .into_stmt(),
    );
    Kernel::new(format!("matmul-{n}-b{banking}-u{unroll}"))
        .array(ArrayDecl::new("m1", 32, &[n, n]).partitioned(&[1, banking]))
        .array(ArrayDecl::new("m2", 32, &[n, n]).partitioned(&[banking, 1]))
        .array(ArrayDecl::new("prod", 32, &[n, n]))
        .stmt(nest.into_stmt())
}

/// Fig. 4a: unrolling with no partitioning.
pub fn sweep_a(n: u64, max_unroll: u64) -> Vec<SweepPoint> {
    (1..=max_unroll)
        .map(|u| SweepPoint {
            factor: u,
            banking: 1,
            estimate: estimate(&matmul_kernel(n, 1, u)),
            predictable: u == 1,
        })
        .collect()
}

/// Fig. 4b: unrolling against fixed 8-way partitioning; predictable points
/// have `unroll | 8`.
pub fn sweep_b(n: u64, max_unroll: u64) -> Vec<SweepPoint> {
    (1..=max_unroll)
        .map(|u| SweepPoint {
            factor: u,
            banking: 8,
            estimate: estimate(&matmul_kernel(n, 8, u)),
            predictable: 8 % u == 0,
        })
        .collect()
}

/// Fig. 4c: banking = unrolling, swept together; predictable points have
/// `factor | n`.
pub fn sweep_c(n: u64, max_factor: u64) -> Vec<SweepPoint> {
    (1..=max_factor)
        .map(|k| SweepPoint {
            factor: k,
            banking: k,
            estimate: estimate(&matmul_kernel(n, k, k)),
            predictable: n.is_multiple_of(k),
        })
        .collect()
}

/// Render a sweep as the CSV series the figure plots.
pub fn to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from("factor,banking,luts,runtime_ms,predictable,correct\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.3},{},{}\n",
            p.factor,
            p.banking,
            p.estimate.luts,
            p.estimate.runtime_ms(250.0),
            p.predictable,
            p.estimate.correct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4a_no_speedup_but_more_area() {
        let pts = sweep_a(512, 10);
        let base = &pts[0].estimate;
        for p in &pts[1..] {
            assert!(
                p.estimate.cycles * 10 >= base.cycles * 9,
                "u={}: latency should not really improve ({} vs {})",
                p.factor,
                p.estimate.cycles,
                base.cycles
            );
        }
        assert!(pts[7].estimate.luts > base.luts, "area grows with PEs");
    }

    #[test]
    fn fig4b_divisors_behave() {
        let pts = sweep_b(512, 16);
        let at = |u: u64| &pts[(u - 1) as usize];
        // Matched point: real speedup.
        assert!(at(8).estimate.cycles * 6 < at(1).estimate.cycles);
        // u=9 is worse than u=8 in both dimensions (paper: reducing 9 → 8
        // improves both performance and area).
        assert!(at(9).estimate.cycles > at(8).estimate.cycles);
        assert!(at(9).estimate.luts > at(8).estimate.luts);
        // Predictable points: latency monotonically improves 1→2→4→8.
        let lat: Vec<u64> = [1u64, 2, 4, 8]
            .iter()
            .map(|&u| at(u).estimate.cycles)
            .collect();
        assert!(lat.windows(2).all(|w| w[1] < w[0]), "{lat:?}");
    }

    #[test]
    fn fig4c_leftover_hardware() {
        let pts = sweep_c(512, 16);
        let at = |u: u64| &pts[(u - 1) as usize];
        // Non-divisors pay guard hardware: compare per-PE LUTs of 7 vs 8.
        let per_pe7 = at(7).estimate.luts as f64 / 7.0;
        let per_pe8 = at(8).estimate.luts as f64 / 8.0;
        assert!(per_pe7 > per_pe8, "{per_pe7} vs {per_pe8}");
        // Predictable points scale performance.
        assert!(at(16).estimate.cycles < at(4).estimate.cycles);
    }

    #[test]
    fn csv_has_all_rows() {
        let csv = to_csv(&sweep_a(64, 4));
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("factor,"));
    }
}
