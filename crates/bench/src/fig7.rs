//! Fig. 7 — the exhaustive `gemm-blocked` design-space exploration (§5.2).
//!
//! The space has 32,000 configurations: four free banking parameters
//! (the operand matrices' two dimensions each) over {1..4} and three
//! unroll factors over {1, 2, 4, 6, 8}. Every point is estimated through
//! the HLS substrate; the Dahlia type checker marks the accepted subset
//! (354 points / 1.1% in the paper); Pareto optimality is computed over
//! the five objectives of §5.2.

use dahlia_dse::{
    accepts, explore_configs, mark_pareto, Config, DesignPoint, DirectProvider, EstimateProvider,
    ParamSpace, Summary,
};
use dahlia_kernels::gemm::{gemm_blocked_baseline, gemm_blocked_source, GemmBlockedParams};

/// The full 32,000-point parameter space.
pub fn space() -> ParamSpace {
    ParamSpace::new()
        .param("bank_m1_d1", 1..=4)
        .param("bank_m1_d2", 1..=4)
        .param("bank_m2_d1", 1..=4)
        .param("bank_m2_d2", 1..=4)
        .param("unroll_i", [1, 2, 4, 6, 8])
        .param("unroll_j", [1, 2, 4, 6, 8])
        .param("unroll_k", [1, 2, 4, 6, 8])
}

/// Decode a configuration into kernel parameters (paper-size matrices).
pub fn params_of(cfg: &Config) -> GemmBlockedParams {
    GemmBlockedParams {
        n: 128,
        block: 8,
        bank_m1: (cfg["bank_m1_d1"], cfg["bank_m1_d2"]),
        bank_m2: (cfg["bank_m2_d1"], cfg["bank_m2_d2"]),
        unroll: (cfg["unroll_i"], cfg["unroll_j"], cfg["unroll_k"]),
    }
}

/// Evaluate one configuration: estimate through the HLS substrate, and
/// record whether Dahlia accepts the equivalent source.
pub fn evaluate(cfg: Config) -> DesignPoint {
    let p = params_of(&cfg);
    let accepted = accepts(&gemm_blocked_source(&p));
    let est = hls_sim::estimate(&gemm_blocked_baseline(&p));
    DesignPoint::from_estimate(cfg, &est, accepted)
}

/// Run the exploration over every `stride`-th configuration (stride 1 =
/// the paper's full 32,000-point sweep) and mark the Pareto frontier.
pub fn run(stride: usize) -> Vec<DesignPoint> {
    run_with(stride, &DirectProvider::new())
}

/// [`run`] with the source-pipeline work (parse + affine check, plus
/// lower/estimate for accepted programs) routed through an arbitrary
/// [`EstimateProvider`] — the figure driver passes
/// `dahlia_server::CachedProvider` so repeated strides share a
/// content-addressed cache.
///
/// Fig. 7 measures the **full** space (7a's frontier spans points the
/// checker rejects), so after the provider sweep every point's resource
/// estimate is taken from the HLS-substrate baseline kernel — exactly
/// what [`evaluate`] does — while the acceptance verdict comes from the
/// provider. The result is point-for-point identical to the inline
/// path. The provider does run lower/estimate for accepted sources
/// (~1% of the space) even though only the verdict is used here; that
/// is deliberate — those artifacts land in the shared cache, so finer
/// strides and other consumers of the same server get them for free.
pub fn run_with(stride: usize, provider: &dyn EstimateProvider) -> Vec<DesignPoint> {
    let cfgs: Vec<Config> = space().iter().step_by(stride.max(1)).collect();
    let ex = explore_configs(cfgs, "gemm_blocked", provider, |cfg| {
        gemm_blocked_source(&params_of(cfg))
    });
    let mut points: Vec<DesignPoint> = ex
        .points
        .into_iter()
        .map(|p| {
            let est = hls_sim::estimate(&gemm_blocked_baseline(&params_of(&p.config)));
            let accepted = p.accepted;
            DesignPoint::from_estimate(p.config, &est, accepted)
        })
        .collect();
    mark_pareto(&mut points);
    points
}

/// The acceptance/Pareto summary the paper quotes.
pub fn summarize(points: &[DesignPoint]) -> Summary {
    Summary::of(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_is_paper_sized() {
        assert_eq!(space().len(), 32_000);
    }

    #[test]
    fn subsampled_run_matches_paper_shape() {
        // Every 101st point: 317 configurations — enough for the ratios.
        let points = run(101);
        let s = summarize(&points);
        assert!(s.total > 300);
        let ratio = s.acceptance_ratio();
        assert!(
            (0.001..0.08).contains(&ratio),
            "acceptance ratio {ratio:.4} should be on the order of the paper's 1.1%"
        );
        // Accepted points must include Pareto-optimal ones (the paper's
        // headline claim).
        assert!(s.accepted_pareto > 0, "{s}");
    }

    #[test]
    fn accepted_points_follow_the_unwritten_rules() {
        for p in run(173) {
            if p.accepted {
                // unroll_k must divide both k-dimension banking factors
                // (through a shrink view) for parallel access.
                let uk = p.config["unroll_k"];
                let (f12, f21) = (p.config["bank_m1_d2"], p.config["bank_m2_d1"]);
                assert!(
                    uk == 1 || (f12 % uk == 0 && f21 % uk == 0),
                    "accepted config breaks the rule: {:?}",
                    p.config
                );
            }
        }
    }

    #[test]
    fn rejected_points_include_pareto_outliers() {
        // The paper: Dahlia rejects some Pareto-optimal points (the cost of
        // predictability). With heuristic noise, at least verify rejected
        // points exist in volume.
        let points = run(211);
        let rejected = points.iter().filter(|p| !p.accepted).count();
        assert!(rejected > points.len() / 2);
    }
}
