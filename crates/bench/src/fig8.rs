//! Fig. 8 — Dahlia-directed design-space exploration for the three §5.3
//! case studies: `stencil2d`, `md-knn`, and `md-grid`.
//!
//! Following the paper's methodology, the full space is *filtered by the
//! type checker first*; only the accepted configurations are estimated
//! (through the real pipeline: parse → check → lower → estimate), and the
//! Pareto frontier is computed within the accepted set.

use dahlia_dse::{
    explore_configs, Config, DesignPoint, DirectProvider, EstimateProvider, ParamSpace, Summary,
};
use dahlia_kernels::md::{md_grid_source, md_knn_source, MdGridParams, MdKnnParams};
use dahlia_kernels::stencil::{stencil2d_source, Stencil2dParams};

/// One of the three case studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Study {
    /// Fig. 8a.
    Stencil2d,
    /// Fig. 8b.
    MdKnn,
    /// Fig. 8c.
    MdGrid,
}

impl Study {
    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            Study::Stencil2d => "stencil2d",
            Study::MdKnn => "md-knn",
            Study::MdGrid => "md-grid",
        }
    }

    /// The full parameter space of the study.
    pub fn space(self) -> ParamSpace {
        match self {
            // orig banks {1..6}², filter banks {1..3}², unroll {1..3}²
            // = 2,916 points.
            Study::Stencil2d => ParamSpace::new()
                .param("bank_r", 1..=6)
                .param("bank_c", 1..=6)
                .param("bank_f1", 1..=3)
                .param("bank_f2", 1..=3)
                .param("unroll_1", 1..=3)
                .param("unroll_2", 1..=3),
            // four memories × banking {1..4}, two loops × unroll {1..8}
            // = 16,384 points.
            Study::MdKnn => ParamSpace::new()
                .param("bank_dx", 1..=4)
                .param("bank_dy", 1..=4)
                .param("bank_dz", 1..=4)
                .param("bank_f", 1..=4)
                .param("unroll_i", 1..=8)
                .param("unroll_j", 1..=8),
            // per-dimension banking {1..4} (block dims, particle dim,
            // counts), two loops × unroll {1..8} = 16,384 points.
            Study::MdGrid => ParamSpace::new()
                .param("bank_b1", 1..=4)
                .param("bank_b2", 1..=4)
                .param("bank_p", 1..=4)
                .param("bank_np", 1..=4)
                .param("unroll_y", 1..=8)
                .param("unroll_z", 1..=8),
        }
    }

    /// Generate the Dahlia source for one configuration.
    pub fn source(self, cfg: &Config) -> String {
        match self {
            Study::Stencil2d => stencil2d_source(&Stencil2dParams {
                rows: 126,
                cols: 66,
                bank_orig: (cfg["bank_r"], cfg["bank_c"]),
                bank_filter: (cfg["bank_f1"], cfg["bank_f2"]),
                unroll: (cfg["unroll_1"], cfg["unroll_2"]),
            }),
            Study::MdKnn => md_knn_source(&MdKnnParams {
                n: 64,
                k: 16,
                bank_d: (cfg["bank_dx"], cfg["bank_dy"], cfg["bank_dz"]),
                bank_f: cfg["bank_f"],
                unroll: (cfg["unroll_i"], cfg["unroll_j"]),
            }),
            Study::MdGrid => md_grid_source(&MdGridParams {
                b: 4,
                p: 8,
                bank_pos: (cfg["bank_b1"], cfg["bank_b2"], cfg["bank_p"]),
                bank_np: cfg["bank_np"],
                unroll: (cfg["unroll_y"], cfg["unroll_z"]),
            }),
        }
    }
}

/// Explore every `stride`-th configuration with the inline pipeline;
/// accepted points are estimated through the full Dahlia pipeline,
/// rejected points carry no estimate (mirroring the paper, which only
/// measures the accepted space).
pub fn run(study: Study, stride: usize) -> Vec<DesignPoint> {
    run_with(study, stride, &DirectProvider::new())
}

/// [`run`] through an arbitrary [`EstimateProvider`] — the figure driver
/// passes `dahlia_server::CachedProvider` here so repeated strides (and
/// the three studies of one invocation) share a content-addressed cache.
/// Pareto is marked among the estimated (accepted, correct) points; the
/// checker-rejected remainder is excluded, as in the paper's
/// Dahlia-directed workflow.
pub fn run_with(study: Study, stride: usize, provider: &dyn EstimateProvider) -> Vec<DesignPoint> {
    let cfgs: Vec<Config> = study.space().iter().step_by(stride.max(1)).collect();
    explore_configs(cfgs, study.name(), provider, |cfg| study.source(cfg)).points
}

/// Summary for a study run.
pub fn summarize(points: &[DesignPoint]) -> Summary {
    Summary::of(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_sizes_match_paper() {
        assert_eq!(Study::Stencil2d.space().len(), 2_916);
        assert_eq!(Study::MdKnn.space().len(), 16_384);
        assert_eq!(Study::MdGrid.space().len(), 16_384);
    }

    #[test]
    fn stencil_acceptance_is_sparse_and_useful() {
        let pts = run(Study::Stencil2d, 7);
        let s = summarize(&pts);
        assert!(s.accepted > 0, "{s}");
        let ratio = s.acceptance_ratio();
        assert!(
            ratio < 0.12,
            "stencil acceptance should be sparse: {ratio:.3}"
        );
        // Accepted points vary in latency (a real trade-off space).
        let lats: std::collections::BTreeSet<u64> = pts
            .iter()
            .filter(|p| p.accepted)
            .map(|p| p.cycles)
            .collect();
        assert!(lats.len() > 1);
    }

    #[test]
    fn mdknn_acceptance_sparse() {
        let pts = run(Study::MdKnn, 37);
        let s = summarize(&pts);
        assert!(s.accepted > 0, "{s}");
        assert!(s.acceptance_ratio() < 0.15, "{s}");
    }

    #[test]
    fn mdgrid_acceptance_sparse() {
        let pts = run(Study::MdGrid, 37);
        let s = summarize(&pts);
        assert!(s.accepted > 0, "{s}");
        assert!(s.acceptance_ratio() < 0.15, "{s}");
    }

    #[test]
    fn accepted_points_have_pareto_subset() {
        let pts = run(Study::Stencil2d, 5);
        let s = summarize(&pts);
        assert!(s.accepted_pareto > 0);
        assert!(s.accepted_pareto <= s.accepted);
    }
}
