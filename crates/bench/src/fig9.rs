//! Fig. 9 / Fig. 13 — the Spatial comparison (§7 / Appendix E):
//! `gemm-ncubed` in Spatial with inner-loop parallelization 1..16, banking
//! inferred by the compiler, resources normalized to the unrolled-by-1
//! design.

use spatial_sim::{normalized_usage, sweep, SpatialPoint};

/// Run the Appendix E sweep on 128×128 matrices.
pub fn run() -> Vec<SpatialPoint> {
    sweep(128, 1..=16)
}

/// Render Fig. 13's series: banking decision, normalized and absolute
/// resources, predictability flag.
pub fn to_csv(points: &[SpatialPoint]) -> String {
    let norm = normalized_usage(points);
    let mut out = String::from(
        "unroll,banking,predictable,dsp_norm,bram_norm,lut_norm,dsps,brams,luts,ffs,cycles\n",
    );
    for (p, (dn, bn, ln)) in points.iter().zip(norm) {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3},{},{},{},{},{}\n",
            p.unroll,
            p.banking,
            p.predictable(),
            dn,
            bn,
            ln,
            p.estimate.dsps,
            p.estimate.brams,
            p.estimate.luts,
            p.estimate.ffs,
            p.estimate.cycles
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_points_with_fig13a_bankings() {
        let pts = run();
        assert_eq!(pts.len(), 16);
        let bankings: Vec<u64> = pts.iter().map(|p| p.banking).collect();
        assert_eq!(&bankings[..8], &[1, 2, 4, 4, 8, 8, 8, 8]);
        assert!(bankings[8..].iter().all(|&b| b == 16));
    }

    #[test]
    fn normalized_resources_jump_on_mismatch() {
        let pts = run();
        let csv = to_csv(&pts);
        assert!(csv.lines().count() == 17);
        // The u=9 point over-banks to 16 and pays for it.
        let lut9 = pts[8].estimate.luts as f64 / 9.0;
        let lut8 = pts[7].estimate.luts as f64 / 8.0;
        assert!(lut9 > lut8);
    }
}
