//! The compiler front-end benchmark: per-stage wall time over the
//! MachSuite kernels plus a cold `gemm-blocked` DSE sweep.
//!
//! The paper's headline workload (Fig. 7/8) is a design-space sweep: a
//! storm of near-identical programs where every cache *miss* pays the
//! full front end. This harness times exactly that hot path —
//! `parse`, `check`, `desugar`, and `lower` per MachSuite kernel, and a
//! strided slice of the 32,000-point gemm-blocked sweep compiled cold
//! (parse + affine check per configuration, desugar for the accepted
//! subset) — and records the numbers in `BENCH_frontend.json` at the
//! repository root so every PR has a trajectory to compare against.
//!
//! The harness deliberately uses only stable public APIs (`parse`,
//! `typecheck`, `desugar`, `lower`), so the same binary measures the
//! tree before and after a front-end change.

use std::time::Instant;

use dahlia_server::json::{obj, Json};

/// Median-of-samples wall time for every measured workload, in
/// nanoseconds. `sweep_points`/`sweep_accepted` pin the workload size so
/// recorded numbers are only compared like-for-like.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrontendReport {
    /// Σ over MachSuite kernels of median parse time.
    pub parse_ns: f64,
    /// Σ over MachSuite kernels of median typecheck time (pre-parsed).
    pub check_ns: f64,
    /// Σ over MachSuite kernels of median desugar time (pre-parsed).
    pub desugar_ns: f64,
    /// Σ over MachSuite kernels of median lower time (pre-parsed).
    pub lower_ns: f64,
    /// Median lower-only pass over the sweep's accepted ASTs, parse
    /// and check prepaid — the lower stage measured in isolation
    /// rather than inside the sweep aggregate.
    pub lower_warm_ns: f64,
    /// One cold front-end pass over the strided gemm-blocked sweep.
    pub dse_sweep_ns: f64,
    /// Number of sweep configurations compiled.
    pub sweep_points: u64,
    /// How many of them the affine checker accepted.
    pub sweep_accepted: u64,
}

/// Measurement effort: `quick` is the CI smoke setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Few samples/iterations and a coarse sweep stride. Seconds, not
    /// minutes — used by `cargo test` and the CI bench smoke step.
    Quick,
    /// Several samples per stage and a finer sweep stride.
    Full,
}

impl Effort {
    fn samples(self) -> usize {
        match self {
            Effort::Quick => 3,
            Effort::Full => 7,
        }
    }

    fn iters(self) -> usize {
        match self {
            Effort::Quick => 2,
            Effort::Full => 6,
        }
    }

    fn sweep_stride(self) -> usize {
        match self {
            Effort::Quick => 401,
            Effort::Full => 101,
        }
    }
}

/// Time `f` (run `iters` times per sample) and return the median
/// per-iteration nanoseconds across `samples` samples.
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut xs = Vec::with_capacity(samples);
    // One untimed warm-up pass.
    f();
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        xs.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Run the full measurement suite.
pub fn run(effort: Effort) -> FrontendReport {
    let (s, n) = (effort.samples(), effort.iters());
    let mut report = FrontendReport::default();

    // Per-stage medians over the 16 MachSuite kernels.
    for b in dahlia_kernels::all_benches() {
        let src = b.source.clone();
        report.parse_ns += median_ns(s, n, || {
            std::hint::black_box(dahlia_core::parse(&src).expect("kernel parses"));
        });
        let ast = dahlia_core::parse(&src).expect("kernel parses");
        report.check_ns += median_ns(s, n, || {
            std::hint::black_box(dahlia_core::typecheck(&ast).expect("kernel typechecks"));
        });
        report.desugar_ns += median_ns(s, n, || {
            std::hint::black_box(dahlia_core::desugar::desugar(&ast));
        });
        report.lower_ns += median_ns(s, n, || {
            std::hint::black_box(dahlia_backend::lower(&ast, b.name));
        });
    }

    // The cold DSE sweep: every configuration is a distinct source, so
    // nothing can be served from cache — this is the miss storm the
    // cluster pays during Fig. 7/8 exploration.
    let cfgs: Vec<_> = crate::fig7::space()
        .iter()
        .step_by(effort.sweep_stride())
        .collect();
    let sources: Vec<String> = cfgs
        .iter()
        .map(|cfg| dahlia_kernels::gemm::gemm_blocked_source(&crate::fig7::params_of(cfg)))
        .collect();
    report.sweep_points = sources.len() as u64;
    let mut accepted = 0u64;
    report.dse_sweep_ns = median_ns(s.min(3), 1, || {
        accepted = 0;
        for src in &sources {
            let Ok(ast) = dahlia_core::parse(src) else {
                continue;
            };
            if dahlia_core::typecheck(&ast).is_ok() {
                accepted += 1;
                std::hint::black_box(dahlia_core::desugar::desugar(&ast));
            }
        }
    });
    report.sweep_accepted = accepted;

    // The lower-only warm scenario: every accepted configuration's AST
    // with parse + check prepaid, so a lowering regression shows up
    // here undiluted by the rest of the front end.
    let accepted_asts: Vec<_> = sources
        .iter()
        .filter_map(|src| {
            let ast = dahlia_core::parse(src).ok()?;
            dahlia_core::typecheck(&ast).ok()?;
            Some(ast)
        })
        .collect();
    report.lower_warm_ns = median_ns(s, n, || {
        for ast in &accepted_asts {
            std::hint::black_box(dahlia_backend::lower(ast, "gemm_blocked"));
        }
    });
    report
}

impl FrontendReport {
    /// Encode as a JSON object (stable field order).
    pub fn to_json(&self) -> Json {
        obj([
            ("parse_ns", Json::Num(self.parse_ns)),
            ("check_ns", Json::Num(self.check_ns)),
            ("desugar_ns", Json::Num(self.desugar_ns)),
            ("lower_ns", Json::Num(self.lower_ns)),
            ("lower_warm_ns", Json::Num(self.lower_warm_ns)),
            ("dse_sweep_ns", Json::Num(self.dse_sweep_ns)),
            ("sweep_points", Json::Num(self.sweep_points as f64)),
            ("sweep_accepted", Json::Num(self.sweep_accepted as f64)),
        ])
    }

    /// Decode from JSON (`None` on any structural mismatch).
    pub fn from_json(v: &Json) -> Option<FrontendReport> {
        Some(FrontendReport {
            parse_ns: v.get("parse_ns")?.as_f64()?,
            check_ns: v.get("check_ns")?.as_f64()?,
            desugar_ns: v.get("desugar_ns")?.as_f64()?,
            lower_ns: v.get("lower_ns")?.as_f64()?,
            lower_warm_ns: v.get("lower_warm_ns")?.as_f64()?,
            dse_sweep_ns: v.get("dse_sweep_ns")?.as_f64()?,
            sweep_points: v.get("sweep_points")?.as_u64()?,
            sweep_accepted: v.get("sweep_accepted")?.as_u64()?,
        })
    }
}

/// Merge a fresh measurement into the trajectory file's JSON: the first
/// ever measurement becomes the pinned `baseline`; later runs only
/// replace `current` and the derived `speedup` block, so the baseline
/// records the pre-optimization tree forever.
pub fn merge_into_trajectory(existing: Option<&Json>, current: &FrontendReport) -> Json {
    let baseline = existing
        .and_then(|j| j.get("baseline"))
        .and_then(FrontendReport::from_json)
        .unwrap_or_else(|| current.clone());
    let ratio = |b: f64, c: f64| {
        if c > 0.0 {
            Json::Num(b / c)
        } else {
            Json::Num(0.0)
        }
    };
    // The sweep's point count differs between `--quick` and full runs;
    // normalize to per-point cost so the ratio stays like-for-like.
    let per_point = |r: &FrontendReport| {
        if r.sweep_points > 0 {
            r.dse_sweep_ns / r.sweep_points as f64
        } else {
            r.dse_sweep_ns
        }
    };
    obj([
        ("schema", Json::Num(1.0)),
        ("unit", Json::Str("ns".into())),
        ("workload", Json::Str(
            "16 MachSuite kernels x {parse,check,desugar,lower} + cold gemm-blocked DSE sweep (front end only)".into(),
        )),
        ("baseline", baseline.to_json()),
        ("current", current.to_json()),
        (
            "speedup",
            obj([
                ("parse", ratio(baseline.parse_ns, current.parse_ns)),
                ("check", ratio(baseline.check_ns, current.check_ns)),
                ("desugar", ratio(baseline.desugar_ns, current.desugar_ns)),
                ("lower", ratio(baseline.lower_ns, current.lower_ns)),
                (
                    "lower_warm",
                    ratio(baseline.lower_warm_ns, current.lower_warm_ns),
                ),
                ("dse_sweep", ratio(per_point(&baseline), per_point(current))),
            ]),
        ),
    ])
}

/// The trajectory file lives at the repository root, next to
/// `ROADMAP.md`, regardless of the invocation directory.
pub fn trajectory_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_frontend.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let r = FrontendReport {
            parse_ns: 1.5,
            check_ns: 2.5,
            desugar_ns: 3.5,
            lower_ns: 4.5,
            lower_warm_ns: 4.25,
            dse_sweep_ns: 5.5,
            sweep_points: 80,
            sweep_accepted: 3,
        };
        let back = FrontendReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn first_measurement_pins_the_baseline() {
        let r = FrontendReport {
            parse_ns: 100.0,
            dse_sweep_ns: 1000.0,
            ..Default::default()
        };
        let j = merge_into_trajectory(None, &r);
        assert_eq!(
            FrontendReport::from_json(j.get("baseline").unwrap()).unwrap(),
            r
        );
        // A second, faster run keeps the original baseline.
        let faster = FrontendReport {
            parse_ns: 50.0,
            dse_sweep_ns: 250.0,
            ..Default::default()
        };
        let j2 = merge_into_trajectory(Some(&j), &faster);
        assert_eq!(
            FrontendReport::from_json(j2.get("baseline").unwrap())
                .unwrap()
                .parse_ns,
            100.0
        );
        assert_eq!(
            FrontendReport::from_json(j2.get("current").unwrap())
                .unwrap()
                .parse_ns,
            50.0
        );
        let sp = j2.get("speedup").unwrap();
        assert_eq!(sp.get("parse").unwrap().as_f64().unwrap(), 2.0);
        assert_eq!(sp.get("dse_sweep").unwrap().as_f64().unwrap(), 4.0);
    }

    #[test]
    fn malformed_trajectory_rebaselines() {
        let r = FrontendReport {
            check_ns: 7.0,
            ..Default::default()
        };
        let garbled = Json::parse(r#"{"baseline":{"parse_ns":"zap"}}"#).unwrap();
        let j = merge_into_trajectory(Some(&garbled), &r);
        assert_eq!(
            FrontendReport::from_json(j.get("baseline").unwrap()).unwrap(),
            r
        );
    }
}
