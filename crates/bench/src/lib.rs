//! # dahlia-bench
//!
//! The benchmark harness that regenerates every figure of the Dahlia paper
//! against this repository's substrates. Each `figN` module exposes the
//! experiment as a library function (tested at reduced scale) and a binary
//! of the same name prints the full data series:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4` | Fig. 4a/4b/4c — HLS predictability pitfalls |
//! | `fig7` | Fig. 7a/7b/7c — gemm-blocked exhaustive DSE |
//! | `fig8` | Fig. 8a/8b/8c — Dahlia-directed DSE case studies |
//! | `fig9` | Fig. 9 + Fig. 13 — Spatial banking-inference sweep |
//! | `fig11` | Fig. 11a–f — MachSuite baseline vs Dahlia rewrite |
//!
//! Criterion benches (`cargo bench`) time the pipeline stages themselves:
//! type checking, lowering, estimation, scheduling, and Pareto filtering.

pub mod ablation;
pub mod fig11;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod serve;
