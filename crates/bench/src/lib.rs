//! # dahlia-bench
//!
//! The benchmark harness that regenerates every figure of the Dahlia paper
//! against this repository's substrates. Each `figN` module exposes the
//! experiment as a library function (tested at reduced scale) and a binary
//! of the same name prints the full data series:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4` | Fig. 4a/4b/4c — HLS predictability pitfalls |
//! | `fig7` | Fig. 7a/7b/7c — gemm-blocked exhaustive DSE |
//! | `fig8` | Fig. 8a/8b/8c — Dahlia-directed DSE case studies |
//! | `fig9` | Fig. 9 + Fig. 13 — Spatial banking-inference sweep |
//! | `fig11` | Fig. 11a–f — MachSuite baseline vs Dahlia rewrite |
//!
//! Criterion benches (`cargo bench`) time the pipeline stages themselves:
//! type checking, lowering, estimation, scheduling, and Pareto filtering.

pub mod ablation;
pub mod cluster;
pub mod fig11;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod frontend;
pub mod serve;

/// Parse figure-driver arguments into sweep strides (default `[1]`,
/// the full sweep). Shared by the `fig7` and `fig8` binaries, which
/// accept several strides per invocation and run them against one
/// caching provider. Rejects anything unparseable — a typo must not
/// silently launch the full 32,000-point sweep.
pub fn strides_from_args(args: impl Iterator<Item = String>) -> Result<Vec<usize>, String> {
    let mut strides = Vec::new();
    for a in args {
        match a.parse::<usize>() {
            Ok(n) if n > 0 => strides.push(n),
            _ => return Err(format!("bad stride `{a}` (want a positive integer)")),
        }
    }
    if strides.is_empty() {
        strides.push(1);
    }
    Ok(strides)
}

#[cfg(test)]
mod tests {
    #[test]
    fn strides_default_and_reject() {
        let parse = |xs: &[&str]| super::strides_from_args(xs.iter().map(|s| s.to_string()));
        assert_eq!(parse(&[]).unwrap(), vec![1]);
        assert_eq!(parse(&["101", "7"]).unwrap(), vec![101, 7]);
        assert!(parse(&["10x"]).is_err());
        assert!(parse(&["0"]).is_err());
    }
}
