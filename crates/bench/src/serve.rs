//! Served-vs-cold throughput: the compilation service as a DSE engine.
//!
//! The same checker-pruned sweep (a Fig. 8 study) is driven three ways:
//!
//! 1. **direct** — the classic inline pipeline, no caching;
//! 2. **served cold** — through `dahlia_server::CachedProvider` with an
//!    empty content-addressed cache (pays the same compiles, plus cache
//!    bookkeeping);
//! 3. **served warm** — the same sweep again on the same server: every
//!    stage is a cache hit.
//!
//! The acceptance claim for the service is that warm sweeps do no
//! compiler work at all (`cache_misses == 0`) and finish far faster;
//! `cargo bench --bench server` times the three modes, and the unit test
//! here pins the invariants at reduced scale.

use dahlia_dse::{explore, DirectProvider, EstimateProvider, Exploration, ProviderStats};
use dahlia_server::{CachedProvider, Server};

use crate::fig8::Study;

/// Results of the three-way comparison.
#[derive(Debug, Clone)]
pub struct ServeComparison {
    /// Points in the (subsampled) space.
    pub points: usize,
    /// Inline pipeline stats.
    pub direct: ProviderStats,
    /// Cold service stats (first sweep on an empty cache).
    pub served_cold: ProviderStats,
    /// Warm service stats (second sweep on the same server).
    pub served_warm: ProviderStats,
}

impl ServeComparison {
    /// Wall-clock speedup of the warm sweep over the direct sweep.
    pub fn warm_speedup(&self) -> f64 {
        self.direct.latency_us as f64 / self.served_warm.latency_us.max(1) as f64
    }
}

impl std::fmt::Display for ServeComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "served-vs-cold over {} points", self.points)?;
        writeln!(f, "  direct:      {}", self.direct)?;
        writeln!(f, "  served cold: {}", self.served_cold)?;
        writeln!(f, "  served warm: {}", self.served_warm)?;
        write!(f, "  warm speedup over direct: {:.1}×", self.warm_speedup())
    }
}

/// Run one sweep of `study` (every `stride`-th point) through `provider`.
pub fn sweep(study: Study, stride: usize, provider: &dyn EstimateProvider) -> Exploration {
    let space = study.space();
    let cfgs: Vec<_> = space.iter().step_by(stride.max(1)).collect();
    let mut sub = dahlia_dse::ParamSpace::new();
    // Rebuild a one-parameter index space so `explore` can iterate the
    // subsample; the generator maps indices back to real configurations.
    sub = sub.param("idx", 0..cfgs.len() as u64);
    explore(&sub, study.name(), provider, |cfg| {
        study.source(&cfgs[cfg["idx"] as usize])
    })
}

/// The three-way comparison at the given stride.
pub fn served_vs_cold(study: Study, stride: usize) -> ServeComparison {
    let direct = DirectProvider::new();
    let d = sweep(study, stride, &direct);

    let cached = CachedProvider::new(Server::new());
    let c = sweep(study, stride, &cached);
    let w = sweep(study, stride, &cached);

    // All three sweeps must agree on every verdict (same compiler, same
    // space) — a correctness check, not just a throughput one, so it
    // must also fire under `cargo bench` (debug assertions off there).
    assert_eq!(d.points.len(), c.points.len());
    for (a, b) in d.points.iter().zip(&c.points) {
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.cycles, b.cycles);
    }
    for (a, b) in c.points.iter().zip(&w.points) {
        assert_eq!(a, b);
    }

    ServeComparison {
        points: d.points.len(),
        direct: d.stats,
        served_cold: c.stats,
        served_warm: w.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_sweeps_do_no_compiler_work() {
        let cmp = served_vs_cold(Study::Stencil2d, 181);
        assert!(cmp.points > 10, "sweep too small to mean anything");
        // The cold service computes exactly what the direct pipeline does…
        assert_eq!(cmp.direct.requests, cmp.served_cold.requests);
        assert!(cmp.served_cold.cache_misses > 0);
        // …and the warm sweep is served entirely from the cache.
        assert_eq!(
            cmp.served_warm.cache_misses, 0,
            "warm sweep recompiled something"
        );
        assert_eq!(cmp.served_warm.requests, cmp.served_cold.requests);
        assert!(cmp.served_warm.cache_hits >= cmp.served_warm.requests);
    }

    #[test]
    fn served_sweep_matches_direct_verdicts() {
        let direct = DirectProvider::new();
        let cached = CachedProvider::new(Server::with_threads(2));
        let d = sweep(Study::Stencil2d, 409, &direct);
        let c = sweep(Study::Stencil2d, 409, &cached);
        let da: Vec<bool> = d.points.iter().map(|p| p.accepted).collect();
        let ca: Vec<bool> = c.points.iter().map(|p| p.accepted).collect();
        assert_eq!(da, ca);
        assert_eq!(d.summary().accepted, c.summary().accepted);
    }
}
