//! Served-vs-cold throughput: the compilation service as a DSE engine.
//!
//! The same checker-pruned sweep (a Fig. 8 study) is driven three ways:
//!
//! 1. **direct** — the classic inline pipeline, no caching;
//! 2. **served cold** — through `dahlia_server::CachedProvider` with an
//!    empty content-addressed cache (pays the same compiles, plus cache
//!    bookkeeping);
//! 3. **served warm** — the same sweep again on the same server: every
//!    stage is a cache hit.
//!
//! With the persistent tier there is a fourth point between cold and
//! warm: a **fresh process over a warm cache directory**
//! ([`tiered_sweeps`]) pays disk reads but zero compiles. The
//! acceptance claims: warm sweeps do no compiler work at all
//! (`cache_misses == 0`), and warm-disk sweeps run zero pipeline stages
//! in the fresh server. `cargo bench --bench server` times the modes;
//! the unit tests here pin the invariants at reduced scale.

use std::path::Path;

use dahlia_dse::{explore_configs, DirectProvider, EstimateProvider, Exploration, ProviderStats};
use dahlia_server::{CachedProvider, Server, ServerConfig, StoreStats};

use crate::fig8::Study;

/// Results of the three-way comparison.
#[derive(Debug, Clone)]
pub struct ServeComparison {
    /// Points in the (subsampled) space.
    pub points: usize,
    /// Inline pipeline stats.
    pub direct: ProviderStats,
    /// Cold service stats (first sweep on an empty cache).
    pub served_cold: ProviderStats,
    /// Warm service stats (second sweep on the same server).
    pub served_warm: ProviderStats,
}

impl ServeComparison {
    /// Wall-clock speedup of the warm sweep over the direct sweep.
    pub fn warm_speedup(&self) -> f64 {
        self.direct.latency_us as f64 / self.served_warm.latency_us.max(1) as f64
    }
}

impl std::fmt::Display for ServeComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "served-vs-cold over {} points", self.points)?;
        writeln!(f, "  direct:      {}", self.direct)?;
        writeln!(f, "  served cold: {}", self.served_cold)?;
        writeln!(f, "  served warm: {}", self.served_warm)?;
        write!(f, "  warm speedup over direct: {:.1}×", self.warm_speedup())
    }
}

/// Run one sweep of `study` (every `stride`-th point) through `provider`.
/// Points carry their real configurations (not subsample indices).
pub fn sweep(study: Study, stride: usize, provider: &dyn EstimateProvider) -> Exploration {
    let cfgs: Vec<_> = study.space().iter().step_by(stride.max(1)).collect();
    explore_configs(cfgs, study.name(), provider, |cfg| study.source(cfg))
}

/// The three-way comparison at the given stride.
pub fn served_vs_cold(study: Study, stride: usize) -> ServeComparison {
    let direct = DirectProvider::new();
    let d = sweep(study, stride, &direct);

    let cached = CachedProvider::new(Server::new());
    let c = sweep(study, stride, &cached);
    let w = sweep(study, stride, &cached);

    // All three sweeps must agree on every verdict (same compiler, same
    // space) — a correctness check, not just a throughput one, so it
    // must also fire under `cargo bench` (debug assertions off there).
    assert_eq!(d.points.len(), c.points.len());
    for (a, b) in d.points.iter().zip(&c.points) {
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.cycles, b.cycles);
    }
    for (a, b) in c.points.iter().zip(&w.points) {
        assert_eq!(a, b);
    }

    ServeComparison {
        points: d.points.len(),
        direct: d.stats,
        served_cold: c.stats,
        served_warm: w.stats,
    }
}

/// The cold / warm-disk / warm-memory comparison over one cache
/// directory: tier two's reason to exist, measured.
#[derive(Debug, Clone)]
pub struct TierComparison {
    /// Points in the (subsampled) space.
    pub points: usize,
    /// First sweep ever: empty memory, empty disk (computes + persists).
    pub cold: ProviderStats,
    /// Fresh server over the warm directory: disk reads, zero computes.
    pub warm_disk: ProviderStats,
    /// Same server again: pure memory hits.
    pub warm_memory: ProviderStats,
    /// The warm-disk server's store counters right after its sweep
    /// (stage executions must be all zero; `disk.hits` carries the
    /// read-through count).
    pub warm_disk_store: StoreStats,
}

impl std::fmt::Display for TierComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tiered sweeps over {} points", self.points)?;
        writeln!(f, "  cold (compute+persist): {}", self.cold)?;
        writeln!(f, "  warm disk (fresh proc): {}", self.warm_disk)?;
        write!(f, "  warm memory:            {}", self.warm_memory)
    }
}

/// Run the three-tier comparison for `study` at `stride`, using
/// `cache_dir` as the persistent store (caller owns cleanup).
pub fn tiered_sweeps(study: Study, stride: usize, cache_dir: &Path) -> TierComparison {
    let server = |threads: usize| {
        ServerConfig::new()
            .threads(threads)
            .cache_dir(cache_dir)
            .build()
            .expect("cache dir usable")
    };

    // Cold: compute everything, write-behind to disk, drain, drop.
    let cold_provider = CachedProvider::new(server(2));
    let cold = sweep(study, stride, &cold_provider);
    cold_provider.server().flush();
    drop(cold_provider);

    // Warm disk: a *fresh* server (stand-in for a fresh process) over
    // the same directory.
    let disk_provider = CachedProvider::new(server(2));
    let warm_disk = sweep(study, stride, &disk_provider);
    let warm_disk_store = disk_provider.server().stats().store;

    // Warm memory: the same server again.
    let warm_memory = sweep(study, stride, &disk_provider);

    // All tiers must agree on every verdict and estimate.
    for (a, b) in cold.points.iter().zip(&warm_disk.points) {
        assert_eq!(a, b, "disk round-trip changed a point");
    }
    for (a, b) in warm_disk.points.iter().zip(&warm_memory.points) {
        assert_eq!(a, b, "memory hit changed a point");
    }

    TierComparison {
        points: cold.points.len(),
        cold: cold.stats,
        warm_disk: warm_disk.stats,
        warm_memory: warm_memory.stats,
        warm_disk_store,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_sweeps_do_no_compiler_work() {
        let cmp = served_vs_cold(Study::Stencil2d, 181);
        assert!(cmp.points > 10, "sweep too small to mean anything");
        // The cold service computes exactly what the direct pipeline does…
        assert_eq!(cmp.direct.requests, cmp.served_cold.requests);
        assert!(cmp.served_cold.cache_misses > 0);
        // …and the warm sweep is served entirely from the cache.
        assert_eq!(
            cmp.served_warm.cache_misses, 0,
            "warm sweep recompiled something"
        );
        assert_eq!(cmp.served_warm.requests, cmp.served_cold.requests);
        assert!(cmp.served_warm.cache_hits >= cmp.served_warm.requests);
    }

    #[test]
    fn warm_disk_sweeps_run_zero_pipeline_stages() {
        let dir = std::env::temp_dir().join(format!("dahlia-tiered-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cmp = tiered_sweeps(Study::Stencil2d, 181, &dir);
        assert!(cmp.points > 10, "sweep too small to mean anything");
        assert!(cmp.cold.cache_misses > 0, "cold sweep computes");
        // The tentpole claim at bench scale: the fresh server over the
        // warm directory computed nothing…
        assert_eq!(
            cmp.warm_disk.cache_misses, 0,
            "warm-disk sweep recompiled something"
        );
        assert_eq!(
            cmp.warm_disk_store.total_executions(),
            0,
            "warm-disk sweep ran a pipeline stage: {:?}",
            cmp.warm_disk_store.executions
        );
        // …because every request came off disk…
        assert!(cmp.warm_disk_store.disk.hits > 0);
        // …and the second sweep on the same server stayed in memory.
        assert_eq!(cmp.warm_memory.cache_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn served_sweep_matches_direct_verdicts() {
        let direct = DirectProvider::new();
        let cached = CachedProvider::new(Server::with_threads(2));
        let d = sweep(Study::Stencil2d, 409, &direct);
        let c = sweep(Study::Stencil2d, 409, &cached);
        let da: Vec<bool> = d.points.iter().map(|p| p.accepted).collect();
        let ca: Vec<bool> = c.points.iter().map(|p| p.accepted).collect();
        assert_eq!(da, ca);
        assert_eq!(d.summary().accepted, c.summary().accepted);
    }
}
