//! `dahliac` — the Dahlia compiler driver and compile-service front end.
//!
//! ```text
//! dahliac check  <file.fuse>          type-check and report
//! dahliac cpp    <file.fuse> [name]   emit Vivado-HLS-style C++
//! dahliac run    <file.fuse>          interpret (checked semantics)
//! dahliac est    <file.fuse> [name]   estimate area/latency via hls-sim
//! dahliac lower  <file.fuse>          dump the lowered kernel IR
//! dahliac serve  [opts]               JSON-lines compile service (stdio or TCP)
//! dahliac batch  [opts] [files...]    compile a batch through the service
//! dahliac gateway [opts]              sharded cluster front-end over shards
//! dahliac gateway-admin <op> [opts]   drain/undrain shards on a live gateway
//! dahliac top    --connect ADDR       live load console over a server/gateway
//! dahliac history --connect ADDR      query the on-disk telemetry ring
//! dahliac alerts --connect ADDR       dump alert states and transitions
//! dahliac sweep  --connect ADDR       distributed design-space exploration
//! ```
//!
//! `<file.fuse>` may be `-` to read the program from stdin. (`.fuse` is
//! the extension the original Dahlia compiler uses.)
//!
//! The service persists artifacts across processes with `--cache-dir`
//! (or `DAHLIA_CACHE_DIR`): a warm directory lets a fresh process answer
//! without running any pipeline stage. `serve --listen <addr>` exposes
//! the protocol over TCP with pipelined, out-of-order responses; `batch
//! --connect <addr>` drives such a server remotely; `gateway --listen
//! <addr> --shards a1,a2,…` routes requests across many servers by
//! source digest (rendezvous hashing), with failover and an in-process
//! fallback when the cluster is empty.
//!
//! With `--telemetry-dir` a server or gateway samples its own stats to
//! a crash-safe on-disk ring, answerable after a restart via `dahliac
//! history`; `--alert-rule "window.error_rate > 0.05 for 30s"` arms
//! declarative alerts (`dahliac alerts` reads the transition journal),
//! and the gateway's `--auto-drain-after N` drains a shard that fails
//! N consecutive health checks.
//!
//! Exit codes are distinct per failure phase so scripts and test
//! harnesses can tell rejection modes apart without scraping stderr:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | runtime failure (interpreter error, batch item failed) |
//! | 2 | usage or local I/O error |
//! | 3 | lex/parse error |
//! | 4 | affine type error |
//! | 5 | network error (connect/serve failures over the socket transport) |

use std::collections::HashMap;
use std::io::{BufRead as _, Read as _, Write as _};
use std::process::ExitCode;
use std::time::Instant;

use dahlia_backend::{emit_cpp, lower};
use dahlia_core::{interp, parse, typecheck, Error};
use dahlia_gateway::GatewayConfig;
use dahlia_server::json::{obj, Json};
use dahlia_server::{
    metrics, serve_sessions_with, Client, NetConfig, Request, Server, ServerConfig, SessionHost,
    Stage, TransportStats,
};

/// Runtime failure (interpreter, failed batch item).
const EXIT_RUNTIME: u8 = 1;
/// Bad usage or local I/O failure.
const EXIT_USAGE: u8 = 2;
/// Lexical or syntax error in the input program.
const EXIT_PARSE: u8 = 3;
/// Time-sensitive affine type error.
const EXIT_TYPE: u8 = 4;
/// Network failure: could not connect to, talk to, or keep serving a
/// socket peer.
const EXIT_NET: u8 = 5;

const USAGE: &str = "usage: dahliac <command> [args]

  dahliac check  <file.fuse>          type-check and report
  dahliac cpp    <file.fuse> [name]   emit Vivado-HLS-style C++
  dahliac run    <file.fuse>          interpret (checked semantics)
  dahliac est    <file.fuse> [name]   estimate area/latency via hls-sim
  dahliac lower  <file.fuse>          dump the lowered kernel IR
  dahliac serve  [--listen ADDR] [--pipeline] [--threads N]
                 [--cache-dir DIR] [--max-entries N] [--max-bytes N]
                 [--cache-gc-max-bytes N] [--metrics ADDR]
                 [--trace-journal N] [--slow-threshold-ms MS]
                 [--telemetry-dir DIR] [--telemetry-interval-ms MS]
                 [--alert-rule RULE]... [--alert-rules FILE]
                 [--wire v0|v1] [--max-inflight N]
                                      JSON-lines compile service: stdio by
                                      default (strict order), `--pipeline`
                                      for out-of-order stdio responses,
                                      `--listen` for a pipelined TCP server
                                      (stop it with {\"op\":\"shutdown\"});
                                      sockets negotiate the v1 binary frame
                                      wire via {\"op\":\"hello\"} unless
                                      --wire v0 pins JSON lines, and shed
                                      work past --max-inflight unanswered
                                      requests per connection (default 256)
                                      with an `admission/overloaded` error;
                                      --metrics serves GET /metrics (JSON,
                                      or Prometheus text with
                                      ?format=prometheus) and GET /healthz;
                                      --trace-journal bounds the trace ring
                                      buffer; requests slower than
                                      --slow-threshold-ms land in the slow
                                      log ({\"op\":\"slowlog\"}) with spans;
                                      --telemetry-dir samples stats to a
                                      crash-safe on-disk ring every
                                      --telemetry-interval-ms (default
                                      1000), served by {\"op\":\"history\"};
                                      --alert-rule arms a threshold alert
                                      (e.g. \"window.error_rate > 0.05
                                      for 30s\"; repeatable, or one per
                                      line from --alert-rules FILE)
  dahliac batch  [--kernels] [--repeat N] [--threads N] [--stage S]
                 [--cache-dir DIR] [--connect ADDR] [--shutdown]
                 [--verbose] [--trace] [--slowlog] [--wire v0|v1]
                 [files...]
                                      compile a batch through the service
                                      (in-process by default; --connect
                                      drives a remote `serve --listen`;
                                      --wire v1 offers the binary frame
                                      wire in a `hello` exchange, falling
                                      back to v0 JSON lines on old servers;
                                      --shutdown with no inputs just stops
                                      the remote); --trace requests a span
                                      breakdown per response and dumps the
                                      trace journal after the batch;
                                      --slowlog dumps the slow-request log
                                      as the last output line
  dahliac gateway --listen ADDR [--shards a1[=W],a2,...] [--spawn-workers N]
                 [--replication N] [--threads N] [--metrics ADDR]
                 [--trace-journal N] [--slow-threshold-ms MS]
                 [--telemetry-dir DIR] [--telemetry-interval-ms MS]
                 [--alert-rule RULE]... [--alert-rules FILE]
                 [--auto-drain-after N] [--wire v0|v1]
                 [--max-inflight N] [--admission-cache N]
                                      cluster front-end: routes requests
                                      across `serve --listen` shards by
                                      source digest (weighted rendezvous
                                      hashing; `addr=2` owns twice the
                                      keys), re-routing on shard failure
                                      and compiling locally when the
                                      cluster is empty; --replication N
                                      fans new artifacts out to the top-N
                                      shards so failover serves them warm;
                                      --spawn-workers forks N local shard
                                      processes on ephemeral ports;
                                      --trace-journal / --slow-threshold-ms
                                      configure the gateway's own journal
                                      and slow-request capture;
                                      --telemetry-dir also persists the
                                      warm-key ledger across restarts;
                                      alert rules may bind remediation
                                      (\"... -> drain\"), and
                                      --auto-drain-after N drains a shard
                                      after N consecutive health-check
                                      failures (never the last live one;
                                      0 = off, the default); --wire v0
                                      pins both the client listener and
                                      the shard hop to JSON lines (binary
                                      otherwise); --max-inflight bounds
                                      unanswered requests per connection;
                                      --admission-cache N caches hot
                                      untraced responses at the front door
                                      (default 2048 entries, 0 = off)
  dahliac top    --connect ADDR [--interval-ms N] [--once]
                                      live cluster console: polls the
                                      windowed stats of a server or gateway
                                      and redraws per-shard routed/s,
                                      err/s, windowed p99, queue depth,
                                      warm keys and drain state beside the
                                      cluster totals and the wire line
                                      (v0/v1 session mix, shed requests,
                                      admission-cache hits), with two-minute
                                      req/s and p99 sparklines when the
                                      remote keeps durable telemetry;
                                      --once prints a single
                                      machine-readable JSON snapshot
                                      and exits (for scripts and CI)
  dahliac history --connect ADDR --series PATH [--since MS] [--step MS]
                                      query the remote's on-disk telemetry
                                      ring: dotted stats path (e.g.
                                      window.error_rate, gateway.requests,
                                      window.latency_us), points since a
                                      wall-clock ms cursor, downsampled
                                      into --step-sized bins (min/max/mean,
                                      or merged-bucket p50/p95/p99 for
                                      histogram series); prints the
                                      {\"history\":...} envelope
  dahliac alerts --connect ADDR [--since SEQ]
                                      dump the remote's alert rule states
                                      (0 ok, 1 pending, 2 firing) and its
                                      firing/resolved transition journal
                                      past a sequence cursor; prints the
                                      {\"alerts\":...} envelope
  dahliac gateway-admin <drain|undrain> --connect ADDR SHARD [--weight W]
                                      administer a live gateway: `drain`
                                      routes new keys past SHARD and
                                      migrates its warm keys to the
                                      survivors (rolling restarts);
                                      `undrain` puts it back — or joins
                                      SHARD as a brand-new shard
                                      (optionally weighted) for live
                                      re-sharding
  dahliac sweep  --connect ADDR [--kernel gemm-blocked | --template FILE]
                 [--param name=v1,v2,...]... [--n N] [--block B]
                 [--name NAME] [--stage S] [--stride K]
                 [--update-every K] [--resume] [--prune] [--out FILE]
                                      distributed design-space exploration:
                                      the gateway renders every config of
                                      the parameter space into the kernel
                                      template, scatters the evaluations
                                      across its shards, and streams back
                                      incremental Pareto-front updates
                                      (every --update-every completions)
                                      plus a final summary; progress is
                                      journaled under the gateway's
                                      --telemetry-dir, so a killed gateway
                                      restarted with the same dir resumes
                                      via --resume with zero recomputed
                                      points and a byte-identical front;
                                      --kernel gemm-blocked (default) uses
                                      the paper's 32,000-point blocked-gemm
                                      space (--stride K samples every Kth
                                      point; --param overrides one axis);
                                      --prune skips regions whose sampled
                                      point is already dominated; --out
                                      writes the final summary line to a
                                      file

  <file.fuse> may be `-` for stdin.
  --cache-dir (or DAHLIA_CACHE_DIR) persists artifacts across processes;
  --cache-gc-max-bytes prunes the oldest artifacts past the budget.
  exit codes: 0 ok, 1 runtime, 2 usage/io, 3 parse, 4 type, 5 network";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    match cmd.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "gateway" => cmd_gateway(&args[1..]),
        "gateway-admin" => cmd_gateway_admin(&args[1..]),
        "top" => cmd_top(&args[1..]),
        "history" => cmd_history(&args[1..]),
        "alerts" => cmd_alerts(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "check" | "cpp" | "run" | "est" | "lower" => cmd_compile(cmd, &args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("dahliac: unknown command `{other}`\n{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Read a source file, `-` meaning stdin.
fn read_source(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("dahliac: cannot read stdin: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
        return Ok(src);
    }
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("dahliac: cannot read `{path}`: {e}");
        ExitCode::from(EXIT_USAGE)
    })
}

/// Exit code for a front-end error, by phase.
fn error_exit(e: &Error) -> ExitCode {
    match e {
        Error::Lex { .. } | Error::Parse { .. } => ExitCode::from(EXIT_PARSE),
        Error::Type(_) => ExitCode::from(EXIT_TYPE),
        Error::Interp { .. } => ExitCode::from(EXIT_RUNTIME),
    }
}

/// The classic one-shot commands.
fn cmd_compile(cmd: &str, args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("dahliac: `{cmd}` needs an input file\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let name = args.get(1).cloned().unwrap_or_else(|| {
        if path == "-" {
            "kernel".to_string()
        } else {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().replace('-', "_"))
                .unwrap_or_else(|| "kernel".to_string())
        }
    });

    let src = match read_source(path) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let prog = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dahliac: {e}");
            return error_exit(&e);
        }
    };

    match cmd {
        "check" => match typecheck(&prog) {
            Ok(r) => {
                println!(
                    "ok: {} memories, {} views, {} accesses, {} functions, max unroll {}",
                    r.memories, r.views, r.accesses, r.functions, r.max_unroll
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dahliac: {e}");
                error_exit(&e)
            }
        },
        "cpp" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            print!("{}", emit_cpp(&prog, &name));
            ExitCode::SUCCESS
        }
        "run" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            match interp::interpret_with(&prog, &interp::InterpOptions::default(), &HashMap::new())
            {
                Ok(out) => {
                    let mut names: Vec<&String> = out.mems.keys().collect();
                    names.sort();
                    for n in names {
                        let mem = &out.mems[n];
                        let shown: Vec<String> =
                            mem.iter().take(8).map(|v| format!("{v:?}")).collect();
                        println!(
                            "{n}[{}] = [{}{}]",
                            mem.len(),
                            shown.join(", "),
                            if mem.len() > 8 { ", …" } else { "" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dahliac: {e}");
                    ExitCode::from(EXIT_RUNTIME)
                }
            }
        }
        "est" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            let est = hls_sim::estimate(&lower(&prog, &name));
            println!("kernel:   {}", est.name);
            println!("cycles:   {}", est.cycles);
            println!("runtime:  {:.3} ms @ 250 MHz", est.runtime_ms(250.0));
            println!("LUTs:     {}", est.luts);
            println!("FFs:      {}", est.ffs);
            println!("DSPs:     {}", est.dsps);
            println!("BRAMs:    {}", est.brams);
            println!("LUT mem:  {}", est.lut_mems);
            println!("correct:  {}", est.correct);
            for n in &est.notes {
                println!("note:     {n}");
            }
            ExitCode::SUCCESS
        }
        "lower" => {
            println!("{:#?}", lower(&prog, &name));
            ExitCode::SUCCESS
        }
        _ => unreachable!("dispatched in main"),
    }
}

/// Extract a `--flag value` option from `args`, leaving positionals in
/// place. A flag present without a usable value is an error (otherwise
/// the dangling flag would be misparsed as a file name downstream).
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        _ => Err(format!("{flag} needs a value")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_positive(flag: &str, raw: Option<String>) -> Result<Option<usize>, ExitCode> {
    match raw {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => {
                eprintln!("dahliac: {flag} needs a positive integer, got `{v}`");
                Err(ExitCode::from(EXIT_USAGE))
            }
        },
    }
}

/// Like [`parse_positive`] but zero is legal — for thresholds where 0
/// means "capture everything" (`--slow-threshold-ms 0`).
fn parse_nonneg(flag: &str, raw: Option<String>) -> Result<Option<u64>, ExitCode> {
    match raw {
        None => Ok(None),
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            _ => {
                eprintln!("dahliac: {flag} needs a non-negative integer, got `{v}`");
                Err(ExitCode::from(EXIT_USAGE))
            }
        },
    }
}

/// Parse a `--wire v0|v1` protocol ceiling (bare digits accepted).
fn parse_wire(flag: &str, raw: Option<String>) -> Result<Option<u32>, ExitCode> {
    match raw.as_deref() {
        None => Ok(None),
        Some("v0") | Some("0") => Ok(Some(0)),
        Some("v1") | Some("1") => Ok(Some(1)),
        Some(v) => {
            eprintln!("dahliac: {flag} must be v0 or v1, got `{v}`");
            Err(ExitCode::from(EXIT_USAGE))
        }
    }
}

/// Collect every `--alert-rule RULE` occurrence plus the contents of an
/// optional `--alert-rules FILE` (one rule per line; blank lines and
/// `#` comments skipped). Rule *syntax* is validated by the service
/// build, which reports the offending rule text.
fn take_alert_rules(args: &mut Vec<String>) -> Result<Vec<String>, ExitCode> {
    let mut rules = Vec::new();
    loop {
        match take_flag(args, "--alert-rule") {
            Ok(Some(r)) => rules.push(r),
            Ok(None) => break,
            Err(e) => {
                eprintln!("dahliac: {e}");
                return Err(ExitCode::from(EXIT_USAGE));
            }
        }
    }
    let file = match take_flag(args, "--alert-rules") {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dahliac: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
    };
    if let Some(path) = file {
        let text = std::fs::read_to_string(&path).map_err(|e| {
            eprintln!("dahliac: cannot read alert rules file `{path}`: {e}");
            ExitCode::from(EXIT_USAGE)
        })?;
        rules.extend(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string),
        );
    }
    Ok(rules)
}

/// Service-facing options shared by `serve` and `batch`.
struct ServiceOpts {
    threads: Option<usize>,
    /// `--cache-dir` as given on the command line (env fallback is
    /// resolved in [`ServiceOpts::build`], so callers can tell an
    /// explicit flag from ambient environment).
    cache_dir_flag: Option<String>,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    cache_gc_max_bytes: Option<usize>,
    trace_journal: Option<usize>,
    slow_threshold_ms: Option<u64>,
    telemetry_dir: Option<String>,
    telemetry_interval_ms: Option<usize>,
    alert_rules: Vec<String>,
}

impl ServiceOpts {
    /// Pull the shared flags out of `args`.
    fn take(args: &mut Vec<String>) -> Result<ServiceOpts, ExitCode> {
        let mut flags = Vec::new();
        for f in [
            "--threads",
            "--cache-dir",
            "--max-entries",
            "--max-bytes",
            "--cache-gc-max-bytes",
            "--trace-journal",
            "--slow-threshold-ms",
            "--telemetry-dir",
            "--telemetry-interval-ms",
        ] {
            match take_flag(args, f) {
                Ok(v) => flags.push(v),
                Err(e) => {
                    eprintln!("dahliac: {e}");
                    return Err(ExitCode::from(EXIT_USAGE));
                }
            }
        }
        let [threads, cache_dir, max_entries, max_bytes, gc_max, journal, slow_ms, tele_dir, tele_ms] =
            flags.try_into().unwrap();
        let alert_rules = take_alert_rules(args)?;
        Ok(ServiceOpts {
            threads: parse_positive("--threads", threads)?,
            cache_dir_flag: cache_dir,
            max_entries: parse_positive("--max-entries", max_entries)?,
            max_bytes: parse_positive("--max-bytes", max_bytes)?,
            cache_gc_max_bytes: parse_positive("--cache-gc-max-bytes", gc_max)?,
            // A zero-capacity journal would silently drop every trace;
            // reject it as usage rather than clamping behind the
            // operator's back.
            trace_journal: parse_positive("--trace-journal", journal)?,
            slow_threshold_ms: parse_nonneg("--slow-threshold-ms", slow_ms)?,
            telemetry_dir: tele_dir,
            // A zero sampling interval would spin the sampler thread;
            // usage error, same policy as the journal capacity.
            telemetry_interval_ms: parse_positive("--telemetry-interval-ms", tele_ms)?,
            alert_rules,
        })
    }

    /// The first local-server flag present, if any — these configure an
    /// in-process server and are meaningless (so refused) with
    /// `--connect`, where the remote server owns its own configuration.
    fn local_only_flag(&self) -> Option<&'static str> {
        if self.threads.is_some() {
            Some("--threads")
        } else if self.cache_dir_flag.is_some() {
            Some("--cache-dir")
        } else if self.max_entries.is_some() {
            Some("--max-entries")
        } else if self.max_bytes.is_some() {
            Some("--max-bytes")
        } else if self.cache_gc_max_bytes.is_some() {
            Some("--cache-gc-max-bytes")
        } else if self.trace_journal.is_some() {
            Some("--trace-journal")
        } else if self.slow_threshold_ms.is_some() {
            Some("--slow-threshold-ms")
        } else if self.telemetry_dir.is_some() {
            Some("--telemetry-dir")
        } else if self.telemetry_interval_ms.is_some() {
            Some("--telemetry-interval-ms")
        } else if !self.alert_rules.is_empty() {
            Some("--alert-rule")
        } else {
            None
        }
    }

    /// Build a server from these options. `--cache-dir` falls back to
    /// the `DAHLIA_CACHE_DIR` environment variable.
    fn build(&self) -> Result<Server, ExitCode> {
        let mut cfg = ServerConfig::new();
        if let Some(n) = self.threads {
            cfg = cfg.threads(n);
        }
        let cache_dir = self
            .cache_dir_flag
            .clone()
            .or_else(|| std::env::var("DAHLIA_CACHE_DIR").ok());
        if let Some(dir) = &cache_dir {
            cfg = cfg.cache_dir(dir);
        }
        if let Some(n) = self.max_entries {
            cfg = cfg.max_entries(n);
        }
        if let Some(n) = self.max_bytes {
            cfg = cfg.max_bytes(n);
        }
        if let Some(n) = self.cache_gc_max_bytes {
            cfg = cfg.cache_gc_max_bytes(n as u64);
        }
        if let Some(n) = self.trace_journal {
            cfg = cfg.trace_journal(n);
        }
        if let Some(ms) = self.slow_threshold_ms {
            cfg = cfg.slow_threshold_ms(ms);
        }
        if let Some(dir) = &self.telemetry_dir {
            cfg = cfg.telemetry_dir(dir);
        }
        if let Some(ms) = self.telemetry_interval_ms {
            cfg = cfg.telemetry_interval_ms(ms as u64);
        }
        for rule in &self.alert_rules {
            cfg = cfg.alert_rule(rule);
        }
        // Build failures are all operator input: an unopenable cache or
        // telemetry directory, or an alert rule that does not parse.
        cfg.build().map_err(|e| {
            eprintln!("dahliac: cannot start service: {e}");
            ExitCode::from(EXIT_USAGE)
        })
    }
}

/// Bind and start the `--metrics` HTTP endpoint, announcing its
/// resolved address on stderr (scripts read it like the listen line).
/// When the process also runs a socket transport, its shared
/// [`TransportStats`] ride along so `/metrics` exports the session
/// mix, frame counters, and shed totals beside the host's own stats.
fn start_metrics(
    addr: &str,
    host: std::sync::Arc<impl SessionHost + 'static>,
    transport: Option<std::sync::Arc<TransportStats>>,
) -> Result<(), ExitCode> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| {
        eprintln!("dahliac: cannot bind metrics endpoint `{addr}`: {e}");
        ExitCode::from(EXIT_USAGE)
    })?;
    let local = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_string());
    let stats_host = std::sync::Arc::clone(&host);
    metrics::spawn(
        listener,
        std::sync::Arc::new(move || {
            let mut stats = stats_host.stats_json();
            if let (Some(t), Json::Obj(fields)) = (&transport, &mut stats) {
                fields.retain(|(k, _)| k != "transport");
                fields.push(("transport".to_string(), t.to_json()));
            }
            stats
        }),
        std::sync::Arc::new(move || host.health_json()),
    )
    .map_err(|e| {
        eprintln!("dahliac: cannot start metrics thread: {e}");
        ExitCode::from(EXIT_USAGE)
    })?;
    eprintln!("dahliac: metrics on {local}");
    Ok(())
}

/// `dahliac serve`: the JSON-lines protocol over stdio or TCP.
fn cmd_serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (listen, metrics_addr, inflight_raw, wire_raw) = match (
        take_flag(&mut args, "--listen"),
        take_flag(&mut args, "--metrics"),
        take_flag(&mut args, "--max-inflight"),
        take_flag(&mut args, "--wire"),
    ) {
        (Ok(l), Ok(m), Ok(i), Ok(w)) => (l, m, i, w),
        (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (_, _, _, Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let pipeline = take_switch(&mut args, "--pipeline");
    let max_inflight = match parse_positive("--max-inflight", inflight_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let wire_max = match parse_wire("--wire", wire_raw) {
        Ok(w) => w,
        Err(code) => return code,
    };
    if listen.is_none() && (max_inflight.is_some() || wire_max.is_some()) {
        eprintln!(
            "dahliac: --max-inflight and --wire shape the socket transport; they need --listen"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    let opts = match ServiceOpts::take(&mut args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    if !args.is_empty() {
        eprintln!("dahliac: serve takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    if listen.is_none() && !pipeline && opts.threads.is_some() {
        eprintln!(
            "dahliac: plain stdio serve answers requests in order on one \
             thread; --threads needs --pipeline or --listen"
        );
        return ExitCode::from(EXIT_USAGE);
    }

    // Plain stdio serve compiles on the calling thread, so default its
    // pool to one parked worker; pipelined modes want real parallelism.
    let opts = if listen.is_none() && !pipeline {
        ServiceOpts {
            threads: Some(1),
            ..opts
        }
    } else {
        opts
    };
    let server = match opts.build() {
        Ok(s) => std::sync::Arc::new(s),
        Err(code) => return code,
    };
    let mut net = NetConfig::new();
    if let Some(n) = max_inflight {
        net = net.max_inflight(n);
    }
    if let Some(w) = wire_max {
        net = net.max_wire(w);
    }
    if let Some(addr) = &metrics_addr {
        let transport = listen
            .as_ref()
            .map(|_| std::sync::Arc::clone(&net.transport));
        if let Err(code) = start_metrics(addr, std::sync::Arc::clone(&server), transport) {
            return code;
        }
    }

    if let Some(addr) = listen {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("dahliac: cannot listen on `{addr}`: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        };
        let local = listener.local_addr().map(|a| a.to_string());
        eprintln!(
            "dahliac serve: listening on {}",
            local.as_deref().unwrap_or(&addr)
        );
        return match serve_sessions_with(std::sync::Arc::clone(&server), listener, net) {
            Ok(summary) => {
                server.flush();
                eprintln!(
                    "dahliac serve: {} connections, {} lines, {} protocol errors, {}",
                    summary.connections,
                    summary.lines,
                    summary.protocol_errors,
                    server.stats()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dahliac serve: I/O error: {e}");
                ExitCode::from(EXIT_NET)
            }
        };
    }

    let stdin = std::io::stdin();
    let served = if pipeline {
        // The pipelined writer runs on its own thread, which needs an
        // owned (Send) handle rather than a StdoutLock.
        server.serve_pipelined(stdin.lock(), std::io::stdout())
    } else {
        let stdout = std::io::stdout();
        server.serve(stdin.lock(), stdout.lock())
    };
    match served {
        Ok(summary) => {
            server.flush();
            eprintln!(
                "dahliac serve: {} lines, {} protocol errors, {}",
                summary.lines,
                summary.protocol_errors,
                server.stats()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dahliac serve: I/O error: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// A `dahliac serve` child forked by `gateway --spawn-workers`.
struct SpawnedWorker {
    child: std::process::Child,
    addr: String,
}

/// Fork `n` local shard processes (`dahliac serve --listen 127.0.0.1:0`)
/// and learn each one's ephemeral address from its announce line.
fn spawn_local_workers(n: usize, threads: Option<usize>) -> Result<Vec<SpawnedWorker>, ExitCode> {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().map_err(|e| {
        eprintln!("dahliac: cannot locate own binary to fork workers: {e}");
        ExitCode::from(EXIT_USAGE)
    })?;
    let mut workers = Vec::new();
    for i in 0..n {
        let mut cmd = Command::new(&exe);
        cmd.args(["serve", "--listen", "127.0.0.1:0"]);
        if let Some(t) = threads {
            cmd.args(["--threads", &t.to_string()]);
        }
        let spawned = cmd.stdin(Stdio::null()).stderr(Stdio::piped()).spawn();
        let mut child = match spawned {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dahliac: cannot spawn worker {i}: {e}");
                shutdown_workers(&mut workers);
                return Err(ExitCode::from(EXIT_USAGE));
            }
        };
        // Scan the worker's stderr for its announce line on a helper
        // thread with a deadline: a worker wedged before binding (e.g.
        // an unreachable inherited DAHLIA_CACHE_DIR) must fail gateway
        // startup loudly, not hang it, and any lines the worker prints
        // *before* the announce (warnings, a metrics line some day)
        // must not break address capture. The same thread keeps
        // draining stderr afterwards — pass-through, never a full pipe.
        let mut stderr = std::io::BufReader::new(child.stderr.take().expect("piped stderr"));
        let (tx, rx) = std::sync::mpsc::channel::<String>();
        std::thread::spawn(move || {
            let mut announced = false;
            loop {
                let mut line = String::new();
                match stderr.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                if !announced {
                    if let Some((_, addr)) = line.split_once("listening on ") {
                        announced = true;
                        let _ = tx.send(addr.trim().to_string());
                        // The announce is consumed (the gateway prints
                        // its own worker line); everything else passes
                        // through.
                        continue;
                    }
                }
                eprint!("{line}");
            }
        });
        let addr = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .ok()
            .filter(|a| !a.is_empty());
        let Some(addr) = addr else {
            eprintln!("dahliac: worker {i} failed to announce its address in time");
            let _ = child.kill();
            let _ = child.wait();
            shutdown_workers(&mut workers);
            return Err(ExitCode::from(EXIT_USAGE));
        };
        eprintln!("dahliac gateway: worker {i} on {addr} (pid {})", child.id());
        workers.push(SpawnedWorker { child, addr });
    }
    Ok(workers)
}

/// Stop every spawned worker: graceful protocol shutdown first, a kill
/// for anything that does not wind down in time.
fn shutdown_workers(workers: &mut Vec<SpawnedWorker>) {
    for w in workers.iter_mut() {
        if let Ok(mut c) = Client::connect_retry(w.addr.as_str(), 3) {
            let _ = c.shutdown_server();
        }
    }
    for w in workers.iter_mut() {
        let mut stopped = false;
        for _ in 0..50 {
            if matches!(w.child.try_wait(), Ok(Some(_))) {
                stopped = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        if !stopped {
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
    workers.clear();
}

/// `dahliac gateway`: the sharded cluster front-end.
fn cmd_gateway(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let mut flags = Vec::new();
    for f in [
        "--listen",
        "--shards",
        "--spawn-workers",
        "--replication",
        "--threads",
        "--metrics",
        "--trace-journal",
        "--slow-threshold-ms",
        "--telemetry-dir",
        "--telemetry-interval-ms",
        "--auto-drain-after",
        "--max-inflight",
        "--wire",
        "--admission-cache",
    ] {
        match take_flag(&mut args, f) {
            Ok(v) => flags.push(v),
            Err(e) => {
                eprintln!("dahliac: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let [listen, shards_flag, spawn_raw, replication_raw, threads_raw, metrics_addr, journal_raw, slow_raw, tele_dir, tele_ms_raw, drain_after_raw, inflight_raw, wire_raw, adm_cache_raw] =
        flags.try_into().unwrap();
    let alert_rules = match take_alert_rules(&mut args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    if !args.is_empty() {
        eprintln!("dahliac: gateway takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(listen) = listen else {
        eprintln!("dahliac: gateway needs --listen\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let threads = match parse_positive("--threads", threads_raw) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let replication = match parse_positive("--replication", replication_raw) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let spawn_workers = match parse_positive("--spawn-workers", spawn_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let trace_journal = match parse_positive("--trace-journal", journal_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let slow_threshold_ms = match parse_nonneg("--slow-threshold-ms", slow_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let telemetry_interval_ms = match parse_positive("--telemetry-interval-ms", tele_ms_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    // Zero is the documented "off" value, so non-negative.
    let auto_drain_after = match parse_nonneg("--auto-drain-after", drain_after_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let max_inflight = match parse_positive("--max-inflight", inflight_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };
    // `--wire v0` pins both the client-facing listener and the shard
    // hop to JSON lines; the default negotiates binary frames on both.
    let wire_max = match parse_wire("--wire", wire_raw) {
        Ok(w) => w,
        Err(code) => return code,
    };
    // Zero disables the admission cache, so non-negative.
    let admission_cache = match parse_nonneg("--admission-cache", adm_cache_raw) {
        Ok(n) => n,
        Err(code) => return code,
    };

    // `--shards a1=2,a2,…`: each entry is an address with an optional
    // rendezvous weight (see `dahlia_gateway::hash::parse_weighted`).
    let mut shard_addrs: Vec<(String, f64)> = Vec::new();
    if let Some(s) = shards_flag {
        for entry in s.split(',').map(str::trim).filter(|a| !a.is_empty()) {
            match dahlia_gateway::hash::parse_weighted(entry) {
                Ok(pair) => shard_addrs.push(pair),
                Err(e) => {
                    eprintln!("dahliac: {e}");
                    return ExitCode::from(EXIT_USAGE);
                }
            }
        }
    }
    let mut workers = Vec::new();
    if let Some(n) = spawn_workers {
        match spawn_local_workers(n, threads) {
            Ok(ws) => {
                shard_addrs.extend(ws.iter().map(|w| (w.addr.clone(), 1.0)));
                workers = ws;
            }
            Err(code) => return code,
        }
    }
    if shard_addrs.is_empty() {
        eprintln!("dahliac: gateway needs shards (--shards and/or --spawn-workers)\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }

    let mut cfg = GatewayConfig::new_weighted(shard_addrs);
    if let Some(r) = replication {
        cfg = cfg.replication(r);
    }
    if let Some(t) = threads {
        cfg = cfg.threads(t);
    }
    if let Some(n) = trace_journal {
        cfg = cfg.trace_journal(n);
    }
    if let Some(ms) = slow_threshold_ms {
        cfg = cfg.slow_threshold_ms(ms);
    }
    if let Some(dir) = &tele_dir {
        cfg = cfg.telemetry_dir(dir);
    }
    if let Some(ms) = telemetry_interval_ms {
        cfg = cfg.telemetry_interval_ms(ms as u64);
    }
    for rule in &alert_rules {
        cfg = cfg.alert_rule(rule);
    }
    if let Some(n) = auto_drain_after {
        cfg = cfg.auto_drain_after(n);
    }
    if let Some(w) = wire_max {
        cfg = cfg.wire_max(w);
    }
    if let Some(n) = admission_cache {
        cfg = cfg.admission_cache(n as usize);
    }
    // `try_build` surfaces telemetry-directory and alert-rule problems
    // as startup usage errors instead of panicking mid-flight.
    let gateway = match cfg.try_build() {
        Ok(g) => std::sync::Arc::new(g),
        Err(e) => {
            eprintln!("dahliac: cannot start gateway: {e}");
            shutdown_workers(&mut workers);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut net = NetConfig::new();
    if let Some(n) = max_inflight {
        net = net.max_inflight(n);
    }
    if let Some(w) = wire_max {
        net = net.max_wire(w);
    }
    if let Some(addr) = &metrics_addr {
        let transport = std::sync::Arc::clone(&net.transport);
        if let Err(code) = start_metrics(addr, std::sync::Arc::clone(&gateway), Some(transport)) {
            shutdown_workers(&mut workers);
            return code;
        }
    }
    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dahliac: cannot listen on `{listen}`: {e}");
            shutdown_workers(&mut workers);
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let local = listener.local_addr().map(|a| a.to_string());
    eprintln!(
        "dahliac gateway: listening on {} ({} shards, {} live)",
        local.as_deref().unwrap_or(&listen),
        gateway.shard_count(),
        gateway.live_shards(),
    );

    let served = serve_sessions_with(std::sync::Arc::clone(&gateway), listener, net);
    // Snapshot shard state before stopping spawned workers, so the
    // summary reflects the serving run, not the teardown.
    let snapshots = gateway.shard_snapshots();
    shutdown_workers(&mut workers);
    match served {
        Ok(summary) => {
            eprintln!(
                "dahliac gateway: {} connections, {} lines, {} protocol errors; \
                 {} requests ({} rerouted, {} local fallbacks)",
                summary.connections,
                summary.lines,
                summary.protocol_errors,
                gateway.requests(),
                gateway.rerouted(),
                gateway.local_fallbacks(),
            );
            for s in snapshots {
                eprintln!(
                    "dahliac gateway: shard {} {}{}: weight {}, {} routed, {} failed, \
                     {} retried, {} replicated, {} drained keys",
                    s.addr,
                    if s.alive { "up" } else { "down" },
                    if s.draining { " (draining)" } else { "" },
                    s.weight,
                    s.routed,
                    s.failed,
                    s.retried,
                    s.replicated,
                    s.drained_keys,
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dahliac gateway: I/O error: {e}");
            ExitCode::from(EXIT_NET)
        }
    }
}

/// `dahliac gateway-admin`: drive a live gateway's drain/undrain ops
/// over the wire protocol. Prints the gateway's ack object on stdout;
/// exit 0 when the gateway accepted the op, 1 when it refused (e.g.
/// unknown shard), 5 when the gateway is unreachable.
fn cmd_gateway_admin(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (connect, weight_raw) = match (
        take_flag(&mut args, "--connect"),
        take_flag(&mut args, "--weight"),
    ) {
        (Ok(c), Ok(w)) => (c, w),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let (op, shard) = match args.as_slice() {
        [op, shard] if op == "drain" || op == "undrain" => (op.clone(), shard.clone()),
        [op, ..] if op != "drain" && op != "undrain" => {
            eprintln!(
                "dahliac: gateway-admin op must be `drain` or `undrain`, got `{op}`\n{USAGE}"
            );
            return ExitCode::from(EXIT_USAGE);
        }
        _ => {
            eprintln!("dahliac: gateway-admin needs an op and a shard address\n{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let Some(addr) = connect else {
        eprintln!("dahliac: gateway-admin needs --connect\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let weight = match weight_raw {
        None => None,
        Some(w) => match w.parse::<f64>() {
            Ok(v) if v.is_finite() && v > 0.0 => Some(v),
            _ => {
                eprintln!("dahliac: --weight needs a positive number, got `{w}`");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    if weight.is_some() && op == "drain" {
        eprintln!("dahliac: --weight only makes sense with `undrain` (joining a shard)");
        return ExitCode::from(EXIT_USAGE);
    }

    let mut fields = vec![("op", Json::Str(op)), ("shard", Json::Str(shard))];
    if let Some(w) = weight {
        fields.push(("weight", Json::Num(w)));
    }
    let line = obj(fields).emit();
    let sent = Client::connect_retry(addr.as_str(), 50).and_then(|mut c| {
        c.send_line(&line)?;
        c.recv_line()
    });
    match sent {
        Ok(Some(ack)) => {
            println!("{ack}");
            let ok = Json::parse(&ack)
                .ok()
                .and_then(|v| v.get("ok").and_then(Json::as_bool))
                .unwrap_or(false);
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_RUNTIME)
            }
        }
        Ok(None) => {
            eprintln!("dahliac: `{addr}` closed the connection without answering");
            ExitCode::from(EXIT_NET)
        }
        Err(e) => {
            eprintln!("dahliac: cannot reach gateway `{addr}`: {e}");
            ExitCode::from(EXIT_NET)
        }
    }
}

/// Send one control line to a live server or gateway and print its
/// answer verbatim (the canonical compact envelope, one line, ready
/// for `jq`). Shared by `history` and `alerts`.
fn control_round_trip(addr: &str, line: &str) -> ExitCode {
    let sent = Client::connect_retry(addr, 50).and_then(|mut c| {
        c.send_line(line)?;
        c.recv_line()
    });
    match sent {
        Ok(Some(answer)) => {
            println!("{answer}");
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("dahliac: `{addr}` closed the connection without answering");
            ExitCode::from(EXIT_NET)
        }
        Err(e) => {
            eprintln!("dahliac: cannot reach `{addr}`: {e}");
            ExitCode::from(EXIT_NET)
        }
    }
}

/// The paper's blocked-gemm design space: four banking factors over
/// 1..=4 and three unroll factors over {1,2,4,6,8} — 32,000 points.
fn gemm_blocked_space() -> Vec<(String, Vec<u64>)> {
    let banks = vec![1, 2, 3, 4];
    let unrolls = vec![1, 2, 4, 6, 8];
    vec![
        ("bank_m1_d1".to_string(), banks.clone()),
        ("bank_m1_d2".to_string(), banks.clone()),
        ("bank_m2_d1".to_string(), banks.clone()),
        ("bank_m2_d2".to_string(), banks),
        ("unroll_i".to_string(), unrolls.clone()),
        ("unroll_j".to_string(), unrolls.clone()),
        ("unroll_k".to_string(), unrolls),
    ]
}

/// `dahliac sweep`: scatter a templated design-space exploration
/// across a live gateway's shards and stream the Pareto front back.
fn cmd_sweep(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let mut flags: HashMap<&str, Option<String>> = HashMap::new();
    for f in [
        "--connect",
        "--template",
        "--kernel",
        "--name",
        "--stage",
        "--stride",
        "--update-every",
        "--out",
        "--n",
        "--block",
    ] {
        match take_flag(&mut args, f) {
            Ok(v) => {
                flags.insert(f, v);
            }
            Err(e) => {
                eprintln!("dahliac: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let resume = take_switch(&mut args, "--resume");
    let prune = take_switch(&mut args, "--prune");
    let mut param_flags = Vec::new();
    loop {
        match take_flag(&mut args, "--param") {
            Ok(Some(v)) => param_flags.push(v),
            Ok(None) => break,
            Err(e) => {
                eprintln!("dahliac: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    if !args.is_empty() {
        eprintln!("dahliac: sweep takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(addr) = flags.remove("--connect").flatten() else {
        eprintln!("dahliac: sweep needs --connect\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let stride = match parse_positive("--stride", flags.remove("--stride").flatten()) {
        Ok(n) => n.unwrap_or(1) as u64,
        Err(code) => return code,
    };
    let update_every =
        match parse_nonneg("--update-every", flags.remove("--update-every").flatten()) {
            Ok(n) => n.unwrap_or(0),
            Err(code) => return code,
        };
    let template_file = flags.remove("--template").flatten();
    let kernel = flags.remove("--kernel").flatten();
    let (template, mut params, default_name) = match (template_file, kernel.as_deref()) {
        (Some(_), Some(_)) => {
            eprintln!("dahliac: --template and --kernel are mutually exclusive");
            return ExitCode::from(EXIT_USAGE);
        }
        (Some(path), None) => {
            let text = match read_source(&path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            (text, Vec::new(), "sweep".to_string())
        }
        (None, kernel) => {
            let kernel = kernel.unwrap_or("gemm-blocked");
            if kernel != "gemm-blocked" {
                eprintln!("dahliac: unknown sweep kernel `{kernel}` (try gemm-blocked)");
                return ExitCode::from(EXIT_USAGE);
            }
            let n = match parse_positive("--n", flags.remove("--n").flatten()) {
                Ok(v) => v.unwrap_or(128) as u64,
                Err(code) => return code,
            };
            let block = match parse_positive("--block", flags.remove("--block").flatten()) {
                Ok(v) => v.unwrap_or(8) as u64,
                Err(code) => return code,
            };
            (
                dahlia_kernels::gemm::gemm_blocked_template(n, block),
                gemm_blocked_space(),
                "gemm-blocked".to_string(),
            )
        }
    };
    // `--param name=v1,v2,...` overrides a default axis (or, for
    // template-file sweeps, defines the space from scratch).
    for raw in param_flags {
        let Some((name, values)) = raw.split_once('=') else {
            eprintln!("dahliac: --param needs name=v1,v2,... (got `{raw}`)");
            return ExitCode::from(EXIT_USAGE);
        };
        let parsed: Result<Vec<u64>, _> = values.split(',').map(str::parse::<u64>).collect();
        let Ok(vs) = parsed else {
            eprintln!("dahliac: --param {name} values must be integers (got `{values}`)");
            return ExitCode::from(EXIT_USAGE);
        };
        match params.iter_mut().find(|(k, _)| k == name) {
            Some((_, slot)) => *slot = vs,
            None => params.push((name.to_string(), vs)),
        }
    }
    if params.is_empty() {
        eprintln!("dahliac: sweep needs at least one --param axis\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let name = flags.remove("--name").flatten().unwrap_or(default_name);
    let stage = flags
        .remove("--stage")
        .flatten()
        .unwrap_or_else(|| "est".to_string());
    let out = flags.remove("--out").flatten();

    let params_json = Json::Obj(
        params
            .iter()
            .map(|(k, vs)| {
                (
                    k.clone(),
                    Json::Arr(vs.iter().map(|&v| Json::Num(v as f64)).collect()),
                )
            })
            .collect(),
    );
    let op_line = obj([
        ("op", Json::Str("sweep".into())),
        ("id", Json::Str("cli-sweep".into())),
        ("name", Json::Str(name)),
        ("template", Json::Str(template)),
        ("params", params_json),
        ("stage", Json::Str(stage)),
        ("stride", Json::Num(stride as f64)),
        ("resume", Json::Bool(resume)),
        ("prune", Json::Bool(prune)),
        ("update_every", Json::Num(update_every as f64)),
    ])
    .emit();

    let mut client = match Client::connect_retry(addr.as_str(), 50) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dahliac: cannot connect to `{addr}`: {e}");
            return ExitCode::from(EXIT_NET);
        }
    };
    if let Err(e) = client.send_line(&op_line) {
        eprintln!("dahliac: cannot send to `{addr}`: {e}");
        return ExitCode::from(EXIT_NET);
    }
    // One line per incremental update, one final `"done":true` line.
    loop {
        match client.recv_line() {
            Ok(Some(line)) => {
                println!("{line}");
                let v = Json::parse(&line).unwrap_or(Json::Null);
                if v.get("done").and_then(Json::as_bool) == Some(true) {
                    if let Some(path) = &out {
                        if let Err(e) = std::fs::write(path, format!("{line}\n")) {
                            eprintln!("dahliac: cannot write `{path}`: {e}");
                            return ExitCode::from(EXIT_USAGE);
                        }
                    }
                    return if v.get("ok").and_then(Json::as_bool) == Some(true) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(EXIT_RUNTIME)
                    };
                }
            }
            Ok(None) => {
                eprintln!("dahliac: `{addr}` closed the connection mid-sweep");
                return ExitCode::from(EXIT_NET);
            }
            Err(e) => {
                eprintln!("dahliac: network error talking to `{addr}`: {e}");
                return ExitCode::from(EXIT_NET);
            }
        }
    }
}

/// `dahliac history`: query a remote's durable telemetry ring for one
/// series, downsampled into `--step`-sized bins since a wall-clock
/// millisecond cursor.
fn cmd_history(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let mut flags = Vec::new();
    for f in ["--connect", "--series", "--since", "--step"] {
        match take_flag(&mut args, f) {
            Ok(v) => flags.push(v),
            Err(e) => {
                eprintln!("dahliac: {e}");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }
    let [connect, series, since_raw, step_raw] = flags.try_into().unwrap();
    if !args.is_empty() {
        eprintln!("dahliac: history takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(addr) = connect else {
        eprintln!("dahliac: history needs --connect\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let Some(series) = series else {
        eprintln!("dahliac: history needs --series (e.g. window.error_rate)\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let since = match parse_nonneg("--since", since_raw) {
        Ok(n) => n.unwrap_or(0),
        Err(code) => return code,
    };
    let step = match parse_nonneg("--step", step_raw) {
        Ok(n) => n.unwrap_or(0),
        Err(code) => return code,
    };
    let line = obj([
        ("op", Json::Str("history".to_string())),
        ("series", Json::Str(series)),
        ("since", Json::Num(since as f64)),
        ("step", Json::Num(step as f64)),
    ])
    .emit();
    control_round_trip(&addr, &line)
}

/// `dahliac alerts`: dump a remote's alert rule states and transition
/// journal (optionally only entries past a `--since` sequence cursor).
fn cmd_alerts(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (connect, since_raw) = match (
        take_flag(&mut args, "--connect"),
        take_flag(&mut args, "--since"),
    ) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if !args.is_empty() {
        eprintln!("dahliac: alerts takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(addr) = connect else {
        eprintln!("dahliac: alerts needs --connect\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let since = match parse_nonneg("--since", since_raw) {
        Ok(n) => n.unwrap_or(0),
        Err(code) => return code,
    };
    let line = obj([
        ("op", Json::Str("alerts".to_string())),
        ("since", Json::Num(since as f64)),
    ])
    .emit();
    control_round_trip(&addr, &line)
}

/// One `{"op":"stats"}` round trip: the payload under the `stats`
/// envelope. Shared by `batch --connect` round accounting and `top`.
fn fetch_remote_stats(client: &mut Client) -> std::io::Result<Json> {
    client.send_line(r#"{"op":"stats"}"#)?;
    let line = client.recv_line()?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection during a stats request",
        )
    })?;
    let v = Json::parse(&line).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unparseable stats line: {e}"),
        )
    })?;
    Ok(v.get("stats").cloned().unwrap_or(Json::Null))
}

/// Scale a series onto the eight spark glyphs (▁▂▃▄▅▆▇█), newest bin
/// last. `None` when the series is empty, so `top` omits the row
/// entirely on remotes running without `--telemetry-dir`.
fn sparkline(values: &[f64]) -> Option<String> {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return None;
    }
    let max = values.iter().copied().fold(0.0_f64, f64::max);
    Some(
        values
            .iter()
            .map(|v| {
                let i = if max > 0.0 {
                    ((v / max) * 7.0).round() as usize
                } else {
                    0
                };
                BARS[i.min(7)]
            })
            .collect(),
    )
}

/// One `{"op":"history"}` round trip, reduced to the per-bin value a
/// sparkline plots: `mean` for scalar series, `p99` for histogram
/// series. A remote without durable telemetry answers with zero
/// points, which comes back as an empty vector.
fn fetch_history_series(
    client: &mut Client,
    series: &str,
    since: u64,
    step: u64,
) -> std::io::Result<Vec<f64>> {
    let line = obj([
        ("op", Json::Str("history".to_string())),
        ("series", Json::Str(series.to_string())),
        ("since", Json::Num(since as f64)),
        ("step", Json::Num(step as f64)),
    ])
    .emit();
    client.send_line(&line)?;
    let answer = client.recv_line()?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection during a history request",
        )
    })?;
    let v = Json::parse(&answer).unwrap_or(Json::Null);
    let mut out = Vec::new();
    if let Some(Json::Arr(points)) = v.get("history").and_then(|h| h.get("points")) {
        for p in points {
            out.push(
                p.get("mean")
                    .and_then(Json::as_f64)
                    .or_else(|| p.get("p99").and_then(Json::as_f64))
                    .unwrap_or(0.0),
            );
        }
    }
    Ok(out)
}

/// The sparkline rows of a `top` frame: the last two minutes of
/// windowed throughput and p99 latency from the remote's durable
/// telemetry, in 4-second bins. Empty (no rows rendered) when the
/// remote runs without `--telemetry-dir`.
fn fetch_top_sparks(client: &mut Client) -> std::io::Result<Vec<(&'static str, String)>> {
    const HORIZON_MS: u64 = 120_000;
    const STEP_MS: u64 = 4_000;
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let since = now_ms.saturating_sub(HORIZON_MS);
    let mut rows = Vec::new();
    for (label, series) in [("req/s", "window.rate"), ("p99us", "window.latency_us")] {
        let values = fetch_history_series(client, series, since, STEP_MS)?;
        if let Some(spark) = sparkline(&values) {
            rows.push((label, spark));
        }
    }
    Ok(rows)
}

/// One row of the `top` shard table, lifted from the gateway's
/// `shards` array.
struct TopShard {
    addr: String,
    alive: bool,
    draining: bool,
    rate: f64,
    error_rate: f64,
    p99_us: f64,
    queue_depth: f64,
    warm_keys: f64,
}

/// The fields `top` renders, extracted from one stats poll. Works
/// against a gateway (per-shard table + cluster totals) and a plain
/// server (totals only — the table is empty).
struct TopSnapshot {
    requests: f64,
    rate: f64,
    error_rate: f64,
    p50_us: f64,
    p99_us: f64,
    in_flight: f64,
    queue_depth: f64,
    shards_live: Option<f64>,
    shards: Vec<TopShard>,
    /// `(sessions_v0, sessions_v1, requests_shed)` from the remote's
    /// socket transport, when it runs the reactor (absent over stdio).
    transport: Option<(f64, f64, f64)>,
    /// Gateway front-door admission-cache hits (absent on plain servers).
    admission_hits: Option<f64>,
    /// Cluster sweep lifetime counters `(completed, points_done,
    /// points_skipped, points_pruned, last_points_per_s)` — gateway only.
    sweeps: Option<(f64, f64, f64, f64, f64)>,
}

impl TopSnapshot {
    fn from_stats(stats: &Json) -> TopSnapshot {
        let num = |v: Option<&Json>, k: &str| v.and_then(|o| o.get(k)).and_then(Json::as_f64);
        let window = stats.get("window");
        let hist = window.and_then(|w| w.get("latency_us"));
        let gateway = stats.get("gateway");
        let mut shards = Vec::new();
        if let Some(Json::Arr(items)) = gateway.and_then(|g| g.get("shards")) {
            for item in items {
                shards.push(TopShard {
                    addr: item
                        .get("addr")
                        .and_then(Json::as_str)
                        .unwrap_or("?")
                        .to_string(),
                    alive: item.get("alive").and_then(Json::as_bool).unwrap_or(false),
                    draining: item
                        .get("draining")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    rate: num(Some(item), "window_rate").unwrap_or(0.0),
                    error_rate: num(Some(item), "window_error_rate").unwrap_or(0.0),
                    p99_us: num(Some(item), "window_p99_us").unwrap_or(0.0),
                    queue_depth: num(Some(item), "queue_depth").unwrap_or(0.0),
                    warm_keys: num(Some(item), "warm_keys").unwrap_or(0.0),
                });
            }
        }
        let sweeps = gateway.and_then(|g| g.get("sweeps")).map(|s| {
            (
                num(Some(s), "completed").unwrap_or(0.0),
                num(Some(s), "points_done").unwrap_or(0.0),
                num(Some(s), "points_skipped").unwrap_or(0.0),
                num(Some(s), "points_pruned").unwrap_or(0.0),
                num(Some(s), "last_points_per_s").unwrap_or(0.0),
            )
        });
        let transport = stats.get("transport").map(|t| {
            (
                num(Some(t), "sessions_v0").unwrap_or(0.0),
                num(Some(t), "sessions_v1").unwrap_or(0.0),
                num(Some(t), "requests_shed").unwrap_or(0.0),
            )
        });
        TopSnapshot {
            requests: num(Some(stats), "requests").unwrap_or(0.0),
            rate: num(window, "rate").unwrap_or(0.0),
            error_rate: num(window, "error_rate").unwrap_or(0.0),
            p50_us: num(hist, "p50").unwrap_or(0.0),
            p99_us: num(hist, "p99").unwrap_or(0.0),
            in_flight: num(window, "in_flight").unwrap_or(0.0),
            queue_depth: num(window, "queue_depth").unwrap_or(0.0),
            shards_live: num(gateway, "shards_live"),
            shards,
            transport,
            admission_hits: num(gateway, "admission_cache_hits"),
            sweeps,
        }
    }

    /// The `--once` machine-readable form: one compact JSON object
    /// under a `top` envelope, round-trippable by `Json::parse`.
    fn to_json(&self, addr: &str) -> Json {
        let mut fields = vec![
            ("addr", Json::Str(addr.to_string())),
            ("requests", Json::Num(self.requests)),
            ("rate", Json::Num(self.rate)),
            ("error_rate", Json::Num(self.error_rate)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("in_flight", Json::Num(self.in_flight)),
            ("queue_depth", Json::Num(self.queue_depth)),
        ];
        if let Some(live) = self.shards_live {
            fields.push(("shards_live", Json::Num(live)));
        }
        if let Some((v0, v1, shed)) = self.transport {
            fields.push(("sessions_v0", Json::Num(v0)));
            fields.push(("sessions_v1", Json::Num(v1)));
            fields.push(("requests_shed", Json::Num(shed)));
        }
        if let Some(hits) = self.admission_hits {
            fields.push(("admission_cache_hits", Json::Num(hits)));
        }
        if let Some((completed, done, skipped, pruned, pps)) = self.sweeps {
            fields.push(("sweep_completed", Json::Num(completed)));
            fields.push(("sweep_points_done", Json::Num(done)));
            fields.push(("sweep_points_skipped", Json::Num(skipped)));
            fields.push(("sweep_points_pruned", Json::Num(pruned)));
            fields.push(("sweep_points_per_s", Json::Num(pps)));
        }
        fields.push((
            "shards",
            Json::Arr(
                self.shards
                    .iter()
                    .map(|s| {
                        obj([
                            ("addr", Json::Str(s.addr.clone())),
                            ("alive", Json::Bool(s.alive)),
                            ("draining", Json::Bool(s.draining)),
                            ("rate", Json::Num(s.rate)),
                            ("error_rate", Json::Num(s.error_rate)),
                            ("p99_us", Json::Num(s.p99_us)),
                            ("queue_depth", Json::Num(s.queue_depth)),
                            ("warm_keys", Json::Num(s.warm_keys)),
                        ])
                    })
                    .collect(),
            ),
        ));
        obj([(
            "top",
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            ),
        )])
    }

    /// The interactive console frame.
    fn render(&self, addr: &str, elapsed_s: u64, sparks: &[(&'static str, String)]) -> String {
        let mut out = String::new();
        out.push_str(&format!("dahliac top — {addr} — up {elapsed_s}s\n"));
        out.push_str(&format!(
            "cluster: {:>8.1} req/s  {:>6.1} err/s  p50 {:>8.0}us  p99 {:>8.0}us  \
             in-flight {:>3.0}  queue {:>3.0}",
            self.rate, self.error_rate, self.p50_us, self.p99_us, self.in_flight, self.queue_depth,
        ));
        if let Some(live) = self.shards_live {
            out.push_str(&format!("  live {live:.0}/{}", self.shards.len()));
        }
        out.push('\n');
        if self.transport.is_some() || self.admission_hits.is_some() {
            out.push_str("wire:   ");
            if let Some((v0, v1, shed)) = self.transport {
                out.push_str(&format!("{v0:.0} v0 + {v1:.0} v1 sessions  shed {shed:.0}"));
            }
            if let Some(hits) = self.admission_hits {
                if self.transport.is_some() {
                    out.push_str("  ");
                }
                out.push_str(&format!("admission hits {hits:.0}"));
            }
            out.push('\n');
        }
        if let Some((completed, done, skipped, pruned, pps)) = self.sweeps {
            if completed > 0.0 || done > 0.0 {
                out.push_str(&format!(
                    "sweeps: {completed:.0} completed  {done:.0} evaluated  \
                     {skipped:.0} resumed  {pruned:.0} pruned  {pps:.1} pts/s\n"
                ));
            }
        }
        if !sparks.is_empty() {
            out.push('\n');
            for (label, spark) in sparks {
                out.push_str(&format!("{label:>6}  {spark}  (2m, 4s bins)\n"));
            }
        }
        if !self.shards.is_empty() {
            out.push_str(&format!(
                "\n{:<24} {:>5} {:>10} {:>8} {:>10} {:>6} {:>7}\n",
                "SHARD", "STATE", "ROUTED/S", "ERR/S", "P99(us)", "QUEUE", "WARM"
            ));
            for s in &self.shards {
                let state = if s.draining {
                    "drain"
                } else if s.alive {
                    "up"
                } else {
                    "down"
                };
                out.push_str(&format!(
                    "{:<24} {:>5} {:>10.1} {:>8.1} {:>10.0} {:>6.0} {:>7.0}\n",
                    s.addr, state, s.rate, s.error_rate, s.p99_us, s.queue_depth, s.warm_keys,
                ));
            }
        }
        out
    }
}

/// `dahliac top`: a live load console over a server or gateway's wire
/// protocol. Redraws every `--interval-ms` until interrupted; `--once`
/// prints a single machine-readable snapshot and exits.
fn cmd_top(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (connect, interval_raw) = match (
        take_flag(&mut args, "--connect"),
        take_flag(&mut args, "--interval-ms"),
    ) {
        (Ok(c), Ok(i)) => (c, i),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let once = take_switch(&mut args, "--once");
    if !args.is_empty() {
        eprintln!("dahliac: top takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    let Some(addr) = connect else {
        eprintln!("dahliac: top needs --connect\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let interval = match parse_positive("--interval-ms", interval_raw) {
        Ok(n) => n.unwrap_or(2000) as u64,
        Err(code) => return code,
    };

    let mut client = match Client::connect_retry(addr.as_str(), 50) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dahliac: cannot connect to `{addr}`: {e}");
            return ExitCode::from(EXIT_NET);
        }
    };
    let t0 = Instant::now();
    loop {
        let stats = match fetch_remote_stats(&mut client) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dahliac: network error talking to `{addr}`: {e}");
                return ExitCode::from(EXIT_NET);
            }
        };
        let snap = TopSnapshot::from_stats(&stats);
        if once {
            println!("{}", snap.to_json(&addr).emit());
            return ExitCode::SUCCESS;
        }
        let sparks = match fetch_top_sparks(&mut client) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("dahliac: network error talking to `{addr}`: {e}");
                return ExitCode::from(EXIT_NET);
            }
        };
        // ANSI clear + home: a real terminal redraw, not a scroll.
        print!(
            "\x1b[2J\x1b[H{}",
            snap.render(&addr, t0.elapsed().as_secs(), &sparks)
        );
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

/// The request set for one batch invocation.
fn batch_programs(use_kernels: bool, files: &[String]) -> Result<Vec<(String, String)>, ExitCode> {
    let mut programs: Vec<(String, String)> = Vec::new();
    if use_kernels {
        for b in dahlia_kernels::all_benches() {
            programs.push((b.name.to_string(), b.source));
        }
    }
    for path in files {
        let src = read_source(path)?;
        let name = if path == "-" {
            "stdin".to_string()
        } else {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().replace('-', "_"))
                .unwrap_or_else(|| "kernel".to_string())
        };
        programs.push((name, src));
    }
    if programs.is_empty() {
        eprintln!("dahliac: batch needs input programs (--kernels and/or files)\n{USAGE}");
        return Err(ExitCode::from(EXIT_USAGE));
    }
    Ok(programs)
}

fn round_requests(
    programs: &[(String, String)],
    stage: Stage,
    round: u32,
    traced: bool,
) -> Vec<Request> {
    programs
        .iter()
        .enumerate()
        .map(|(i, (name, src))| {
            let req = Request::new(format!("{i}:{name}#{round}"), stage, src, name);
            if traced {
                req.traced(format!("t{round}-{i}"))
            } else {
                req
            }
        })
        .collect()
}

fn print_round_summary(round: u32, requests: usize, ok: usize, wall_us: u64, delta: [u64; 3]) {
    println!(
        "{}",
        obj([
            ("round", Json::Num(round as f64)),
            ("requests", Json::Num(requests as f64)),
            ("ok", Json::Num(ok as f64)),
            ("errors", Json::Num((requests - ok) as f64)),
            ("wall_us", Json::Num(wall_us as f64)),
            ("hits", Json::Num(delta[0] as f64)),
            ("misses", Json::Num(delta[1] as f64)),
            ("joins", Json::Num(delta[2] as f64)),
        ])
        .emit()
    );
}

fn print_batch_summary(repeat: u32, programs: usize, round_walls: &[u64], stats: Json) {
    let cold = round_walls[0];
    let warm = *round_walls.last().unwrap();
    let speedup = cold as f64 / warm.max(1) as f64;
    let mut fields = vec![
        ("rounds", Json::Num(repeat as f64)),
        ("programs", Json::Num(programs as f64)),
        ("cold_wall_us", Json::Num(cold as f64)),
        ("warm_wall_us", Json::Num(warm as f64)),
    ];
    if repeat > 1 {
        fields.push(("speedup", Json::Num((speedup * 100.0).round() / 100.0)));
    }
    fields.push(("stats", stats));
    println!("{}", obj([("batch", obj(fields))]).emit());
}

/// `dahliac batch`: compile many programs through the service (local or
/// remote), optionally several rounds, and report per-round wall time
/// plus cache stats.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (repeat_raw, stage_raw, connect, wire_raw) = match (
        take_flag(&mut args, "--repeat"),
        take_flag(&mut args, "--stage"),
        take_flag(&mut args, "--connect"),
        take_flag(&mut args, "--wire"),
    ) {
        (Ok(r), Ok(s), Ok(c), Ok(w)) => (r, s, c, w),
        (Err(e), ..) | (_, Err(e), ..) | (_, _, Err(e), _) | (.., Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let wire_max = match parse_wire("--wire", wire_raw) {
        Ok(w) => w,
        Err(code) => return code,
    };
    if wire_max.is_some() && connect.is_none() {
        eprintln!("dahliac: --wire picks the socket protocol; it needs --connect");
        return ExitCode::from(EXIT_USAGE);
    }
    let opts = match ServiceOpts::take(&mut args) {
        Ok(o) => o,
        Err(code) => return code,
    };
    let repeat = match repeat_raw {
        None => 2,
        Some(r) => match r.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("dahliac: --repeat needs a positive integer, got `{r}`");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let stage = match stage_raw {
        None => Stage::Estimate,
        Some(s) => match Stage::from_name(&s) {
            Some(st) => st,
            None => {
                eprintln!("dahliac: unknown stage `{s}` (parse|check|desugar|lower|cpp|est)");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let use_kernels = take_switch(&mut args, "--kernels");
    let verbose = take_switch(&mut args, "--verbose");
    let traced = take_switch(&mut args, "--trace");
    let slowlog = take_switch(&mut args, "--slowlog");
    let shutdown = take_switch(&mut args, "--shutdown");
    if shutdown && connect.is_none() {
        eprintln!("dahliac: --shutdown only makes sense with --connect");
        return ExitCode::from(EXIT_USAGE);
    }
    if connect.is_some() {
        if let Some(flag) = opts.local_only_flag() {
            eprintln!(
                "dahliac: {flag} configures an in-process server and is \
                 ignored by the remote one; drop it or drop --connect"
            );
            return ExitCode::from(EXIT_USAGE);
        }
    }

    // `--shutdown` with no inputs is a pure control action: stop the
    // remote (server or gateway) without compiling anything.
    if shutdown && !use_kernels && args.is_empty() {
        let addr = connect.expect("checked above");
        return match Client::connect_retry(addr.as_str(), 50).and_then(|mut c| c.shutdown_server())
        {
            Ok(_) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("dahliac: cannot shut down `{addr}`: {e}");
                ExitCode::from(EXIT_NET)
            }
        };
    }

    let programs = match batch_programs(use_kernels, &args) {
        Ok(p) => p,
        Err(code) => return code,
    };

    if let Some(addr) = connect {
        return batch_over_tcp(
            &addr,
            &programs,
            stage,
            repeat,
            verbose,
            traced,
            slowlog,
            shutdown,
            wire_max.unwrap_or(0),
        );
    }

    let server = match opts.build() {
        Ok(s) => s,
        Err(code) => return code,
    };

    let mut round_walls: Vec<u64> = Vec::new();
    let mut any_failed = false;
    let mut prev = server.stats();
    for round in 1..=repeat {
        let reqs = round_requests(&programs, stage, round, traced);
        let n = reqs.len();
        let t0 = Instant::now();
        let responses = server.submit_batch(reqs);
        let wall_us = t0.elapsed().as_micros() as u64;
        round_walls.push(wall_us);

        let ok = responses.iter().filter(|r| r.ok()).count();
        any_failed |= ok < n;
        if verbose {
            for r in &responses {
                println!("{}", r.to_line());
            }
        }
        let now = server.stats();
        print_round_summary(
            round,
            n,
            ok,
            wall_us,
            [
                now.store.hits - prev.store.hits,
                now.store.misses - prev.store.misses,
                now.store.joins - prev.store.joins,
            ],
        );
        prev = now;
    }

    // Drain the write-behind queue so the printed stats (and the cache
    // directory another process is about to inherit) are complete.
    server.flush();
    print_batch_summary(
        repeat,
        programs.len(),
        &round_walls,
        server.stats().to_json(),
    );
    if traced {
        // The journal dump, in the same envelope the wire op answers
        // with, so scripts parse both paths identically.
        println!(
            "{}",
            obj([("trace", SessionHost::trace_json(&server))]).emit()
        );
    }
    if slowlog {
        // The slow-request log, same envelope as the wire op. A full
        // dump (cursor 0): a batch run is one-shot, not a poller.
        println!(
            "{}",
            obj([("slowlog", SessionHost::slowlog_json(&server, 0))]).emit()
        );
    }

    if any_failed {
        ExitCode::from(EXIT_RUNTIME)
    } else {
        ExitCode::SUCCESS
    }
}

/// Drive a remote `dahliac serve --listen` over the socket transport.
/// Responses arrive pipelined and possibly out of order; correlation is
/// by request id.
#[allow(clippy::too_many_arguments)]
fn batch_over_tcp(
    addr: &str,
    programs: &[(String, String)],
    stage: Stage,
    repeat: u32,
    verbose: bool,
    traced: bool,
    slowlog: bool,
    shutdown: bool,
    wire_max: u32,
) -> ExitCode {
    let mut client = match Client::connect_retry_wire(addr, 50, wire_max) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dahliac: cannot connect to `{addr}`: {e}");
            return ExitCode::from(EXIT_NET);
        }
    };
    if wire_max > 0 {
        eprintln!(
            "dahliac batch: negotiated wire v{} with `{addr}`",
            client.wire_version()
        );
    }

    let run = |client: &mut Client| -> std::io::Result<ExitCode> {
        // Saturating: another client may reset nothing (counters are
        // monotonic), but a defensive delta never underflows.
        let counter =
            |stats: &Json, key: &str| -> u64 { stats.get(key).and_then(Json::as_u64).unwrap_or(0) };
        let delta = |now: &Json, prev: &Json, key: &str| -> u64 {
            counter(now, key).saturating_sub(counter(prev, key))
        };

        let mut round_walls: Vec<u64> = Vec::new();
        let mut any_failed = false;
        let mut prev = fetch_remote_stats(client)?;
        for round in 1..=repeat {
            let reqs = round_requests(programs, stage, round, traced);
            let n = reqs.len();
            let t0 = Instant::now();
            for r in &reqs {
                client.send_line(&r.to_line())?;
            }
            let mut ok = 0usize;
            for _ in 0..n {
                let Some(line) = client.recv_line()? else {
                    eprintln!("dahliac: server closed the connection mid-round");
                    return Ok(ExitCode::from(EXIT_NET));
                };
                if verbose {
                    println!("{line}");
                }
                let v = Json::parse(&line).unwrap_or(Json::Null);
                if v.get("ok").and_then(Json::as_bool) == Some(true) {
                    ok += 1;
                }
            }
            let wall_us = t0.elapsed().as_micros() as u64;
            round_walls.push(wall_us);
            any_failed |= ok < n;
            let now = fetch_remote_stats(client)?;
            print_round_summary(
                round,
                n,
                ok,
                wall_us,
                [
                    delta(&now, &prev, "hits"),
                    delta(&now, &prev, "misses"),
                    delta(&now, &prev, "joins"),
                ],
            );
            prev = now;
        }

        let stats = fetch_remote_stats(client)?;
        print_batch_summary(repeat, programs.len(), &round_walls, stats);
        if traced {
            // Dump the remote's trace journal (gateway or server —
            // the op is the same) as the batch's last output line.
            client.send_line(r#"{"op":"trace"}"#)?;
            let line = client.recv_line()?.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection during a trace request",
                )
            })?;
            println!("{line}");
        }
        if slowlog {
            // And the remote's slow-request log, full dump.
            client.send_line(r#"{"op":"slowlog"}"#)?;
            let line = client.recv_line()?.ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection during a slowlog request",
                )
            })?;
            println!("{line}");
        }
        if shutdown {
            client.shutdown_server()?;
        }
        Ok(if any_failed {
            ExitCode::from(EXIT_RUNTIME)
        } else {
            ExitCode::SUCCESS
        })
    };

    match run(&mut client) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dahliac: network error talking to `{addr}`: {e}");
            ExitCode::from(EXIT_NET)
        }
    }
}
