//! `dahliac` — the Dahlia compiler driver and compile-service front end.
//!
//! ```text
//! dahliac check  <file.fuse>          type-check and report
//! dahliac cpp    <file.fuse> [name]   emit Vivado-HLS-style C++
//! dahliac run    <file.fuse>          interpret (checked semantics)
//! dahliac est    <file.fuse> [name]   estimate area/latency via hls-sim
//! dahliac lower  <file.fuse>          dump the lowered kernel IR
//! dahliac serve                       JSON-lines compile service on stdio
//! dahliac batch  [opts] [files...]    compile a batch through the service
//! ```
//!
//! `<file.fuse>` may be `-` to read the program from stdin. (`.fuse` is
//! the extension the original Dahlia compiler uses.)
//!
//! Exit codes are distinct per failure phase so scripts and test
//! harnesses can tell rejection modes apart without scraping stderr:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | runtime failure (interpreter error, batch item failed) |
//! | 2 | usage or I/O error |
//! | 3 | lex/parse error |
//! | 4 | affine type error |

use std::collections::HashMap;
use std::io::Read as _;
use std::process::ExitCode;
use std::time::Instant;

use dahlia_backend::{emit_cpp, lower};
use dahlia_core::{interp, parse, typecheck, Error};
use dahlia_server::json::{obj, Json};
use dahlia_server::{Request, Server, Stage};

/// Runtime failure (interpreter, failed batch item).
const EXIT_RUNTIME: u8 = 1;
/// Bad usage or I/O failure.
const EXIT_USAGE: u8 = 2;
/// Lexical or syntax error in the input program.
const EXIT_PARSE: u8 = 3;
/// Time-sensitive affine type error.
const EXIT_TYPE: u8 = 4;

const USAGE: &str = "usage: dahliac <command> [args]

  dahliac check  <file.fuse>          type-check and report
  dahliac cpp    <file.fuse> [name]   emit Vivado-HLS-style C++
  dahliac run    <file.fuse>          interpret (checked semantics)
  dahliac est    <file.fuse> [name]   estimate area/latency via hls-sim
  dahliac lower  <file.fuse>          dump the lowered kernel IR
  dahliac serve                       JSON-lines compile service on stdio
                                      (strict request/response order; the
                                      cache still dedups repeat work)
  dahliac batch  [--kernels] [--repeat N] [--threads N] [--stage S]
                 [--verbose] [files...]
                                      compile a batch through the service
                                      (N worker threads, default: cores-1)

  <file.fuse> may be `-` for stdin.
  exit codes: 0 ok, 1 runtime, 2 usage/io, 3 parse error, 4 type error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    match cmd.as_str() {
        "serve" => cmd_serve(&args[1..]),
        "batch" => cmd_batch(&args[1..]),
        "check" | "cpp" | "run" | "est" | "lower" => cmd_compile(cmd, &args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("dahliac: unknown command `{other}`\n{USAGE}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// Read a source file, `-` meaning stdin.
fn read_source(path: &str) -> Result<String, ExitCode> {
    if path == "-" {
        let mut src = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut src) {
            eprintln!("dahliac: cannot read stdin: {e}");
            return Err(ExitCode::from(EXIT_USAGE));
        }
        return Ok(src);
    }
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("dahliac: cannot read `{path}`: {e}");
        ExitCode::from(EXIT_USAGE)
    })
}

/// Exit code for a front-end error, by phase.
fn error_exit(e: &Error) -> ExitCode {
    match e {
        Error::Lex { .. } | Error::Parse { .. } => ExitCode::from(EXIT_PARSE),
        Error::Type(_) => ExitCode::from(EXIT_TYPE),
        Error::Interp { .. } => ExitCode::from(EXIT_RUNTIME),
    }
}

/// The classic one-shot commands.
fn cmd_compile(cmd: &str, args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("dahliac: `{cmd}` needs an input file\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    };
    let name = args.get(1).cloned().unwrap_or_else(|| {
        if path == "-" {
            "kernel".to_string()
        } else {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().replace('-', "_"))
                .unwrap_or_else(|| "kernel".to_string())
        }
    });

    let src = match read_source(path) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let prog = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dahliac: {e}");
            return error_exit(&e);
        }
    };

    match cmd {
        "check" => match typecheck(&prog) {
            Ok(r) => {
                println!(
                    "ok: {} memories, {} views, {} accesses, {} functions, max unroll {}",
                    r.memories, r.views, r.accesses, r.functions, r.max_unroll
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dahliac: {e}");
                error_exit(&e)
            }
        },
        "cpp" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            print!("{}", emit_cpp(&prog, &name));
            ExitCode::SUCCESS
        }
        "run" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            match interp::interpret_with(&prog, &interp::InterpOptions::default(), &HashMap::new())
            {
                Ok(out) => {
                    let mut names: Vec<&String> = out.mems.keys().collect();
                    names.sort();
                    for n in names {
                        let mem = &out.mems[n];
                        let shown: Vec<String> =
                            mem.iter().take(8).map(|v| format!("{v:?}")).collect();
                        println!(
                            "{n}[{}] = [{}{}]",
                            mem.len(),
                            shown.join(", "),
                            if mem.len() > 8 { ", …" } else { "" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dahliac: {e}");
                    ExitCode::from(EXIT_RUNTIME)
                }
            }
        }
        "est" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return error_exit(&e);
            }
            let est = hls_sim::estimate(&lower(&prog, &name));
            println!("kernel:   {}", est.name);
            println!("cycles:   {}", est.cycles);
            println!("runtime:  {:.3} ms @ 250 MHz", est.runtime_ms(250.0));
            println!("LUTs:     {}", est.luts);
            println!("FFs:      {}", est.ffs);
            println!("DSPs:     {}", est.dsps);
            println!("BRAMs:    {}", est.brams);
            println!("LUT mem:  {}", est.lut_mems);
            println!("correct:  {}", est.correct);
            for n in &est.notes {
                println!("note:     {n}");
            }
            ExitCode::SUCCESS
        }
        "lower" => {
            println!("{:#?}", lower(&prog, &name));
            ExitCode::SUCCESS
        }
        _ => unreachable!("dispatched in main"),
    }
}

/// Extract a `--flag value` option from `args`, leaving positionals in
/// place. A flag present without a usable value is an error (otherwise
/// the dangling flag would be misparsed as a file name downstream).
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        _ => Err(format!("{flag} needs a value")),
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn server_with_threads(threads: Option<String>) -> Result<Server, ExitCode> {
    match threads {
        None => Ok(Server::new()),
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Server::with_threads(n)),
            _ => {
                eprintln!("dahliac: --threads needs a positive integer, got `{t}`");
                Err(ExitCode::from(EXIT_USAGE))
            }
        },
    }
}

/// `dahliac serve`: the JSON-lines protocol over stdio.
fn cmd_serve(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--threads") {
        eprintln!(
            "dahliac: serve answers requests in order on one thread; \
             --threads applies to `dahliac batch`"
        );
        return ExitCode::from(EXIT_USAGE);
    }
    if !args.is_empty() {
        eprintln!("dahliac: serve takes no positional arguments (got {args:?})\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }
    // One pool worker: the serve loop compiles on the calling thread, so
    // a larger pool would only sit parked.
    let server = Server::with_threads(1);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match server.serve(stdin.lock(), stdout.lock()) {
        Ok(summary) => {
            eprintln!(
                "dahliac serve: {} lines, {} protocol errors, {}",
                summary.lines,
                summary.protocol_errors,
                server.stats()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dahliac serve: I/O error: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}

/// `dahliac batch`: compile many programs through the service, optionally
/// several rounds, and report per-round wall time plus cache stats.
fn cmd_batch(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let (threads, repeat_raw, stage_raw) = match (
        take_flag(&mut args, "--threads"),
        take_flag(&mut args, "--repeat"),
        take_flag(&mut args, "--stage"),
    ) {
        (Ok(t), Ok(r), Ok(s)) => (t, r, s),
        (Err(e), ..) | (_, Err(e), _) | (.., Err(e)) => {
            eprintln!("dahliac: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let repeat = match repeat_raw {
        None => 2,
        Some(r) => match r.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("dahliac: --repeat needs a positive integer, got `{r}`");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let stage = match stage_raw {
        None => Stage::Estimate,
        Some(s) => match Stage::from_name(&s) {
            Some(st) => st,
            None => {
                eprintln!("dahliac: unknown stage `{s}` (parse|check|desugar|lower|cpp|est)");
                return ExitCode::from(EXIT_USAGE);
            }
        },
    };
    let use_kernels = take_switch(&mut args, "--kernels");
    let verbose = take_switch(&mut args, "--verbose");

    // Assemble the request set: the MachSuite kernel suite and/or files.
    let mut programs: Vec<(String, String)> = Vec::new();
    if use_kernels {
        for b in dahlia_kernels::all_benches() {
            programs.push((b.name.to_string(), b.source));
        }
    }
    for path in &args {
        match read_source(path) {
            Ok(src) => {
                let name = if path == "-" {
                    "stdin".to_string()
                } else {
                    std::path::Path::new(path)
                        .file_stem()
                        .map(|s| s.to_string_lossy().replace('-', "_"))
                        .unwrap_or_else(|| "kernel".to_string())
                };
                programs.push((name, src));
            }
            Err(code) => return code,
        }
    }
    if programs.is_empty() {
        eprintln!("dahliac: batch needs input programs (--kernels and/or files)\n{USAGE}");
        return ExitCode::from(EXIT_USAGE);
    }

    let server = match server_with_threads(threads) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let mut round_walls: Vec<u64> = Vec::new();
    let mut any_failed = false;
    let mut prev = server.stats();
    for round in 1..=repeat {
        let reqs: Vec<Request> = programs
            .iter()
            .map(|(name, src)| Request::new(format!("{name}#{round}"), stage, src, name))
            .collect();
        let t0 = Instant::now();
        let responses = server.submit_batch(reqs);
        let wall_us = t0.elapsed().as_micros() as u64;
        round_walls.push(wall_us);

        let ok = responses.iter().filter(|r| r.ok()).count();
        let errors = responses.len() - ok;
        any_failed |= errors > 0;
        if verbose {
            for r in &responses {
                println!("{}", r.to_line());
            }
        }
        let now = server.stats();
        println!(
            "{}",
            obj([
                ("round", Json::Num(round as f64)),
                ("requests", Json::Num(responses.len() as f64)),
                ("ok", Json::Num(ok as f64)),
                ("errors", Json::Num(errors as f64)),
                ("wall_us", Json::Num(wall_us as f64)),
                ("hits", Json::Num((now.store.hits - prev.store.hits) as f64)),
                (
                    "misses",
                    Json::Num((now.store.misses - prev.store.misses) as f64)
                ),
                (
                    "joins",
                    Json::Num((now.store.joins - prev.store.joins) as f64)
                ),
            ])
            .emit()
        );
        prev = now;
    }

    // Cold-vs-warm summary: round 1 fills the content-addressed cache,
    // later rounds are served from it.
    let cold = round_walls[0];
    let warm = *round_walls.last().unwrap();
    let speedup = cold as f64 / warm.max(1) as f64;
    let mut fields = vec![
        ("rounds", Json::Num(repeat as f64)),
        ("programs", Json::Num(programs.len() as f64)),
        ("cold_wall_us", Json::Num(cold as f64)),
        ("warm_wall_us", Json::Num(warm as f64)),
    ];
    if repeat > 1 {
        fields.push(("speedup", Json::Num((speedup * 100.0).round() / 100.0)));
    }
    fields.push(("stats", server.stats().to_json()));
    println!("{}", obj([("batch", obj(fields))]).emit());

    if any_failed {
        ExitCode::from(EXIT_RUNTIME)
    } else {
        ExitCode::SUCCESS
    }
}
