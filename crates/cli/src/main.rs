//! `dahliac` — the Dahlia compiler driver.
//!
//! ```text
//! dahliac check  <file.fuse>          type-check and report
//! dahliac cpp    <file.fuse> [name]   emit Vivado-HLS-style C++
//! dahliac run    <file.fuse>          interpret (checked semantics)
//! dahliac est    <file.fuse> [name]   estimate area/latency via hls-sim
//! dahliac lower  <file.fuse>          dump the lowered kernel IR
//! ```
//!
//! (`.fuse` is the extension the original Dahlia compiler uses.)

use std::collections::HashMap;
use std::process::ExitCode;

use dahlia_backend::{emit_cpp, lower};
use dahlia_core::{interp, parse, typecheck};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: dahliac <check|cpp|run|est|lower> <file> [kernel-name]");
            return ExitCode::from(2);
        }
    };
    let name = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| {
            std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().replace('-', "_"))
                .unwrap_or_else(|| "kernel".to_string())
        });

    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dahliac: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    let prog = match parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dahliac: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "check" => match typecheck(&prog) {
            Ok(r) => {
                println!(
                    "ok: {} memories, {} views, {} accesses, {} functions, max unroll {}",
                    r.memories, r.views, r.accesses, r.functions, r.max_unroll
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dahliac: {e}");
                ExitCode::FAILURE
            }
        },
        "cpp" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return ExitCode::FAILURE;
            }
            print!("{}", emit_cpp(&prog, &name));
            ExitCode::SUCCESS
        }
        "run" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return ExitCode::FAILURE;
            }
            match interp::interpret_with(&prog, &interp::InterpOptions::default(), &HashMap::new())
            {
                Ok(out) => {
                    let mut names: Vec<&String> = out.mems.keys().collect();
                    names.sort();
                    for n in names {
                        let mem = &out.mems[n];
                        let shown: Vec<String> =
                            mem.iter().take(8).map(|v| format!("{v:?}")).collect();
                        println!(
                            "{n}[{}] = [{}{}]",
                            mem.len(),
                            shown.join(", "),
                            if mem.len() > 8 { ", …" } else { "" }
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dahliac: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "est" => {
            if let Err(e) = typecheck(&prog) {
                eprintln!("dahliac: {e}");
                return ExitCode::FAILURE;
            }
            let est = hls_sim::estimate(&lower(&prog, &name));
            println!("kernel:   {}", est.name);
            println!("cycles:   {}", est.cycles);
            println!("runtime:  {:.3} ms @ 250 MHz", est.runtime_ms(250.0));
            println!("LUTs:     {}", est.luts);
            println!("FFs:      {}", est.ffs);
            println!("DSPs:     {}", est.dsps);
            println!("BRAMs:    {}", est.brams);
            println!("LUT mem:  {}", est.lut_mems);
            println!("correct:  {}", est.correct);
            for n in &est.notes {
                println!("note:     {n}");
            }
            ExitCode::SUCCESS
        }
        "lower" => {
            println!("{:#?}", lower(&prog, &name));
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("dahliac: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}
