//! End-to-end tests for the `dahliac` driver binary.

use std::io::Write as _;
use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_dahliac"))
        .args(args)
        .output()
        .expect("dahliac runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_tmp(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("tmp file");
    f.write_all(src.as_bytes()).expect("write");
    path.to_string_lossy().into_owned()
}

const GOOD: &str = "let A: float[8 bank 4];
for (let i = 0..8) unroll 4 { A[i] := 1.0; }
";

const BAD: &str = "let A: float[8];
for (let i = 0..8) unroll 4 { A[i] := 1.0; }
";

#[test]
fn check_accepts_and_rejects() {
    let good = write_tmp("dahliac_good.fuse", GOOD);
    let (out, _, ok) = run(&["check", &good]);
    assert!(ok);
    assert!(out.contains("ok: 1 memories"), "{out}");

    let bad = write_tmp("dahliac_bad.fuse", BAD);
    let (_, err, ok) = run(&["check", &bad]);
    assert!(!ok);
    assert!(err.contains("InsufficientBanks"), "{err}");
}

#[test]
fn cpp_emits_pragmas() {
    let good = write_tmp("dahliac_cpp.fuse", GOOD);
    let (out, _, ok) = run(&["cpp", &good, "my_kernel"]);
    assert!(ok);
    assert!(out.contains("void my_kernel("), "{out}");
    assert!(out.contains("ARRAY_PARTITION variable=A cyclic factor=4"), "{out}");
    assert!(out.contains("UNROLL factor=4"), "{out}");
}

#[test]
fn run_prints_final_memories() {
    let good = write_tmp("dahliac_run.fuse", GOOD);
    let (out, _, ok) = run(&["run", &good]);
    assert!(ok, "{out}");
    assert!(out.contains("A[8]"), "{out}");
    assert!(out.contains("Float(1.0)"), "{out}");
}

#[test]
fn est_reports_resources() {
    let good = write_tmp("dahliac_est.fuse", GOOD);
    let (out, _, ok) = run(&["est", &good]);
    assert!(ok);
    assert!(out.contains("cycles:"), "{out}");
    assert!(out.contains("LUTs:"), "{out}");
    assert!(out.contains("correct:  true"), "{out}");
}

#[test]
fn bad_usage_and_missing_files() {
    let (_, err, ok) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage"), "{err}");

    let (_, err, ok) = run(&["check", "/nonexistent/x.fuse"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");

    let good = write_tmp("dahliac_cmd.fuse", GOOD);
    let (_, err, ok) = run(&["frobnicate", &good]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn parse_errors_point_at_the_source() {
    let broken = write_tmp("dahliac_parse.fuse", "let = oops");
    let (_, err, ok) = run(&["check", &broken]);
    assert!(!ok);
    assert!(err.contains("parse error"), "{err}");
}
