//! End-to-end tests for the `dahliac` driver binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn run(args: &[&str]) -> (String, String, bool) {
    let (out, err, code) = run_code(args);
    (out, err, code == 0)
}

fn run_code(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_dahliac"))
        .args(args)
        .output()
        .expect("dahliac runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// Run with `input` piped to stdin.
fn run_stdin(args: &[&str], input: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dahliac"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dahliac spawns");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("dahliac runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn write_tmp(name: &str, src: &str) -> String {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("tmp file");
    f.write_all(src.as_bytes()).expect("write");
    path.to_string_lossy().into_owned()
}

const GOOD: &str = "let A: float[8 bank 4];
for (let i = 0..8) unroll 4 { A[i] := 1.0; }
";

const BAD: &str = "let A: float[8];
for (let i = 0..8) unroll 4 { A[i] := 1.0; }
";

#[test]
fn check_accepts_and_rejects() {
    let good = write_tmp("dahliac_good.fuse", GOOD);
    let (out, _, ok) = run(&["check", &good]);
    assert!(ok);
    assert!(out.contains("ok: 1 memories"), "{out}");

    let bad = write_tmp("dahliac_bad.fuse", BAD);
    let (_, err, ok) = run(&["check", &bad]);
    assert!(!ok);
    assert!(err.contains("InsufficientBanks"), "{err}");
}

#[test]
fn cpp_emits_pragmas() {
    let good = write_tmp("dahliac_cpp.fuse", GOOD);
    let (out, _, ok) = run(&["cpp", &good, "my_kernel"]);
    assert!(ok);
    assert!(out.contains("void my_kernel("), "{out}");
    assert!(
        out.contains("ARRAY_PARTITION variable=A cyclic factor=4"),
        "{out}"
    );
    assert!(out.contains("UNROLL factor=4"), "{out}");
}

#[test]
fn run_prints_final_memories() {
    let good = write_tmp("dahliac_run.fuse", GOOD);
    let (out, _, ok) = run(&["run", &good]);
    assert!(ok, "{out}");
    assert!(out.contains("A[8]"), "{out}");
    assert!(out.contains("Float(1.0)"), "{out}");
}

#[test]
fn est_reports_resources() {
    let good = write_tmp("dahliac_est.fuse", GOOD);
    let (out, _, ok) = run(&["est", &good]);
    assert!(ok);
    assert!(out.contains("cycles:"), "{out}");
    assert!(out.contains("LUTs:"), "{out}");
    assert!(out.contains("correct:  true"), "{out}");
}

#[test]
fn bad_usage_and_missing_files() {
    let (_, err, ok) = run(&[]);
    assert!(!ok);
    assert!(err.contains("usage"), "{err}");

    let (_, err, ok) = run(&["check", "/nonexistent/x.fuse"]);
    assert!(!ok);
    assert!(err.contains("cannot read"), "{err}");

    let good = write_tmp("dahliac_cmd.fuse", GOOD);
    let (_, err, ok) = run(&["frobnicate", &good]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn parse_errors_point_at_the_source() {
    let broken = write_tmp("dahliac_parse.fuse", "let = oops");
    let (_, err, ok) = run(&["check", &broken]);
    assert!(!ok);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn exit_codes_distinguish_failure_phases() {
    let good = write_tmp("dahliac_exit_good.fuse", GOOD);
    assert_eq!(run_code(&["check", &good]).2, 0, "success is 0");

    let broken = write_tmp("dahliac_exit_parse.fuse", "let = oops");
    assert_eq!(run_code(&["check", &broken]).2, 3, "parse errors are 3");

    let bad = write_tmp("dahliac_exit_type.fuse", BAD);
    assert_eq!(run_code(&["check", &bad]).2, 4, "type errors are 4");
    assert_eq!(run_code(&["cpp", &bad]).2, 4, "cpp hits the checker too");

    assert_eq!(run_code(&[]).2, 2, "usage is 2");
    assert_eq!(run_code(&["check", "/nonexistent/x.fuse"]).2, 2, "io is 2");
    assert_eq!(
        run_code(&["frobnicate", &good]).2,
        2,
        "unknown command is 2"
    );
}

#[test]
fn dash_reads_the_program_from_stdin() {
    let (out, _, code) = run_stdin(&["check", "-"], GOOD);
    assert_eq!(code, 0);
    assert!(out.contains("ok: 1 memories"), "{out}");

    let (out, _, code) = run_stdin(&["cpp", "-", "from_stdin"], GOOD);
    assert_eq!(code, 0);
    assert!(out.contains("void from_stdin("), "{out}");

    let (_, err, code) = run_stdin(&["check", "-"], "let = oops");
    assert_eq!(code, 3);
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn usage_mentions_the_service_commands() {
    let (_, err, code) = run_code(&[]);
    assert_eq!(code, 2);
    assert!(err.contains("serve"), "{err}");
    assert!(err.contains("batch"), "{err}");
    assert!(err.contains("exit codes"), "{err}");

    let (out, _, code) = run_code(&["help"]);
    assert_eq!(code, 0);
    assert!(out.contains("dahliac serve"), "{out}");
}

#[test]
fn serve_speaks_json_lines_on_stdio() {
    let req = format!(
        r#"{{"id":"t1","stage":"check","source":"{}"}}"#,
        GOOD.replace('\n', " ")
    );
    let (out, err, code) = run_stdin(&["serve"], &format!("{req}\n{{\"op\":\"stats\"}}\n"));
    assert_eq!(code, 0, "{err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 2, "{out}");
    assert!(
        lines[0].contains(r#""id":"t1","stage":"check","ok":true"#),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].starts_with(r#"{"stats":{"requests":1,"#),
        "{}",
        lines[1]
    );
    assert!(err.contains("dahliac serve: 2 lines"), "{err}");
}

#[test]
fn serve_rejects_positional_arguments() {
    let (_, err, code) = run_code(&["serve", "whoops.fuse"]);
    assert_eq!(code, 2);
    assert!(err.contains("serve takes no positional arguments"), "{err}");
}

#[test]
fn plain_serve_rejects_threads_flag() {
    // Plain stdio serve answers strictly in order on the calling thread;
    // a --threads knob there would be a lie, so it is refused with a
    // pointer to the modes where it means something.
    let (_, err, code) = run_code(&["serve", "--threads", "4"]);
    assert_eq!(code, 2);
    assert!(
        err.contains("--threads needs --pipeline or --listen"),
        "{err}"
    );
}

#[test]
fn pipelined_serve_accepts_threads_and_answers_by_id() {
    let req = format!(
        r#"{{"id":"p1","stage":"check","source":"{}"}}"#,
        GOOD.replace('\n', " ")
    );
    let (out, err, code) = run_stdin(
        &["serve", "--pipeline", "--threads", "2"],
        &format!("{req}\n"),
    );
    assert_eq!(code, 0, "{err}");
    assert!(out.contains(r#""id":"p1""#), "{out}");
    assert!(out.contains(r#""ok":true"#), "{out}");
}

#[test]
fn dangling_flags_are_flag_errors_not_file_errors() {
    let (_, err, code) = run_code(&["batch", "--kernels", "--threads"]);
    assert_eq!(code, 2);
    assert!(err.contains("--threads needs a value"), "{err}");

    // A flag-like token where the value should be is also refused rather
    // than silently consumed.
    let (_, err, code) = run_code(&["batch", "--threads", "--kernels"]);
    assert_eq!(code, 2);
    assert!(err.contains("--threads needs a value"), "{err}");
}

#[test]
fn batch_without_inputs_is_a_usage_error() {
    let (_, err, code) = run_code(&["batch"]);
    assert_eq!(code, 2);
    assert!(err.contains("batch needs input programs"), "{err}");
}

#[test]
fn batch_over_files_reports_rounds_and_cache_stats() {
    let good = write_tmp("dahliac_batch_a.fuse", GOOD);
    let bad = write_tmp("dahliac_batch_b.fuse", BAD);
    let (out, _, code) = run_code(&["batch", "--repeat", "2", "--threads", "2", &good, &bad]);
    assert_eq!(code, 1, "a failed item exits 1:\n{out}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "two round lines + summary:\n{out}");
    assert!(
        lines[0].contains(r#""round":1,"requests":2,"ok":1,"errors":1"#),
        "{}",
        lines[0]
    );
    // Round 2 is answered entirely from cache: 2 hits, 0 misses.
    assert!(lines[1].contains(r#""hits":2,"misses":0"#), "{}", lines[1]);
    assert!(lines[2].contains(r#""speedup":"#), "{}", lines[2]);
}

/// The ISSUE acceptance criterion: a warm-cache `dahliac batch` run over
/// the MachSuite kernel suite is at least 5× faster than the cold run,
/// and the server reports cache hit/miss counts.
#[test]
fn batch_kernels_warm_round_is_5x_faster() {
    let (out, err, code) = run_code(&["batch", "--kernels", "--repeat", "2"]);
    assert_eq!(code, 0, "kernel suite must compile clean\n{err}\n{out}");
    let lines: Vec<&str> = out.lines().collect();
    let summary = dahlia_server::json::Json::parse(lines.last().unwrap()).expect("summary JSON");
    let batch = summary.get("batch").expect("batch envelope");
    let cold = batch
        .get("cold_wall_us")
        .and_then(|v| v.as_u64())
        .expect("cold_wall_us");
    let warm = batch
        .get("warm_wall_us")
        .and_then(|v| v.as_u64())
        .expect("warm_wall_us");
    assert!(
        cold >= 5 * warm.max(1),
        "warm round not ≥5× faster: cold {cold} µs vs warm {warm} µs\n{out}"
    );
    // Hit/miss accounting: the warm round is all hits, and the stats
    // object reports both counters.
    let stats = batch.get("stats").expect("stats");
    let hits = stats.get("hits").and_then(|v| v.as_u64()).expect("hits");
    let misses = stats
        .get("misses")
        .and_then(|v| v.as_u64())
        .expect("misses");
    assert!(
        hits >= 16,
        "second round must hit for every kernel, hits = {hits}"
    );
    assert!(
        misses >= 16 * 4,
        "cold round computes 4 stages per kernel, misses = {misses}"
    );
    assert!(
        lines[1].contains(r#""misses":0"#),
        "warm round recomputed something: {}",
        lines[1]
    );
}

/// The ISSUE 2 acceptance criterion: `dahliac batch` against a warm
/// on-disk cache in a *fresh process* skips all pipeline stages,
/// verified by the per-stage execution counters.
#[test]
fn warm_disk_cache_survives_process_restart() {
    let dir = std::env::temp_dir().join(format!("dahliac-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--cache-dir", &dir_s]);
    assert_eq!(code, 0, "cold process failed: {err}");

    // A brand-new process over the same directory.
    let (out, err, code) =
        run_code(&["batch", "--kernels", "--repeat", "1", "--cache-dir", &dir_s]);
    assert_eq!(code, 0, "warm process failed: {err}");
    let lines: Vec<&str> = out.lines().collect();
    let summary = dahlia_server::json::Json::parse(lines.last().unwrap()).expect("summary JSON");
    let stats = summary
        .get("batch")
        .and_then(|b| b.get("stats"))
        .expect("stats");
    let ex = stats.get("executions").expect("executions");
    for stage in ["parse", "check", "desugar", "lower", "cpp", "est"] {
        assert_eq!(
            ex.get(stage).and_then(|v| v.as_u64()),
            Some(0),
            "fresh process ran stage `{stage}`: {out}"
        );
    }
    let disk_hits = stats
        .get("disk")
        .and_then(|d| d.get("hits"))
        .and_then(|v| v.as_u64())
        .expect("disk hits");
    assert!(disk_hits >= 16, "warm process served off disk: {disk_hits}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end socket transport: a background `serve --listen` process
/// driven by `batch --connect`, shut down gracefully over the protocol.
#[test]
fn batch_connect_drives_a_listening_server() {
    let (mut server, addr) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );

    let (out, err, code) = run_code(&[
        "batch",
        "--kernels",
        "--repeat",
        "2",
        "--connect",
        &addr,
        "--shutdown",
    ]);
    assert_eq!(code, 0, "remote batch failed: {err}\n{out}");
    let lines: Vec<&str> = out.lines().collect();
    assert!(
        lines[1].contains(r#""misses":0"#),
        "warm TCP round recomputed something: {}",
        lines[1]
    );
    assert!(lines.last().unwrap().contains(r#""speedup":"#), "{out}");

    // --shutdown stopped the server gracefully: it exits 0 on its own.
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exit: {status:?}");
}

/// Spawn a `dahliac` child with piped stderr, scanning its stderr lines
/// until `pattern` appears; returns the child, the captured value after
/// `pattern` on that line, and a drain thread keeping the pipe empty.
fn spawn_scan_all(args: &[&str], patterns: &[&str]) -> (std::process::Child, Vec<String>) {
    use std::io::BufRead as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_dahliac"))
        .args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dahliac spawns");
    let mut reader = std::io::BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut captured: Vec<Option<String>> = vec![None; patterns.len()];
    for _ in 0..64 {
        if captured.iter().all(Option::is_some) {
            break;
        }
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        for (slot, pattern) in captured.iter_mut().zip(patterns) {
            if slot.is_none() {
                if let Some((_, rest)) = line.split_once(pattern) {
                    *slot = Some(rest.split_whitespace().next().unwrap().to_string());
                }
            }
        }
    }
    let captured: Vec<String> = captured
        .into_iter()
        .zip(patterns)
        .map(|(c, p)| c.unwrap_or_else(|| panic!("child never printed `{p}`")))
        .collect();
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    (child, captured)
}

fn spawn_scan(args: &[&str], pattern: &str) -> (std::process::Child, String) {
    let (child, mut captured) = spawn_scan_all(args, &[pattern]);
    (child, captured.remove(0))
}

/// Satellite: network failures exit 5, distinct from local usage/io (2).
#[test]
fn network_errors_exit_5() {
    // A "server" that accepts and immediately hangs up: the client
    // connects fine, then every read sees EOF mid-protocol.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            drop(conn);
        }
    });
    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &addr]);
    assert_eq!(code, 5, "mid-protocol hangup is a network error: {err}");
    assert!(
        err.contains("network error") || err.contains("closed the connection"),
        "{err}"
    );
}

/// Tentpole end-to-end: a gateway over two forked workers serves the
/// MachSuite batch, pins sources across rounds (warm round recomputes
/// nothing), exposes /metrics, and winds down cleanly — workers
/// included — from one shutdown op.
#[test]
fn gateway_spawns_workers_and_serves_batches() {
    use std::io::{Read as _, Write as _};
    // Ephemeral ports everywhere: the gateway announces both addresses
    // on stderr ("metrics on …" precedes "gateway: listening on …").
    let (mut gateway, captured) = spawn_scan_all(
        &[
            "gateway",
            "--listen",
            "127.0.0.1:0",
            "--spawn-workers",
            "2",
            "--metrics",
            "127.0.0.1:0",
        ],
        &["metrics on ", "gateway: listening on "],
    );
    let (metrics, addr) = (captured[0].clone(), captured[1].clone());

    // Cold batch: everything compiles, split across the two workers.
    let (out, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &addr]);
    assert_eq!(code, 0, "cold batch failed: {err}\n{out}");
    assert!(out.contains(r#""ok":16"#), "{out}");

    // Warm batch through the same gateway: rendezvous pins every source
    // to the shard that already compiled it — zero misses anywhere.
    let (out, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &addr]);
    assert_eq!(code, 0, "warm batch failed: {err}\n{out}");
    let round = out.lines().next().unwrap();
    assert!(
        round.contains(r#""misses":0"#),
        "warm round recomputed: {round}"
    );
    let summary = dahlia_server::json::Json::parse(out.lines().last().unwrap()).unwrap();
    let stats = summary.get("batch").and_then(|b| b.get("stats")).unwrap();
    let shards = stats
        .get("gateway")
        .and_then(|g| g.get("shards"))
        .expect("per-shard stats in the aggregate");
    let dahlia_server::json::Json::Arr(shards) = shards else {
        panic!("shards is an array")
    };
    assert_eq!(shards.len(), 2);
    for s in shards {
        assert_eq!(s.get("alive").and_then(|v| v.as_bool()), Some(true));
        assert!(
            s.get("routed").and_then(|v| v.as_u64()).unwrap() > 0,
            "both shards participated: {out}"
        );
        assert_eq!(s.get("failed").and_then(|v| v.as_u64()), Some(0));
    }

    // Satellite: GET /metrics serves the same aggregated stats object.
    let mut http = std::net::TcpStream::connect(&metrics).expect("metrics reachable");
    write!(http, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut response = String::new();
    http.read_to_string(&mut response).expect("metrics body");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).expect("body").trim();
    let v = dahlia_server::json::Json::parse(body).expect("metrics json");
    assert!(v.get("gateway").is_some(), "{body}");

    // Shutdown-only batch stops the gateway, which stops its workers.
    let (_, err, code) = run_code(&["batch", "--connect", &addr, "--shutdown"]);
    assert_eq!(code, 0, "shutdown-only batch: {err}");
    let status = gateway.wait().expect("gateway exits");
    assert!(status.success(), "gateway exit: {status:?}");
}

/// Acceptance: hard-killing a shard process mid-run loses no requests —
/// the batch after the kill still answers everything, exit 0.
#[test]
fn gateway_survives_a_shard_hard_kill() {
    let (mut shard_a, addr_a) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut shard_b, addr_b) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut gateway, gw_addr) = spawn_scan(
        &[
            "gateway",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            &format!("{addr_a},{addr_b}"),
        ],
        "gateway: listening on ",
    );

    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "cold cluster batch: {err}");

    // SIGKILL shard A: no graceful drain, no goodbye. The gateway must
    // re-route its keys to shard B and answer everything.
    shard_a.kill().expect("kill shard A");
    shard_a.wait().expect("reap shard A");
    let (out, err, code) =
        run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "post-kill batch failed: {err}\n{out}");
    assert!(out.contains(r#""ok":16"#), "all requests answered: {out}");

    let (_, _, code) = run_code(&["batch", "--connect", &gw_addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(gateway.wait().expect("gateway exits").success());
    let (_, _, code) = run_code(&["batch", "--connect", &addr_b, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(shard_b.wait().expect("shard B exits").success());
}

/// Fetch a host's stats object over the wire protocol.
fn fetch_stats(addr: &str) -> dahlia_server::json::Json {
    let mut c = dahlia_server::Client::connect_retry(addr, 50).expect("connect for stats");
    c.send_line(r#"{"op":"stats"}"#).expect("send stats");
    let line = c.recv_line().expect("read stats").expect("stats line");
    dahlia_server::json::Json::parse(&line)
        .expect("stats json")
        .get("stats")
        .cloned()
        .expect("stats payload")
}

/// Sum the per-stage `executions` object in a stats payload.
fn total_executions(stats: &dahlia_server::json::Json) -> u64 {
    match stats.get("executions") {
        Some(dahlia_server::json::Json::Obj(fields)) => {
            fields.iter().filter_map(|(_, v)| v.as_u64()).sum()
        }
        _ => 0,
    }
}

/// Warm-failover acceptance: with `--replication 2`, SIGKILLing a
/// shard loses zero requests AND recomputes zero pipeline stages —
/// the survivor already holds every displaced artifact.
#[test]
fn replicated_gateway_fails_over_warm_after_sigkill() {
    let (mut shard_a, addr_a) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut shard_b, addr_b) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut gateway, gw_addr) = spawn_scan(
        &[
            "gateway",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            &format!("{addr_a},{addr_b}"),
            "--replication",
            "2",
        ],
        "gateway: listening on ",
    );

    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "cold cluster batch: {err}");

    // Wait for the replication fan-out to drain: with R = 2 over two
    // shards every kernel reaches both, so the aggregate request count
    // hits 2 × 16.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let baseline = loop {
        let stats = fetch_stats(&gw_addr);
        if stats.get("requests").and_then(|v| v.as_u64()).unwrap_or(0) >= 32 {
            break stats;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication fan-out never completed: {}",
            stats.emit()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let cold_executions = total_executions(&baseline);
    assert!(cold_executions > 0, "cold batch computed somewhere");

    // SIGKILL shard A: no drain, no goodbye. Everything it owned is
    // already warm on shard B.
    shard_a.kill().expect("kill shard A");
    shard_a.wait().expect("reap shard A");
    let (out, err, code) =
        run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "post-kill batch failed: {err}\n{out}");
    assert!(out.contains(r#""ok":16"#), "all requests answered: {out}");
    let round = out.lines().next().unwrap();
    assert!(
        round.contains(r#""misses":0"#),
        "failover recomputed a stage: {round}"
    );
    let after = fetch_stats(&gw_addr);
    assert_eq!(
        total_executions(&after),
        cold_executions,
        "warm failover must not execute any pipeline stage: {}",
        after.emit()
    );
    // The dead shard still contributes its final snapshot, and the
    // gateway reports the failover in its own section.
    let gw_section = after.get("gateway").expect("gateway section");
    assert_eq!(
        gw_section.get("replication").and_then(|v| v.as_u64()),
        Some(2)
    );
    assert_eq!(
        gw_section.get("shards_live").and_then(|v| v.as_u64()),
        Some(1)
    );

    let (_, _, code) = run_code(&["batch", "--connect", &gw_addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(gateway.wait().expect("gateway exits").success());
    let (_, _, code) = run_code(&["batch", "--connect", &addr_b, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(shard_b.wait().expect("shard B exits").success());
}

/// Drain acceptance: `dahliac gateway-admin drain` during a batch
/// fails zero requests, the stats show migrated keys, and `undrain`
/// puts the shard back.
#[test]
fn gateway_admin_drains_a_shard_during_a_batch() {
    let (shard_a, addr_a) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (shard_b, addr_b) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut gateway, gw_addr) = spawn_scan(
        &[
            "gateway",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            &format!("{addr_a},{addr_b}"),
        ],
        "gateway: listening on ",
    );

    // Cold batch pins every kernel to its rendezvous owner.
    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "cold cluster batch: {err}");

    // Second batch racing the drain: fire the batch, then drain shard
    // A while it runs.
    let batch = {
        let gw_addr = gw_addr.clone();
        std::thread::spawn(move || {
            run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr])
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(10));
    let (out, err, code) = run_code(&["gateway-admin", "drain", "--connect", &gw_addr, &addr_a]);
    assert_eq!(code, 0, "drain refused: {err}\n{out}");
    let ack = dahlia_server::json::Json::parse(out.trim()).expect("drain ack json");
    assert_eq!(ack.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(ack.get("op").and_then(|v| v.as_str()), Some("drain"));
    let (out, err, code) = batch.join().expect("batch thread");
    assert_eq!(code, 0, "batch raced by drain failed: {err}\n{out}");
    assert!(out.contains(r#""ok":16"#), "zero failed requests: {out}");

    // The migration walk shows up in the stats: keys moved off A, and
    // the surviving shard goes fully warm (the walk is async, so wait
    // for the destination — not just the first migrated key — before
    // asserting a warm post-drain batch).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let migrated = loop {
        let stats = fetch_stats(&gw_addr);
        let shards = stats
            .get("gateway")
            .and_then(|g| g.get("shards"))
            .cloned()
            .expect("per-shard stats");
        let dahlia_server::json::Json::Arr(shards) = shards else {
            panic!("shards is an array")
        };
        let a = shards
            .iter()
            .find(|s| s.get("addr").and_then(|v| v.as_str()) == Some(addr_a.as_str()))
            .expect("shard A entry");
        assert_eq!(a.get("draining").and_then(|v| v.as_bool()), Some(true));
        let b = shards
            .iter()
            .find(|s| s.get("addr").and_then(|v| v.as_str()) == Some(addr_b.as_str()))
            .expect("shard B entry");
        let drained = a.get("drained_keys").and_then(|v| v.as_u64()).unwrap_or(0);
        let warm_b = b.get("warm_keys").and_then(|v| v.as_u64()).unwrap_or(0);
        if drained > 0 && warm_b >= 16 {
            break drained;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "migration never settled: {}",
            stats.emit()
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    assert!(migrated > 0);

    // A post-drain batch routes past A and stays fully warm.
    let (out, err, code) =
        run_code(&["batch", "--kernels", "--repeat", "1", "--connect", &gw_addr]);
    assert_eq!(code, 0, "post-drain batch: {err}");
    assert!(
        out.lines().next().unwrap().contains(r#""misses":0"#),
        "post-drain round recomputed: {out}"
    );

    // Undrain: the shard rejoins the rotation.
    let (out, err, code) = run_code(&["gateway-admin", "undrain", "--connect", &gw_addr, &addr_a]);
    assert_eq!(code, 0, "undrain refused: {err}\n{out}");
    let ack = dahlia_server::json::Json::parse(out.trim()).expect("undrain ack json");
    assert_eq!(ack.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(ack.get("joined").and_then(|v| v.as_bool()), Some(false));

    let (_, _, code) = run_code(&["batch", "--connect", &gw_addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(gateway.wait().expect("gateway exits").success());
    for (mut child, addr) in [(shard_a, addr_a), (shard_b, addr_b)] {
        let (_, _, code) = run_code(&["batch", "--connect", &addr, "--shutdown"]);
        assert_eq!(code, 0);
        assert!(child.wait().expect("shard exits").success());
    }
}

/// gateway-admin rejects bad usage locally and surfaces gateway
/// refusals as exit 1 (vs 5 for an unreachable gateway).
#[test]
fn gateway_admin_usage_and_refusals() {
    let (_, err, code) = run_code(&["gateway-admin", "frobnicate", "--connect", "x", "y"]);
    assert_eq!(code, 2);
    assert!(err.contains("drain"), "{err}");

    let (_, err, code) = run_code(&["gateway-admin", "drain", "x"]);
    assert_eq!(code, 2);
    assert!(err.contains("--connect"), "{err}");

    let (_, err, code) = run_code(&[
        "gateway-admin",
        "drain",
        "--connect",
        "x",
        "--weight",
        "2",
        "y",
    ]);
    assert_eq!(code, 2);
    assert!(err.contains("--weight"), "{err}");

    // A plain server refuses admin ops over the protocol: exit 1, and
    // the refusal names the op.
    let (mut server, addr) = spawn_scan(&["serve", "--listen", "127.0.0.1:0"], "listening on ");
    let (out, _, code) = run_code(&["gateway-admin", "drain", "--connect", &addr, "10.0.0.9:1"]);
    assert_eq!(code, 1, "unsupported op is a refusal, not a crash: {out}");
    assert!(out.contains("protocol/unsupported-op"), "{out}");
    let (_, _, code) = run_code(&["batch", "--connect", &addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(server.wait().expect("server exits").success());
}

/// Satellite: `--cache-gc-max-bytes` keeps a serve cache directory
/// bounded and reports what it pruned.
#[test]
fn serve_cache_gc_bounds_the_directory() {
    let dir = std::env::temp_dir().join(format!("dahliac-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    // Fill the cache unbounded.
    let (_, err, code) = run_code(&["batch", "--kernels", "--repeat", "1", "--cache-dir", &dir_s]);
    assert_eq!(code, 0, "{err}");
    let full: u64 = dir_size(&dir);
    assert!(full > 4096, "cache has substance: {full} bytes");

    // A fresh process with a tight budget prunes at startup and says so.
    let (out, err, code) = run_code(&[
        "batch",
        "--kernels",
        "--repeat",
        "1",
        "--cache-dir",
        &dir_s,
        "--cache-gc-max-bytes",
        "2048",
    ]);
    assert_eq!(code, 0, "{err}");
    let summary = dahlia_server::json::Json::parse(out.lines().last().unwrap()).unwrap();
    let disk = summary
        .get("batch")
        .and_then(|b| b.get("stats"))
        .and_then(|s| s.get("disk"))
        .expect("disk stats");
    assert!(
        disk.get("pruned_bytes").and_then(|v| v.as_u64()).unwrap() > 0,
        "GC reported nothing pruned: {out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn dir_size(p: &std::path::Path) -> u64 {
    let mut total = 0;
    if let Ok(rd) = std::fs::read_dir(p) {
        for e in rd.flatten() {
            let path = e.path();
            if path.is_dir() {
                total += dir_size(&path);
            } else {
                total += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Tentpole acceptance: SIGKILL a gateway mid-sweep, restart it over
/// the same `--telemetry-dir`, and `dahliac sweep --resume` finishes
/// the space without recomputing a single point — cluster-wide stage
/// executions match an uninterrupted reference run exactly, and the
/// final Pareto front is byte-identical. Content-addressed shard
/// caches plus the journal's idempotent replay make both invariants
/// deterministic rather than probabilistic.
#[test]
fn sweep_resumes_after_sigkill_with_zero_recompute() {
    let template = "let A: float[8 bank ${b}];\nfor (let i = 0..8) unroll ${u} { A[i] := 1.0; }\n";
    let tmpl_path = write_tmp("dahliac_sweep_resume_tmpl.fuse", template);
    let sweep_cli = |gw: &str, extra: &[&str]| {
        let mut args = vec![
            "sweep",
            "--connect",
            gw,
            "--template",
            &tmpl_path,
            "--param",
            "b=1,2,4",
            "--param",
            "u=1,2,4",
            "--name",
            "resume-acceptance",
        ];
        args.extend_from_slice(extra);
        run_code(&args)
    };
    let front_of = |final_line: &str| {
        dahlia_server::json::Json::parse(final_line)
            .expect("final sweep line json")
            .get("sweep")
            .and_then(|s| s.get("front"))
            .expect("final line carries the front")
            .emit()
    };

    // Reference: the same sweep, uninterrupted, on its own cluster.
    let (mut ref_a, ref_addr_a) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut ref_b, ref_addr_b) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut ref_gw, ref_gw_addr) = spawn_scan(
        &[
            "gateway",
            "--listen",
            "127.0.0.1:0",
            "--shards",
            &format!("{ref_addr_a},{ref_addr_b}"),
        ],
        "gateway: listening on ",
    );
    let (out, err, code) = sweep_cli(&ref_gw_addr, &[]);
    assert_eq!(code, 0, "reference sweep: {err}\n{out}");
    let reference_front = front_of(out.lines().last().expect("reference summary line"));
    let reference_execs =
        total_executions(&fetch_stats(&ref_addr_a)) + total_executions(&fetch_stats(&ref_addr_b));
    assert!(reference_execs > 0, "reference sweep computed somewhere");
    let (_, _, code) = run_code(&["batch", "--connect", &ref_gw_addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(ref_gw.wait().expect("ref gateway exits").success());
    for (child, addr) in [(&mut ref_a, &ref_addr_a), (&mut ref_b, &ref_addr_b)] {
        let (_, _, code) = run_code(&["batch", "--connect", addr, "--shutdown"]);
        assert_eq!(code, 0);
        assert!(child.wait().expect("ref shard exits").success());
    }

    // The cluster under test: shards outlive the gateway, the journal
    // lives under --telemetry-dir.
    let dir = std::env::temp_dir().join(format!("dahliac_sweep_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();
    let (mut shard_a, addr_a) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let (mut shard_b, addr_b) = spawn_scan(
        &["serve", "--listen", "127.0.0.1:0", "--threads", "2"],
        "listening on ",
    );
    let shards = format!("{addr_a},{addr_b}");
    let gw_args = [
        "gateway",
        "--listen",
        "127.0.0.1:0",
        "--shards",
        &shards,
        "--telemetry-dir",
        &dir_s,
    ];
    let (mut gw1, gw1_addr) = spawn_scan(&gw_args, "gateway: listening on ");

    // Start the sweep over the wire with per-point updates, wait for
    // at least one journaled point, then SIGKILL the gateway — no
    // drain, no goodbye, mid-scatter.
    let mut probe = dahlia_server::Client::connect_retry(&gw1_addr, 50).expect("connect for sweep");
    probe
        .send_line(
            r#"{"op":"sweep","id":"phase1","name":"resume-acceptance","template":"let A: float[8 bank ${b}];\nfor (let i = 0..8) unroll ${u} { A[i] := 1.0; }\n","params":{"b":[1,2,4],"u":[1,2,4]},"stage":"est","stride":1,"resume":false,"prune":false,"update_every":1}"#,
        )
        .expect("send sweep op");
    for _ in 0..2 {
        let line = probe
            .recv_line()
            .expect("read sweep progress")
            .expect("sweep progress line");
        let v = dahlia_server::json::Json::parse(&line).expect("progress json");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true), "{line}");
        if v.get("done").and_then(|b| b.as_bool()) == Some(true) {
            break; // tiny space: the whole sweep may beat the kill
        }
    }
    gw1.kill().expect("kill gateway mid-sweep");
    gw1.wait().expect("reap gateway");
    drop(probe);

    // Restart over the same journal; --resume replays it and finishes
    // only what is missing.
    let (mut gw2, gw2_addr) = spawn_scan(&gw_args, "gateway: listening on ");
    let (out, err, code) = sweep_cli(&gw2_addr, &["--resume"]);
    assert_eq!(code, 0, "resumed sweep: {err}\n{out}");
    let final_line = out.lines().last().expect("resumed summary line");
    let v = dahlia_server::json::Json::parse(final_line).expect("summary json");
    let sweep = v.get("sweep").expect("sweep section");
    let skipped = sweep
        .get("points_skipped")
        .and_then(|n| n.as_u64())
        .unwrap_or(0);
    let done = sweep
        .get("points_done")
        .and_then(|n| n.as_u64())
        .unwrap_or(0);
    assert!(skipped >= 1, "resume replayed nothing: {final_line}");
    assert_eq!(skipped + done, 9, "every point accounted for: {final_line}");
    assert_eq!(
        front_of(final_line),
        reference_front,
        "resumed front must be byte-identical to the uninterrupted run"
    );
    let resumed_execs =
        total_executions(&fetch_stats(&addr_a)) + total_executions(&fetch_stats(&addr_b));
    assert_eq!(
        resumed_execs, reference_execs,
        "kill + resume must not recompute a single point"
    );

    let (_, _, code) = run_code(&["batch", "--connect", &gw2_addr, "--shutdown"]);
    assert_eq!(code, 0);
    assert!(gw2.wait().expect("gateway exits").success());
    for (child, addr) in [(&mut shard_a, &addr_a), (&mut shard_b, &addr_b)] {
        let (_, _, code) = run_code(&["batch", "--connect", addr, "--shutdown"]);
        assert_eq!(code, 0);
        assert!(child.wait().expect("shard exits").success());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
