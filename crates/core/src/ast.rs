//! Abstract syntax for the Dahlia surface language.
//!
//! The grammar follows §3 of the paper: memories with banking and port
//! annotations, ordered (`---`) and unordered (`;`) composition, `for`
//! loops with `unroll` and `combine` blocks, and the four memory views
//! (`shrink`, `suffix`, `shift`, `split`).

use std::fmt;
use std::sync::Arc;

use crate::intern::Symbol;
use crate::span::Span;

/// An identifier (variable, memory, view, or function name): an interned
/// [`Symbol`] — `Copy`, 4 bytes, integer equality/hashing. See
/// [`crate::intern`].
pub type Id = Symbol;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Gt,
    Lte,
    Gte,
}

impl BinOp {
    /// `true` for operators returning `bool` regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Gt | BinOp::Lte | BinOp::Gte
        )
    }

    /// `true` for `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Lte => "<=",
            BinOp::Gte => ">=",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation `!`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

/// The built-in reducers usable in `combine` blocks (and as sugar for
/// `x := x op e` elsewhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reducer {
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl Reducer {
    /// The underlying binary operator the reducer folds with.
    pub fn op(self) -> BinOp {
        match self {
            Reducer::AddAssign => BinOp::Add,
            Reducer::SubAssign => BinOp::Sub,
            Reducer::MulAssign => BinOp::Mul,
            Reducer::DivAssign => BinOp::Div,
        }
    }
}

impl fmt::Display for Reducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reducer::AddAssign => "+=",
            Reducer::SubAssign => "-=",
            Reducer::MulAssign => "*=",
            Reducer::DivAssign => "/=",
        };
        f.write_str(s)
    }
}

/// Scalar and memory types.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `bool`
    Bool,
    /// `float`
    Float,
    /// `double`
    Double,
    /// `bit<N>` — signed fixed-width integer.
    Bit(u32),
    /// `ubit<N>` — unsigned fixed-width integer.
    UBit(u32),
    /// Index type of a loop iterator: statically known interval
    /// `idx{lo..hi}` of the unrolled offsets, plus the iterator's full
    /// dynamic range. Internal — produced by the checker, not writable in
    /// source.
    Idx {
        /// Inclusive lower bound of the unroll offsets (always 0 today).
        lo: i64,
        /// Exclusive upper bound; `hi - lo` is the unroll factor.
        hi: i64,
    },
    /// A memory (or view) type.
    Mem(MemType),
}

impl Type {
    /// Is this a scalar (non-memory, non-index) type?
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Bool | Type::Float | Type::Double | Type::Bit(_) | Type::UBit(_)
        )
    }

    /// Is this a numeric scalar?
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Type::Float | Type::Double | Type::Bit(_) | Type::UBit(_) | Type::Idx { .. }
        )
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Bit(n) => write!(f, "bit<{n}>"),
            Type::UBit(n) => write!(f, "ubit<{n}>"),
            Type::Idx { lo, hi } => write!(f, "idx{{{lo}..{hi}}}"),
            Type::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// One dimension of a memory: its logical size and cyclic banking factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim {
    /// Number of logical elements.
    pub size: u64,
    /// Number of banks the dimension is striped across (cyclic,
    /// round-robin). Must divide `size`.
    pub banks: u64,
}

impl Dim {
    /// An unbanked dimension.
    pub fn flat(size: u64) -> Self {
        Dim { size, banks: 1 }
    }

    /// A banked dimension.
    pub fn banked(size: u64, banks: u64) -> Self {
        Dim { size, banks }
    }
}

/// The type of a memory: element type, read/write ports per bank, and one
/// [`Dim`] per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct MemType {
    /// Element type (must be scalar). `Arc` so cloning a memory type —
    /// which the checker and desugarer do per view and per access chain —
    /// never copies the element.
    pub elem: Arc<Type>,
    /// Read/write ports per bank (`float{2}[...]`); 1 if unannotated.
    pub ports: u32,
    /// Dimensions, outermost first.
    pub dims: Vec<Dim>,
}

impl MemType {
    /// Total number of banks (product over dimensions).
    pub fn total_banks(&self) -> u64 {
        self.dims.iter().map(|d| d.banks).product()
    }

    /// Total number of elements (product over dimensions).
    pub fn total_size(&self) -> u64 {
        self.dims.iter().map(|d| d.size).product()
    }
}

impl fmt::Display for MemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.elem)?;
        if self.ports != 1 {
            write!(f, "{{{}}}", self.ports)?;
        }
        for d in &self.dims {
            if d.banks != 1 {
                write!(f, "[{} bank {}]", d.size, d.banks)?;
            } else {
                write!(f, "[{}]", d.size)?;
            }
        }
        Ok(())
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    LitInt { val: i64, span: Span },
    /// Floating-point literal.
    LitFloat { val: f64, span: Span },
    /// Boolean literal.
    LitBool { val: bool, span: Span },
    /// Variable reference.
    Var { name: Id, span: Span },
    /// Binary operation.
    Bin {
        op: BinOp,
        lhs: Arc<Expr>,
        rhs: Arc<Expr>,
        span: Span,
    },
    /// Unary operation.
    Un {
        op: UnOp,
        arg: Arc<Expr>,
        span: Span,
    },
    /// Memory read: logical `A[i][j]` or physical `A{b}[i]`.
    Access {
        /// Memory or view name.
        mem: Id,
        /// `Some(b)` for a physical access `A{b}[i]`.
        phys_bank: Option<Arc<Expr>>,
        /// One index per dimension.
        idxs: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function call in expression position (pure helper functions).
    Call {
        func: Id,
        args: Vec<Expr>,
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::LitInt { span, .. }
            | Expr::LitFloat { span, .. }
            | Expr::LitBool { span, .. }
            | Expr::Var { span, .. }
            | Expr::Bin { span, .. }
            | Expr::Un { span, .. }
            | Expr::Access { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }

    /// Convenience constructor for a synthesized variable reference.
    pub fn var(name: impl Into<Id>) -> Expr {
        Expr::Var {
            name: name.into(),
            span: Span::synthetic(),
        }
    }

    /// Convenience constructor for a synthesized integer literal.
    pub fn int(val: i64) -> Expr {
        Expr::LitInt {
            val,
            span: Span::synthetic(),
        }
    }

    /// Does this expression syntactically mention `name`?
    pub fn mentions(&self, name: impl Into<Id>) -> bool {
        self.mentions_sym(name.into())
    }

    fn mentions_sym(&self, name: Id) -> bool {
        match self {
            Expr::LitInt { .. } | Expr::LitFloat { .. } | Expr::LitBool { .. } => false,
            Expr::Var { name: n, .. } => *n == name,
            Expr::Bin { lhs, rhs, .. } => lhs.mentions_sym(name) || rhs.mentions_sym(name),
            Expr::Un { arg, .. } => arg.mentions_sym(name),
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                ..
            } => {
                *mem == name
                    || phys_bank.as_ref().is_some_and(|b| b.mentions_sym(name))
                    || idxs.iter().any(|i| i.mentions_sym(name))
            }
            Expr::Call { args, .. } => args.iter().any(|a| a.mentions_sym(name)),
        }
    }
}

/// The four memory views of §3.6.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewKind {
    /// `shrink A[by k]…` — divide each listed dimension's banking by `k`.
    Shrink {
        /// One integer factor per dimension.
        factors: Vec<u64>,
    },
    /// `suffix A[by k*e]…` — aligned suffix; each offset must be a multiple
    /// of the dimension's banking factor, written syntactically as `k * e`.
    Suffix {
        /// One offset expression per dimension (the whole `k*e` product).
        offsets: Vec<Expr>,
    },
    /// `shift A[by e]…` — suffix with unrestricted offsets; costs a full
    /// bank crossbar.
    Shift {
        /// One offset expression per dimension.
        offsets: Vec<Expr>,
    },
    /// `split A[by k]` — split a one-dimensional memory into `k` logical
    /// windows, exposing a two-dimensional view.
    Split {
        /// The split factor.
        factor: u64,
    },
}

/// Commands (statements).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Cmd {
    /// `let x = e;` or `let A: float[…];` (memory when `ty` is a `Mem`).
    Let {
        /// Bound name.
        name: Id,
        /// Optional type annotation.
        ty: Option<Type>,
        /// Optional initializer (required for scalars).
        init: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `view v = shrink A[by 2];`
    View {
        /// View name.
        name: Id,
        /// Underlying memory (or view).
        mem: Id,
        /// Which view.
        kind: ViewKind,
        /// Source location.
        span: Span,
    },
    /// `x := e;`
    Assign {
        /// Target variable.
        name: Id,
        /// Right-hand side.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// `A[i] := e;` or `A{b}[i] := e;`
    Store {
        /// Target memory or view.
        mem: Id,
        /// `Some(b)` for physical bank addressing.
        phys_bank: Option<Arc<Expr>>,
        /// One index per dimension.
        idxs: Vec<Expr>,
        /// Value to store.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// `x += e;` — reducer statement; `target_idxs` is nonempty when the
    /// target is a memory location (`prod[i][j] += v`).
    Reduce {
        /// Target variable or memory.
        target: Id,
        /// Indexes when the target is a memory location.
        target_idxs: Vec<Expr>,
        /// Which reducer.
        op: Reducer,
        /// Value folded in.
        rhs: Expr,
        /// Source location.
        span: Span,
    },
    /// Unordered composition `c1; c2; …` — the compiler may reorder and
    /// parallelize, so the checker forbids resource conflicts.
    Seq(Vec<Cmd>),
    /// Ordered composition `c1 --- c2 --- …` — each element is a logical
    /// time step; affine resources are restored between steps.
    Par(Vec<Cmd>),
    /// `if (c) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Arc<Cmd>,
        /// Optional else branch.
        else_branch: Option<Arc<Cmd>>,
        /// Source location.
        span: Span,
    },
    /// `while (c) { … }` — sequential loop, may carry dependencies.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Arc<Cmd>,
        /// Source location.
        span: Span,
    },
    /// `for (let i = lo..hi) unroll k { body } combine { c }` — doall loop.
    For {
        /// Iterator name.
        var: Id,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
        /// Unroll factor (1 = sequential).
        unroll: u64,
        /// Loop body.
        body: Arc<Cmd>,
        /// Optional reduction block.
        combine: Option<Arc<Cmd>>,
        /// Source location.
        span: Span,
    },
    /// Bare expression in statement position (e.g. a call `f(x);`).
    Expr(Expr),
    /// Empty statement.
    #[default]
    Skip,
}

impl Cmd {
    /// A best-effort span for diagnostics.
    pub fn span(&self) -> Span {
        match self {
            Cmd::Let { span, .. }
            | Cmd::View { span, .. }
            | Cmd::Assign { span, .. }
            | Cmd::Store { span, .. }
            | Cmd::Reduce { span, .. }
            | Cmd::If { span, .. }
            | Cmd::While { span, .. }
            | Cmd::For { span, .. } => *span,
            Cmd::Seq(cs) | Cmd::Par(cs) => {
                cs.first().map(Cmd::span).unwrap_or_else(Span::synthetic)
            }
            Cmd::Expr(e) => e.span(),
            Cmd::Skip => Span::synthetic(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: Id,
    /// Parameter type (scalars or memories; memories are affine).
    pub ty: Type,
}

/// A function definition: `def f(x: bit<32>, A: float[8 bank 4]) { … }`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: Id,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Cmd,
    /// Source location.
    pub span: Span,
}

/// A top-level external memory declaration: `decl A: float[512];`.
///
/// `decl` memories model the accelerator's interface buffers (the paper's
/// kernels receive their arrays from the host).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Memory name.
    pub name: Id,
    /// Memory type.
    pub ty: MemType,
    /// Source location.
    pub span: Span,
}

/// A complete Dahlia program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Interface memory declarations.
    pub decls: Vec<Decl>,
    /// Function definitions.
    pub defs: Vec<FuncDef>,
    /// The kernel body.
    pub body: Cmd,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_type_totals() {
        let m = MemType {
            elem: Arc::new(Type::Float),
            ports: 1,
            dims: vec![Dim::banked(4, 2), Dim::banked(4, 2)],
        };
        assert_eq!(m.total_banks(), 4);
        assert_eq!(m.total_size(), 16);
        assert_eq!(m.to_string(), "float[4 bank 2][4 bank 2]");
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Bit(32).to_string(), "bit<32>");
        assert_eq!(Type::Idx { lo: 0, hi: 4 }.to_string(), "idx{0..4}");
        let m = MemType {
            elem: Arc::new(Type::Float),
            ports: 2,
            dims: vec![Dim::flat(10)],
        };
        assert_eq!(Type::Mem(m).to_string(), "float{2}[10]");
    }

    #[test]
    fn expr_mentions() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Arc::new(Expr::var("i")),
            rhs: Arc::new(Expr::int(1)),
            span: Span::synthetic(),
        };
        assert!(e.mentions("i"));
        assert!(!e.mentions("j"));
    }

    #[test]
    fn reducer_ops() {
        assert_eq!(Reducer::AddAssign.op(), BinOp::Add);
        assert_eq!(Reducer::MulAssign.op(), BinOp::Mul);
        assert_eq!(Reducer::AddAssign.to_string(), "+=");
    }
}
