//! Capability tracking: the affine context Δ.
//!
//! Each memory bank carries `ports` capabilities per logical time step.
//! Reads acquire a *non-affine read capability* keyed by the syntactic
//! access (so identical reads share one port); writes acquire *use-once*
//! write capabilities. Ordered composition (`---`) restores capabilities
//! by re-checking each step from the state at entry and then taking the
//! pointwise meet of the results.
//!
//! Representation notes (this module is on the checker's hottest path):
//! banks are tracked as **flat** ids — the row-major fold of the
//! per-dimension bank coordinates — so the capability maps key on
//! `(Symbol, u64)` instead of `(String, Vec<u64>)`; and the syntactic
//! access identity is a 128-bit structural fingerprint
//! (`access_fingerprint` in the checker) instead of a printed string. Cloning
//! a `Caps` (every `---` step and `if` branch does) copies small `Copy`
//! keys, never heap strings or coordinate vectors.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::Id;
use crate::error::{TypeError, TypeErrorKind};
use crate::span::Span;

/// The set of banks an access touches in one dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankSet {
    /// Every bank of the dimension (conservative, e.g. a sequential
    /// iterator whose position in the bank stripe is unknown).
    All,
    /// A specific set of banks.
    Some(BTreeSet<u64>),
}

impl BankSet {
    /// A singleton bank set.
    pub fn one(b: u64) -> Self {
        BankSet::Some(std::iter::once(b).collect())
    }

    /// Concretize against the dimension's bank count.
    pub fn expand(&self, banks: u64) -> Vec<u64> {
        match self {
            BankSet::All => (0..banks).collect(),
            BankSet::Some(s) => s.iter().copied().collect(),
        }
    }
}

/// A fully resolved access: the *root* (non-view) memory it lands on, plus
/// the banks it touches in each of the root's dimensions.
#[derive(Debug, Clone)]
pub struct ResolvedAccess {
    /// Root memory name.
    pub root: Id,
    /// Banks touched per root dimension.
    pub bank_sets: Vec<BankSet>,
    /// Bank count per root dimension (for expansion).
    pub dim_banks: Vec<u64>,
}

impl ResolvedAccess {
    /// Expand the per-dimension bank sets into flat (row-major) bank ids.
    pub fn flat_banks(&self) -> Vec<u64> {
        let mut acc: Vec<u64> = vec![0];
        for (set, &banks) in self.bank_sets.iter().zip(&self.dim_banks) {
            let opts = set.expand(banks);
            let mut next = Vec::with_capacity(acc.len() * opts.len());
            for &prefix in &acc {
                for &b in &opts {
                    next.push(prefix * banks + b);
                }
            }
            acc = next;
        }
        acc
    }
}

/// A canonical identity for a syntactic access, used for read-capability
/// sharing: `A[i][0]` read twice in one time step is a single port use.
/// The second component is a structural fingerprint of the access shape
/// (see `access_fingerprint` in the checker).
pub type AccessKey = (Id, u128);

/// The capability state for one point in the program.
#[derive(Debug, Clone, Default)]
pub struct Caps {
    /// Remaining ports per (root memory, flat bank id).
    avail: BTreeMap<(Id, u64), u32>,
    /// Full port count per bank (the Δ* this state was built from).
    capacity: BTreeMap<(Id, u64), u32>,
    /// Read capabilities held in the current time step.
    reads: BTreeSet<AccessKey>,
    /// Write capabilities spent in the current time step.
    writes: BTreeSet<AccessKey>,
    /// Shift views that have claimed their underlying memory this step.
    claims: BTreeSet<Id>,
}

impl Caps {
    /// Register a freshly declared memory: every bank gets `ports`
    /// capabilities.
    pub fn add_memory(&mut self, name: impl Into<Id>, dim_banks: &[u64], ports: u32) {
        let name = name.into();
        let total: u64 = dim_banks.iter().product::<u64>().max(1);
        for bank in 0..total {
            self.avail.insert((name, bank), ports);
            self.capacity.insert((name, bank), ports);
        }
    }

    /// The starting state for the *next* ordered step: the original entry
    /// state, plus fresh full pools for any memory declared while checking
    /// earlier steps (declarations must remain visible downstream).
    pub fn step_entry(&self, entry: &Caps) -> Caps {
        let mut out = entry.clone();
        for (k, &cap) in &self.capacity {
            out.capacity.entry(*k).or_insert(cap);
            out.avail.entry(*k).or_insert(cap);
        }
        out
    }

    /// Remaining ports on a flat bank id (for tests/diagnostics).
    pub fn remaining(&self, name: impl Into<Id>, bank: u64) -> Option<u32> {
        self.avail.get(&(name.into(), bank)).copied()
    }

    /// Acquire a read capability.
    ///
    /// # Errors
    ///
    /// `AlreadyConsumed` when a touched bank has no ports left in this
    /// logical time step.
    pub fn acquire_read(
        &mut self,
        access: &ResolvedAccess,
        key: AccessKey,
        span: Span,
    ) -> Result<(), TypeError> {
        if self.reads.contains(&key) {
            // Identical read in the same time step: shared, free.
            return Ok(());
        }
        self.consume(access, span)?;
        self.reads.insert(key);
        Ok(())
    }

    /// Acquire a write capability.
    ///
    /// # Errors
    ///
    /// `WriteConflict` if the same location was already written this step;
    /// `AlreadyConsumed` when a touched bank has no ports left.
    pub fn acquire_write(
        &mut self,
        access: &ResolvedAccess,
        key: AccessKey,
        span: Span,
    ) -> Result<(), TypeError> {
        if self.writes.contains(&key) {
            return Err(TypeError::new(
                TypeErrorKind::WriteConflict,
                format!(
                    "location `{}[…]` is written twice in the same logical time step",
                    key.0
                ),
                span,
            ));
        }
        self.consume(access, span)?;
        self.writes.insert(key);
        Ok(())
    }

    /// A shift view's bank→bank mapping is an (unknown) permutation of the
    /// underlying memory's banks: accesses through the view are tracked on
    /// the *view's own* pool, but the first access per time step claims one
    /// port of **every** underlying bank — the crossbar may route anywhere.
    ///
    /// # Errors
    ///
    /// `AlreadyConsumed` when some underlying bank has no port left.
    pub fn acquire_claim(&mut self, root: Id, view: Id, span: Span) -> Result<(), TypeError> {
        if self.claims.contains(&view) {
            return Ok(());
        }
        let keys: Vec<_> = self
            .avail
            .range((root, 0)..=(root, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            if self.avail[k] == 0 {
                return Err(TypeError::new(
                    TypeErrorKind::AlreadyConsumed,
                    format!(
                        "bank {} of memory `{root}` has no port left for the shift view `{view}` \
                         in this logical time step",
                        k.1
                    ),
                    span,
                ));
            }
        }
        for k in keys {
            *self.avail.get_mut(&k).expect("key collected above") -= 1;
        }
        self.claims.insert(view);
        Ok(())
    }

    /// Consume the whole memory (used for memory-typed function arguments).
    ///
    /// # Errors
    ///
    /// `AlreadyConsumed` if any bank has already lost a port this step.
    pub fn consume_all(
        &mut self,
        name: impl Into<Id>,
        ports: u32,
        span: Span,
    ) -> Result<(), TypeError> {
        let name = name.into();
        let keys: Vec<_> = self
            .avail
            .range((name, 0)..=(name, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            let avail = self.avail[k];
            if avail < ports {
                return Err(TypeError::new(
                    TypeErrorKind::AlreadyConsumed,
                    format!("memory `{name}` is partially consumed and cannot be passed to a function in this time step"),
                    span,
                ));
            }
        }
        for k in keys {
            *self.avail.get_mut(&k).expect("key collected above") = 0;
        }
        Ok(())
    }

    fn consume(&mut self, access: &ResolvedAccess, span: Span) -> Result<(), TypeError> {
        let banks = access.flat_banks();
        // Check first so errors leave the state unchanged.
        for &bank in &banks {
            match self.avail.get(&(access.root, bank)) {
                None => {
                    return Err(TypeError::new(
                        TypeErrorKind::Unbound,
                        format!("memory `{}` has no bank {bank}", access.root),
                        span,
                    ))
                }
                Some(0) => {
                    return Err(TypeError::new(
                        TypeErrorKind::AlreadyConsumed,
                        format!(
                            "bank {bank} of memory `{}` was already consumed in this logical time step \
                             (insert `---` to sequence the accesses, or add ports/banks)",
                            access.root
                        ),
                        span,
                    ));
                }
                Some(_) => {}
            }
        }
        for bank in banks {
            *self
                .avail
                .get_mut(&(access.root, bank))
                .expect("checked above") -= 1;
        }
        Ok(())
    }

    /// Pointwise meet of capability states, used after ordered composition
    /// and `if` branches: the result has the resources *neither* branch
    /// consumed (`Δ2 ∩ Δ3` in the paper).
    pub fn meet(&self, other: &Caps) -> Caps {
        let mut avail = self.avail.clone();
        for (k, v) in &other.avail {
            avail
                .entry(*k)
                .and_modify(|mine| *mine = (*mine).min(*v))
                .or_insert(*v);
        }
        let mut capacity = self.capacity.clone();
        for (k, v) in &other.capacity {
            capacity.entry(*k).or_insert(*v);
        }
        Caps {
            avail,
            capacity,
            // Reads survive only if both sides hold them (conservative);
            // writes are poisoned if either side performed them.
            reads: self.reads.intersection(&other.reads).cloned().collect(),
            writes: self.writes.union(&other.writes).cloned().collect(),
            claims: self.claims.intersection(&other.claims).cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(root: &str, sets: Vec<BankSet>, banks: Vec<u64>) -> ResolvedAccess {
        ResolvedAccess {
            root: root.into(),
            bank_sets: sets,
            dim_banks: banks,
        }
    }

    fn key(root: &str, tag: u128) -> AccessKey {
        (root.into(), tag)
    }

    #[test]
    fn single_port_read_then_write_fails() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[1], 1);
        let a = acc("A", vec![BankSet::one(0)], vec![1]);
        caps.acquire_read(&a, key("A", 0), Span::synthetic())
            .unwrap();
        let err = caps
            .acquire_write(&a, key("A", 1), Span::synthetic())
            .unwrap_err();
        assert_eq!(err.kind, TypeErrorKind::AlreadyConsumed);
    }

    #[test]
    fn identical_reads_share() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[1], 1);
        let a = acc("A", vec![BankSet::one(0)], vec![1]);
        caps.acquire_read(&a, key("A", 0), Span::synthetic())
            .unwrap();
        caps.acquire_read(&a, key("A", 0), Span::synthetic())
            .unwrap();
        assert_eq!(caps.remaining("A", 0), Some(0));
    }

    #[test]
    fn two_ports_allow_read_and_write() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[1], 2);
        let a = acc("A", vec![BankSet::one(0)], vec![1]);
        caps.acquire_read(&a, key("A", 0), Span::synthetic())
            .unwrap();
        caps.acquire_write(&a, key("A", 1), Span::synthetic())
            .unwrap();
        assert_eq!(caps.remaining("A", 0), Some(0));
    }

    #[test]
    fn distinct_banks_are_independent() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[2], 1);
        let a0 = acc("A", vec![BankSet::one(0)], vec![2]);
        let a1 = acc("A", vec![BankSet::one(1)], vec![2]);
        caps.acquire_write(&a0, key("A", 10), Span::synthetic())
            .unwrap();
        caps.acquire_write(&a1, key("A", 11), Span::synthetic())
            .unwrap();
    }

    #[test]
    fn double_write_same_location_rejected_even_with_ports() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[1], 4);
        let a = acc("A", vec![BankSet::one(0)], vec![1]);
        caps.acquire_write(&a, key("A", 0), Span::synthetic())
            .unwrap();
        let err = caps
            .acquire_write(&a, key("A", 0), Span::synthetic())
            .unwrap_err();
        assert_eq!(err.kind, TypeErrorKind::WriteConflict);
    }

    #[test]
    fn meet_takes_min_availability() {
        let mut base = Caps::default();
        base.add_memory("A", &[2], 1);
        let mut left = base.clone();
        let a0 = acc("A", vec![BankSet::one(0)], vec![2]);
        left.acquire_read(&a0, key("A", 0), Span::synthetic())
            .unwrap();
        let met = left.meet(&base);
        assert_eq!(met.remaining("A", 0), Some(0));
        assert_eq!(met.remaining("A", 1), Some(1));
    }

    #[test]
    fn flat_banks_are_row_major_products() {
        let a = acc("A", vec![BankSet::All, BankSet::one(1)], vec![2, 2]);
        // (0,1) → 0·2+1 = 1, (1,1) → 1·2+1 = 3.
        assert_eq!(a.flat_banks(), vec![1, 3]);
        let b = acc("B", vec![BankSet::All], vec![3]);
        assert_eq!(b.flat_banks(), vec![0, 1, 2]);
    }

    #[test]
    fn consume_all_blocks_partial() {
        let mut caps = Caps::default();
        caps.add_memory("A", &[2], 1);
        let a0 = acc("A", vec![BankSet::one(0)], vec![2]);
        caps.acquire_read(&a0, key("A", 7), Span::synthetic())
            .unwrap();
        assert!(caps.consume_all("A", 1, Span::synthetic()).is_err());
    }

    #[test]
    fn range_scans_do_not_cross_memories() {
        // consume_all("A") must leave other memories untouched even when
        // their symbols sort adjacently.
        let mut caps = Caps::default();
        caps.add_memory("A", &[2], 1);
        caps.add_memory("B", &[2], 1);
        caps.consume_all("A", 1, Span::synthetic()).unwrap();
        assert_eq!(caps.remaining("A", 0), Some(0));
        assert_eq!(caps.remaining("B", 0), Some(1));
        assert_eq!(caps.remaining("B", 1), Some(1));
    }
}
