//! The time-sensitive affine type checker (§3–§4 of the paper).
//!
//! The checker enforces Dahlia's safety property: *the number of
//! simultaneous reads and writes to a memory bank never exceeds its port
//! count*. Memories are affine resources tracked in a capability context
//! [`caps::Caps`]; ordered composition (`---`) restores capabilities,
//! unordered composition (`;`) threads them; unrolled loops are checked in
//! lockstep (one body under an index type describes all parallel copies).

pub mod caps;

use std::rc::Rc;

use crate::ast::*;
use crate::error::{Error, TypeError, TypeErrorKind};
use crate::intern::SymbolMap;
use crate::span::Span;
use caps::{BankSet, Caps, ResolvedAccess};

/// Statistics about a successfully checked program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of physical memories declared (`let`/`decl`).
    pub memories: usize,
    /// Number of views declared.
    pub views: usize,
    /// Number of memory accesses checked.
    pub accesses: usize,
    /// Number of function definitions.
    pub functions: usize,
    /// Largest unroll factor seen.
    pub max_unroll: u64,
}

/// Type-check a Dahlia program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found, wrapped in [`Error::Type`]; the
/// error's [`TypeErrorKind`] names the rule that fired.
///
/// ```
/// use dahlia_core::{parse, typecheck, TypeErrorKind};
/// let p = parse("let A: float[10];
///                for (let i = 0..10) unroll 2 { A[i] := 1.0; }").unwrap();
/// let err = typecheck(&p).unwrap_err();
/// assert!(format!("{err}").contains("InsufficientBanks"));
/// ```
pub fn typecheck(prog: &Program) -> Result<CheckReport, Error> {
    let mut ck = Checker::new();
    ck.check_program(prog)?;
    Ok(ck.report)
}

/// What a name is bound to.
#[derive(Debug, Clone)]
enum Binding {
    /// Ordinary scalar variable.
    Scalar(Type),
    /// Loop iterator with its unroll factor and dynamic range.
    Iter { unroll: u64, lo: i64, hi: i64 },
    /// Memory or view.
    Mem(Rc<MemEntry>),
    /// A variable declared in a `for` body, visible in the `combine` block
    /// as a tuple of the unrolled copies' values.
    CombineReg(Type),
}

/// A memory (or view) visible in scope.
#[derive(Debug, Clone)]
struct MemEntry {
    ty: MemType,
    origin: Origin,
}

#[derive(Debug, Clone)]
enum Origin {
    /// A physical memory.
    Direct,
    /// A view of `parent` (which may itself be a view).
    View { parent: Id, op: ViewOp },
}

/// The bank-mapping behaviour of each view kind (§3.6).
#[derive(Debug, Clone)]
enum ViewOp {
    /// Per-dimension banking divisors.
    Shrink(Vec<u64>),
    /// Bank-preserving aligned suffix.
    Suffix,
    /// Unrestricted offset: touches every bank of the parent.
    Shift,
    /// 1-D → 2-D window split with the given factor.
    Split(u64),
}

struct Checker {
    scopes: Vec<SymbolMap<Binding>>,
    caps: Caps,
    funcs: SymbolMap<Rc<[Param]>>,
    /// Scope index of each enclosing `for` body.
    for_frames: Vec<usize>,
    /// Enclosing unrolled iterators (name, factor > 1).
    unrolled: Vec<(Id, u64)>,
    in_combine: bool,
    in_reduce_rhs: bool,
    report: CheckReport,
}

impl Checker {
    fn new() -> Self {
        Checker {
            scopes: vec![SymbolMap::default()],
            caps: Caps::default(),
            funcs: SymbolMap::default(),
            for_frames: Vec::new(),
            unrolled: Vec::new(),
            in_combine: false,
            in_reduce_rhs: false,
            report: CheckReport::default(),
        }
    }

    // ----------------------------------------------------------- scopes

    fn push_scope(&mut self) {
        self.scopes.push(SymbolMap::default());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup(&self, name: Id) -> Option<(usize, &Binding)> {
        for (i, s) in self.scopes.iter().enumerate().rev() {
            if let Some(b) = s.get(&name) {
                return Some((i, b));
            }
        }
        None
    }

    fn declare(&mut self, name: Id, b: Binding, span: Span) -> Result<(), TypeError> {
        let top = self.scopes.last_mut().expect("scope stack nonempty");
        if top.contains_key(&name) {
            return Err(TypeError::new(
                TypeErrorKind::AlreadyDefined,
                format!("`{name}` is already defined in this scope"),
                span,
            ));
        }
        top.insert(name, b);
        Ok(())
    }

    // ---------------------------------------------------------- program

    fn check_program(&mut self, prog: &Program) -> Result<(), TypeError> {
        for d in &prog.decls {
            self.declare_memory(d.name, &d.ty, d.span)?;
        }
        for f in &prog.defs {
            self.check_func(f)?;
        }
        self.check_cmd(&prog.body)
    }

    fn check_func(&mut self, f: &FuncDef) -> Result<(), TypeError> {
        // Functions are checked in isolation: fresh capability context with
        // the parameter memories fully available.
        let saved_caps = std::mem::take(&mut self.caps);
        let saved_frames = std::mem::take(&mut self.for_frames);
        let saved_unrolled = std::mem::take(&mut self.unrolled);
        self.push_scope();
        let mut result = Ok(());
        for p in &f.params {
            let r = match &p.ty {
                Type::Mem(m) => {
                    let r = self.validate_mem_type(m, f.span);
                    if r.is_ok() {
                        self.caps.add_memory(p.name, &bank_dims(m), m.ports);
                        self.declare(
                            p.name,
                            Binding::Mem(Rc::new(MemEntry {
                                ty: m.clone(),
                                origin: Origin::Direct,
                            })),
                            f.span,
                        )
                        .expect("fresh scope");
                    }
                    r
                }
                t if t.is_scalar() => self.declare(p.name, Binding::Scalar(t.clone()), f.span),
                t => Err(TypeError::new(
                    TypeErrorKind::BadCall,
                    format!("parameter `{}` has non-parameter type `{t}`", p.name),
                    f.span,
                )),
            };
            if let Err(e) = r {
                result = Err(e);
                break;
            }
        }
        if result.is_ok() {
            result = self.check_cmd(&f.body);
        }
        self.pop_scope();
        self.caps = saved_caps;
        self.for_frames = saved_frames;
        self.unrolled = saved_unrolled;
        result?;
        // Register after checking the body: recursion is rejected as an
        // unbound call.
        self.funcs.insert(f.name, f.params.as_slice().into());
        self.report.functions += 1;
        Ok(())
    }

    fn validate_mem_type(&self, m: &MemType, span: Span) -> Result<(), TypeError> {
        if !m.elem.is_scalar() {
            return Err(TypeError::new(
                TypeErrorKind::Mismatch,
                "memory element type must be scalar",
                span,
            ));
        }
        if m.ports == 0 {
            return Err(TypeError::new(
                TypeErrorKind::Mismatch,
                "memories need at least one port",
                span,
            ));
        }
        for d in &m.dims {
            if d.banks == 0 || d.size == 0 {
                return Err(TypeError::new(
                    TypeErrorKind::UnevenBanking,
                    "dimension sizes and banking factors must be positive",
                    span,
                ));
            }
            if d.size % d.banks != 0 {
                return Err(TypeError::new(
                    TypeErrorKind::UnevenBanking,
                    format!(
                        "banking factor {} must evenly divide the dimension size {}",
                        d.banks, d.size
                    ),
                    span,
                ));
            }
        }
        Ok(())
    }

    fn declare_memory(&mut self, name: Id, m: &MemType, span: Span) -> Result<(), TypeError> {
        self.validate_mem_type(m, span)?;
        self.caps.add_memory(name, &bank_dims(m), m.ports);
        self.declare(
            name,
            Binding::Mem(Rc::new(MemEntry {
                ty: m.clone(),
                origin: Origin::Direct,
            })),
            span,
        )?;
        self.report.memories += 1;
        Ok(())
    }

    // ---------------------------------------------------------- commands

    fn check_cmd(&mut self, c: &Cmd) -> Result<(), TypeError> {
        match c {
            Cmd::Skip => Ok(()),
            Cmd::Seq(cs) => {
                for c in cs {
                    self.check_cmd(c)?;
                }
                Ok(())
            }
            Cmd::Par(steps) => self.check_ordered(steps),
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => self.check_let(*name, ty, init, *span),
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => self.check_view(*name, *mem, kind, *span),
            Cmd::Assign { name, rhs, span } => self.check_assign(*name, rhs, *span),
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => {
                let rt = self.check_expr(rhs)?;
                let et = self.check_access(*mem, phys_bank.as_deref(), idxs, Mode::Write, *span)?;
                join_scalar(&et, &rt, *span)?;
                Ok(())
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => self.check_reduce(*target, target_idxs, *op, rhs, *span),
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let ct = self.check_expr(cond)?;
                if ct != Type::Bool {
                    return Err(TypeError::new(
                        TypeErrorKind::Mismatch,
                        format!("`if` condition must be bool, found `{ct}`"),
                        *span,
                    ));
                }
                let entry = self.caps.clone();
                self.push_scope();
                let r1 = self.check_cmd(then_branch);
                self.pop_scope();
                r1?;
                let after_then = std::mem::replace(&mut self.caps, entry);
                if let Some(e) = else_branch {
                    self.push_scope();
                    let r2 = self.check_cmd(e);
                    self.pop_scope();
                    r2?;
                }
                let after_else = std::mem::take(&mut self.caps);
                self.caps = after_then.meet(&after_else);
                Ok(())
            }
            Cmd::While { cond, body, span } => {
                let ct = self.check_expr(cond)?;
                if ct != Type::Bool {
                    return Err(TypeError::new(
                        TypeErrorKind::Mismatch,
                        format!("`while` condition must be bool, found `{ct}`"),
                        *span,
                    ));
                }
                self.push_scope();
                let r = self.check_cmd(body);
                self.pop_scope();
                r
            }
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => self.check_for(*var, *lo, *hi, *unroll, body, combine.as_deref(), *span),
            Cmd::Expr(Expr::Call { func, args, span }) => self.check_call(*func, args, *span),
            Cmd::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
        }
    }

    /// Ordered composition: every step is checked from the capability state
    /// at entry, and the resulting states are met (`Δ2 ∩ Δ3`).
    fn check_ordered(&mut self, steps: &[Cmd]) -> Result<(), TypeError> {
        let entry = self.caps.clone();
        let mut step_start = entry.clone();
        let mut result: Option<Caps> = None;
        for s in steps {
            self.caps = step_start.clone();
            self.check_cmd(s)?;
            let after = std::mem::take(&mut self.caps);
            // Memories declared in this step stay visible (and fresh) in
            // later steps.
            step_start = after.step_entry(&entry);
            result = Some(match result {
                None => after,
                Some(prev) => prev.meet(&after),
            });
        }
        self.caps = result.unwrap_or(entry);
        Ok(())
    }

    fn check_let(
        &mut self,
        name: Id,
        ty: &Option<Type>,
        init: &Option<Expr>,
        span: Span,
    ) -> Result<(), TypeError> {
        match (ty, init) {
            (Some(Type::Mem(m)), None) => self.declare_memory(name, m, span),
            (Some(Type::Mem(_)), Some(_)) => Err(TypeError::new(
                TypeErrorKind::Mismatch,
                "memories cannot be initialized; they model physical BRAMs",
                span,
            )),
            (_, Some(e)) => {
                let it = self.check_expr(e)?;
                if let Type::Mem(_) = it {
                    return Err(TypeError::new(
                        TypeErrorKind::MemoryCopy,
                        "cannot copy memories",
                        span,
                    ));
                }
                let final_ty = match ty {
                    Some(t) => join_scalar(t, &it, span)?,
                    // An iterator stored into a variable decays to an int.
                    None => decay(&it),
                };
                self.declare(name, Binding::Scalar(final_ty), span)
            }
            (_, None) => Err(TypeError::new(
                TypeErrorKind::Mismatch,
                format!("`let {name}` needs an initializer or a memory type"),
                span,
            )),
        }
    }

    fn check_assign(&mut self, name: Id, rhs: &Expr, span: Span) -> Result<(), TypeError> {
        let rt = self.check_expr(rhs)?;
        let (depth, binding) = self.lookup(name).ok_or_else(|| {
            TypeError::new(
                TypeErrorKind::Unbound,
                format!("unbound variable `{name}`"),
                span,
            )
        })?;
        match binding {
            Binding::Scalar(t) => {
                join_scalar(t, &rt, span)?;
                self.check_loop_dependency(name, depth, span, false)
            }
            Binding::Iter { .. } => Err(TypeError::new(
                TypeErrorKind::Mismatch,
                format!("cannot assign to loop iterator `{name}`"),
                span,
            )),
            Binding::CombineReg(_) => Err(TypeError::new(
                TypeErrorKind::BadCombine,
                format!("combine register `{name}` can only be consumed by a reducer"),
                span,
            )),
            Binding::Mem(_) => Err(TypeError::new(
                TypeErrorKind::Mismatch,
                format!("cannot assign to memory `{name}` without a subscript"),
                span,
            )),
        }
    }

    /// Writes to variables declared outside a `for` body are cross-iteration
    /// dependencies — rejected unless performed by a reducer in a `combine`
    /// block (`is_reduce`).
    fn check_loop_dependency(
        &self,
        name: Id,
        binding_depth: usize,
        span: Span,
        is_reduce: bool,
    ) -> Result<(), TypeError> {
        if let Some(&frame) = self.for_frames.last() {
            if binding_depth < frame && !(is_reduce && self.in_combine) {
                return Err(TypeError::new(
                    TypeErrorKind::LoopDependency,
                    format!(
                        "`{name}` is declared outside this `for` loop; updating it creates a \
                         cross-iteration dependency (move the update into a `combine` block \
                         or use a sequential `while` loop)"
                    ),
                    span,
                ));
            }
        }
        Ok(())
    }

    fn check_reduce(
        &mut self,
        target: Id,
        target_idxs: &[Expr],
        _op: Reducer,
        rhs: &Expr,
        span: Span,
    ) -> Result<(), TypeError> {
        if target_idxs.is_empty() {
            // Scalar reduction: `x += e` ≡ read + write of a register.
            let (depth, binding) = self.lookup(target).ok_or_else(|| {
                TypeError::new(
                    TypeErrorKind::Unbound,
                    format!("unbound variable `{target}`"),
                    span,
                )
            })?;
            let t = match binding {
                Binding::Scalar(t) => t.clone(),
                _ => {
                    return Err(TypeError::new(
                        TypeErrorKind::BadCombine,
                        format!(
                        "reducer target `{target}` must be a scalar variable or memory location"
                    ),
                        span,
                    ))
                }
            };
            self.check_loop_dependency(target, depth, span, true)?;
            let prev = std::mem::replace(&mut self.in_reduce_rhs, true);
            let rt = self.check_expr(rhs);
            self.in_reduce_rhs = prev;
            join_scalar(&t, &rt?, span)?;
            Ok(())
        } else {
            // Memory reduction `m[i] += e` desugars to
            // `let t = m[i] --- m[i] := t op e`: two ordered micro-steps.
            let entry = self.caps.clone();
            let prev = std::mem::replace(&mut self.in_reduce_rhs, true);
            let rt = self.check_expr(rhs);
            let et = self.check_access(target, None, target_idxs, Mode::Read, span);
            self.in_reduce_rhs = prev;
            let (rt, et) = (rt?, et?);
            join_scalar(&et, &rt, span)?;
            let read_state = std::mem::replace(&mut self.caps, entry);
            self.check_access(target, None, target_idxs, Mode::Write, span)?;
            let write_state = std::mem::take(&mut self.caps);
            self.caps = read_state.meet(&write_state);
            Ok(())
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_for(
        &mut self,
        var: Id,
        lo: i64,
        hi: i64,
        unroll: u64,
        body: &Cmd,
        combine: Option<&Cmd>,
        span: Span,
    ) -> Result<(), TypeError> {
        if hi <= lo {
            return Err(TypeError::new(
                TypeErrorKind::Mismatch,
                format!("empty iteration range {lo}..{hi}"),
                span,
            ));
        }
        let trips = (hi - lo) as u64;
        if !trips.is_multiple_of(unroll) {
            return Err(TypeError::new(
                TypeErrorKind::UnevenUnroll,
                format!("unroll factor {unroll} must evenly divide the trip count {trips}"),
                span,
            ));
        }
        self.report.max_unroll = self.report.max_unroll.max(unroll);

        let entry = self.caps.clone();

        // Body, in lockstep: the iterator's index type stands for all
        // parallel copies at once.
        self.push_scope();
        self.for_frames.push(self.scopes.len() - 1);
        self.declare(var, Binding::Iter { unroll, lo, hi }, span)?;
        if unroll > 1 {
            self.unrolled.push((var, unroll));
        }
        let body_result = self.check_cmd(body);
        if unroll > 1 {
            self.unrolled.pop();
        }
        self.for_frames.pop();
        // Variables declared at the top level of the body become combine
        // registers.
        let body_scope = self.scopes.pop().expect("body scope");
        body_result?;
        let body_state = std::mem::replace(&mut self.caps, entry.clone());

        let combine_state = if let Some(comb) = combine {
            // The combine block is ordered after the body (fresh caps), runs
            // once per iteration group, and sees body variables as combine
            // registers.
            self.push_scope();
            self.declare(var, Binding::Iter { unroll: 1, lo, hi }, span)?;
            for (&name, b) in &body_scope {
                if name == var {
                    continue;
                }
                if let Binding::Scalar(t) = b {
                    self.declare(name, Binding::CombineReg(t.clone()), span)?;
                }
            }
            let was = std::mem::replace(&mut self.in_combine, true);
            let r = self.check_cmd(comb);
            self.in_combine = was;
            self.pop_scope();
            r?;
            std::mem::take(&mut self.caps)
        } else {
            entry
        };
        self.caps = body_state.meet(&combine_state);
        Ok(())
    }

    fn check_call(&mut self, func: Id, args: &[Expr], span: Span) -> Result<(), TypeError> {
        let params = self.funcs.get(&func).cloned().ok_or_else(|| {
            TypeError::new(
                TypeErrorKind::Unbound,
                format!("unbound function `{func}`"),
                span,
            )
        })?;
        if params.len() != args.len() {
            return Err(TypeError::new(
                TypeErrorKind::BadCall,
                format!(
                    "`{func}` expects {} arguments, got {}",
                    params.len(),
                    args.len()
                ),
                span,
            ));
        }
        for (p, a) in params.iter().zip(args) {
            match &p.ty {
                Type::Mem(want) => {
                    let name = match a {
                        Expr::Var { name, .. } => *name,
                        other => {
                            return Err(TypeError::new(
                                TypeErrorKind::BadCall,
                                "memory arguments must be memory names",
                                other.span(),
                            ))
                        }
                    };
                    let entry = match self.lookup(name) {
                        Some((_, Binding::Mem(e))) => Rc::clone(e),
                        _ => {
                            return Err(TypeError::new(
                                TypeErrorKind::BadCall,
                                format!("`{name}` is not a memory"),
                                a.span(),
                            ))
                        }
                    };
                    if entry.ty != *want {
                        return Err(TypeError::new(
                            TypeErrorKind::BadCall,
                            format!(
                                "memory argument `{name}: {}` does not match parameter type `{want}`",
                                entry.ty
                            ),
                            a.span(),
                        ));
                    }
                    // The callee may touch any bank: consume the whole root
                    // memory for this time step.
                    let (root, ports) = self.root_of(name);
                    self.caps.consume_all(root, ports, span)?;
                }
                t => {
                    let at = self.check_expr(a)?;
                    join_scalar(t, &at, a.span())?;
                }
            }
        }
        Ok(())
    }

    /// Follow a view chain to the underlying physical memory.
    fn root_of(&self, name: Id) -> (Id, u32) {
        let mut cur = name;
        loop {
            match self.lookup(cur) {
                Some((_, Binding::Mem(e))) => match &e.origin {
                    Origin::Direct => return (cur, e.ty.ports),
                    Origin::View { parent, .. } => cur = *parent,
                },
                _ => return (cur, 1),
            }
        }
    }

    // ------------------------------------------------------------- views

    fn check_view(
        &mut self,
        name: Id,
        mem: Id,
        kind: &ViewKind,
        span: Span,
    ) -> Result<(), TypeError> {
        let parent = match self.lookup(mem) {
            Some((_, Binding::Mem(e))) => Rc::clone(e),
            Some(_) => {
                return Err(TypeError::new(
                    TypeErrorKind::BadView,
                    format!("`{mem}` is not a memory"),
                    span,
                ))
            }
            None => {
                return Err(TypeError::new(
                    TypeErrorKind::Unbound,
                    format!("unbound memory `{mem}`"),
                    span,
                ))
            }
        };
        let pdims = &parent.ty.dims;
        let (dims, op) = match kind {
            ViewKind::Shrink { factors } => {
                if factors.len() != pdims.len() {
                    return Err(TypeError::new(
                        TypeErrorKind::BadView,
                        format!(
                            "shrink needs one factor per dimension ({} != {})",
                            factors.len(),
                            pdims.len()
                        ),
                        span,
                    ));
                }
                let mut dims = Vec::new();
                for (f, d) in factors.iter().zip(pdims) {
                    if *f == 0 || d.banks % f != 0 {
                        return Err(TypeError::new(
                            TypeErrorKind::BadView,
                            format!(
                                "shrink factor {f} must divide the banking factor {}",
                                d.banks
                            ),
                            span,
                        ));
                    }
                    dims.push(Dim {
                        size: d.size,
                        banks: d.banks / f,
                    });
                }
                (dims, ViewOp::Shrink(factors.clone()))
            }
            ViewKind::Suffix { offsets } => {
                if offsets.len() != pdims.len() {
                    return Err(TypeError::new(
                        TypeErrorKind::BadView,
                        "suffix needs one offset per dimension",
                        span,
                    ));
                }
                for (off, d) in offsets.iter().zip(pdims) {
                    self.check_aligned_offset(off, d.banks)?;
                    let t = self.check_expr(off)?;
                    require_numeric(&t, off.span())?;
                }
                (pdims.clone(), ViewOp::Suffix)
            }
            ViewKind::Shift { offsets } => {
                if offsets.len() != pdims.len() {
                    return Err(TypeError::new(
                        TypeErrorKind::BadView,
                        "shift needs one offset per dimension",
                        span,
                    ));
                }
                for off in offsets {
                    let t = self.check_expr(off)?;
                    require_numeric(&t, off.span())?;
                }
                (pdims.clone(), ViewOp::Shift)
            }
            ViewKind::Split { factor } => {
                if pdims.len() != 1 {
                    return Err(TypeError::new(
                        TypeErrorKind::BadView,
                        "split applies to one-dimensional memories",
                        span,
                    ));
                }
                let d = pdims[0];
                if *factor == 0 || d.banks % factor != 0 || d.size % factor != 0 {
                    return Err(TypeError::new(
                        TypeErrorKind::BadView,
                        format!(
                            "split factor {factor} must divide both the banking factor {} and the size {}",
                            d.banks, d.size
                        ),
                        span,
                    ));
                }
                (
                    vec![
                        Dim {
                            size: *factor,
                            banks: *factor,
                        },
                        Dim {
                            size: d.size / factor,
                            banks: d.banks / factor,
                        },
                    ],
                    ViewOp::Split(*factor),
                )
            }
        };
        let ty = MemType {
            elem: parent.ty.elem.clone(),
            ports: parent.ty.ports,
            dims,
        };
        // Shift views track capabilities on their own logical banks (the
        // offset makes the bank mapping an unknown permutation), claiming
        // the underlying memory on first use per time step.
        if matches!(op, ViewOp::Shift) {
            let (_, root_ports) = self.root_of(mem);
            self.caps.add_memory(name, &bank_dims(&ty), root_ports);
        }
        self.declare(
            name,
            Binding::Mem(Rc::new(MemEntry {
                ty,
                origin: Origin::View { parent: mem, op },
            })),
            span,
        )?;
        self.report.views += 1;
        Ok(())
    }

    /// An aligned suffix offset must be provably a multiple of the banking
    /// factor: a literal multiple, or syntactically `k * e` with `banks | k`.
    fn check_aligned_offset(&self, off: &Expr, banks: u64) -> Result<(), TypeError> {
        if banks == 1 {
            return Ok(());
        }
        let ok = match off {
            Expr::LitInt { val, .. } => *val >= 0 && (*val as u64).is_multiple_of(banks),
            Expr::Bin {
                op: BinOp::Mul,
                lhs,
                rhs,
                ..
            } => {
                let lit = |e: &Expr| match e {
                    Expr::LitInt { val, .. } if *val > 0 => Some(*val as u64),
                    _ => None,
                };
                lit(lhs).is_some_and(|k| k % banks == 0) || lit(rhs).is_some_and(|k| k % banks == 0)
            }
            _ => false,
        };
        if ok {
            Ok(())
        } else {
            Err(TypeError::new(
                TypeErrorKind::BadView,
                format!(
                    "suffix offset must be a multiple of the banking factor {banks} \
                     (write it as `{banks} * e`, or use a shift view)"
                ),
                off.span(),
            ))
        }
    }

    /// Map per-dimension bank sets through the view chain towards the root
    /// physical memory. Resolution stops at the first *shift* view: its
    /// bank mapping is an unknown permutation, so the view carries its own
    /// capability pool and the physical root is claimed wholesale (returned
    /// as the second component).
    fn resolve_chain(
        &self,
        name: Id,
        mut sets: Vec<BankSet>,
        span: Span,
    ) -> Result<(ResolvedAccess, Option<Id>), TypeError> {
        let mut cur = name;
        loop {
            let entry = match self.lookup(cur) {
                Some((_, Binding::Mem(e))) => Rc::clone(e),
                _ => {
                    return Err(TypeError::new(
                        TypeErrorKind::Unbound,
                        format!("unbound memory `{cur}`"),
                        span,
                    ))
                }
            };
            match &entry.origin {
                Origin::Direct => {
                    return Ok((
                        ResolvedAccess {
                            root: cur,
                            bank_sets: sets,
                            dim_banks: bank_dims(&entry.ty),
                        },
                        None,
                    ))
                }
                Origin::View { parent, op } => {
                    if matches!(op, ViewOp::Shift) {
                        let (phys_root, _) = self.root_of(cur);
                        return Ok((
                            ResolvedAccess {
                                root: cur,
                                bank_sets: sets,
                                dim_banks: bank_dims(&entry.ty),
                            },
                            Some(phys_root),
                        ));
                    }
                    let pentry = match self.lookup(*parent) {
                        Some((_, Binding::Mem(e))) => Rc::clone(e),
                        _ => {
                            return Err(TypeError::new(
                                TypeErrorKind::Unbound,
                                format!("unbound memory `{parent}`"),
                                span,
                            ))
                        }
                    };
                    sets = map_banks(op, &sets, &entry.ty, &pentry.ty);
                    cur = *parent;
                }
            }
        }
    }

    // ---------------------------------------------------------- accesses

    fn check_access(
        &mut self,
        mem: Id,
        phys_bank: Option<&Expr>,
        idxs: &[Expr],
        mode: Mode,
        span: Span,
    ) -> Result<Type, TypeError> {
        let entry = match self.lookup(mem) {
            Some((_, Binding::Mem(e))) => Rc::clone(e),
            Some(_) => {
                return Err(TypeError::new(
                    TypeErrorKind::BadAccess,
                    format!("`{mem}` is not a memory"),
                    span,
                ))
            }
            None => {
                return Err(TypeError::new(
                    TypeErrorKind::Unbound,
                    format!("unbound memory `{mem}`"),
                    span,
                ))
            }
        };
        self.report.accesses += 1;
        let elem = (*entry.ty.elem).clone();

        let (sets, key) = if let Some(b) = phys_bank {
            self.physical_access(&entry, b, idxs, span)?
        } else {
            self.logical_access(&entry, idxs, span)?
        };

        // Parallel copies of a write must target distinct locations: the
        // index must mention every enclosing unrolled iterator.
        if mode == Mode::Write {
            for &(z, _) in &self.unrolled {
                let mentioned =
                    idxs.iter().any(|e| e.mentions(z)) || phys_bank.is_some_and(|b| b.mentions(z));
                if !mentioned {
                    return Err(TypeError::new(
                        TypeErrorKind::WriteConflict,
                        format!(
                            "insufficient write capabilities: all {}-unrolled copies write \
                             `{mem}` at the same location (the index does not depend on `{z}`)",
                            self.unrolled
                                .iter()
                                .map(|(_, u)| u.to_string())
                                .collect::<Vec<_>>()
                                .join("×"),
                        ),
                        span,
                    ));
                }
            }
        }

        let (resolved, claim) = self.resolve_chain(mem, sets, span)?;
        if let Some(phys_root) = claim {
            self.caps.acquire_claim(phys_root, resolved.root, span)?;
        }
        let access_key = (mem, key);
        match mode {
            Mode::Read => self.caps.acquire_read(&resolved, access_key, span)?,
            Mode::Write => self.caps.acquire_write(&resolved, access_key, span)?,
        }
        Ok(elem)
    }

    fn physical_access(
        &mut self,
        entry: &MemEntry,
        bank: &Expr,
        idxs: &[Expr],
        span: Span,
    ) -> Result<(Vec<BankSet>, u128), TypeError> {
        let b = const_eval(bank).ok_or_else(|| {
            TypeError::new(
                TypeErrorKind::InvalidIndex,
                "physical bank selectors must be integer constants",
                bank.span(),
            )
        })?;
        let total = entry.ty.total_banks();
        if b < 0 || b as u64 >= total {
            return Err(TypeError::new(
                TypeErrorKind::BadAccess,
                format!("bank {b} out of range (memory has {total} banks)"),
                bank.span(),
            ));
        }
        if idxs.len() != 1 {
            return Err(TypeError::new(
                TypeErrorKind::BadAccess,
                "physical accesses take exactly one in-bank offset",
                span,
            ));
        }
        let t = self.check_expr(&idxs[0])?;
        require_numeric(&t, idxs[0].span())?;
        // Unflatten the bank id into per-dimension coordinates
        // (row-major over dimensions).
        let mut rem = b as u64;
        let banks = bank_dims(&entry.ty);
        let mut coord = vec![0u64; banks.len()];
        for (i, &nb) in banks.iter().enumerate().rev() {
            coord[i] = rem % nb;
            rem /= nb;
        }
        let sets = coord.into_iter().map(BankSet::one).collect();
        let mut fp = Fingerprint::new();
        fp.byte(0xFE); // physical-access tag
        fp.u64(b as u64);
        expr_fingerprint(&idxs[0], &mut fp);
        Ok((sets, fp.finish()))
    }

    fn logical_access(
        &mut self,
        entry: &MemEntry,
        idxs: &[Expr],
        span: Span,
    ) -> Result<(Vec<BankSet>, u128), TypeError> {
        let dims = &entry.ty.dims;
        if idxs.len() != dims.len() {
            return Err(TypeError::new(
                TypeErrorKind::BadAccess,
                format!(
                    "access has {} indices but the memory has {} dimensions",
                    idxs.len(),
                    dims.len()
                ),
                span,
            ));
        }
        let mut sets = Vec::with_capacity(dims.len());
        let mut fp = Fingerprint::new();
        for (e, d) in idxs.iter().zip(dims) {
            let set = self.classify_index(e, d)?;
            sets.push(set);
            fp.byte(0xFF); // dimension separator
            expr_fingerprint(e, &mut fp);
        }
        Ok((sets, fp.finish()))
    }

    /// Determine which banks of one dimension an index expression can touch,
    /// enforcing the paper's "simple indexing" restriction.
    fn classify_index(&mut self, e: &Expr, d: &Dim) -> Result<BankSet, TypeError> {
        if let Some(n) = const_eval(e) {
            if n < 0 || n as u64 >= d.size {
                return Err(TypeError::new(
                    TypeErrorKind::BadAccess,
                    format!("index {n} out of bounds for dimension of size {}", d.size),
                    e.span(),
                ));
            }
            return Ok(BankSet::one(n as u64 % d.banks));
        }
        match e {
            Expr::Var { name, span } => match self.lookup(*name) {
                Some((_, Binding::Iter { unroll, lo, hi })) => {
                    let (unroll, lo, hi) = (*unroll, *lo, *hi);
                    if lo < 0 || hi > d.size as i64 {
                        return Err(TypeError::new(
                            TypeErrorKind::BadAccess,
                            format!(
                                "iterator `{name}` ranges over {lo}..{hi} but the dimension has {} elements",
                                d.size
                            ),
                            *span,
                        ));
                    }
                    if unroll == 1 {
                        // Sequential: one unknown bank per step — reserve all.
                        Ok(BankSet::All)
                    } else if unroll > d.banks {
                        Err(TypeError::new(
                            TypeErrorKind::InsufficientBanks,
                            format!(
                                "insufficient banks: {unroll} parallel accesses through `{name}` \
                                 but the dimension has only {} bank(s)",
                                d.banks
                            ),
                            *span,
                        ))
                    } else if unroll < d.banks {
                        Err(TypeError::new(
                            TypeErrorKind::UnrollBankMismatch,
                            format!(
                                "unrolling factor {unroll} must match the banking factor {} \
                                 (create a `shrink` view to use fewer banks)",
                                d.banks
                            ),
                            *span,
                        ))
                    } else {
                        Ok(BankSet::All)
                    }
                }
                Some((_, Binding::Scalar(t))) if t.is_numeric() => {
                    if d.banks > 1 {
                        Err(TypeError::new(
                            TypeErrorKind::InvalidIndex,
                            format!(
                                "dynamic index `{name}` on a dimension banked {} ways would \
                                 require bank indirection hardware; use a view",
                                d.banks
                            ),
                            *span,
                        ))
                    } else {
                        Ok(BankSet::All)
                    }
                }
                Some((_, Binding::CombineReg(_))) => Err(TypeError::new(
                    TypeErrorKind::BadCombine,
                    format!("combine register `{name}` cannot be used as an index"),
                    *span,
                )),
                Some(_) => Err(TypeError::new(
                    TypeErrorKind::InvalidIndex,
                    format!("`{name}` cannot be used as an index"),
                    *span,
                )),
                None => Err(TypeError::new(
                    TypeErrorKind::Unbound,
                    format!("unbound variable `{name}`"),
                    *span,
                )),
            },
            other => {
                // Arbitrary index calculations are rejected on banked
                // dimensions (`A[2*i]` in §3.6): the bank cannot be deduced.
                if d.banks > 1 {
                    Err(TypeError::new(
                        TypeErrorKind::InvalidIndex,
                        "Dahlia only allows simple indexing expressions (an iterator or a \
                         constant) on banked dimensions; restructure with a view",
                        other.span(),
                    ))
                } else {
                    let t = self.check_expr(other)?;
                    require_numeric(&t, other.span())?;
                    Ok(BankSet::All)
                }
            }
        }
    }

    // ------------------------------------------------------- expressions

    fn check_expr(&mut self, e: &Expr) -> Result<Type, TypeError> {
        match e {
            Expr::LitInt { .. } => Ok(Type::Bit(32)),
            Expr::LitFloat { .. } => Ok(Type::Float),
            Expr::LitBool { .. } => Ok(Type::Bool),
            Expr::Var { name, span } => {
                let (_, b) = self.lookup(*name).ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::Unbound,
                        format!("unbound variable `{name}`"),
                        *span,
                    )
                })?;
                match b {
                    Binding::Scalar(t) => Ok(t.clone()),
                    Binding::Iter { unroll, .. } => Ok(Type::Idx {
                        lo: 0,
                        hi: *unroll as i64,
                    }),
                    Binding::Mem(m) => Ok(Type::Mem(m.ty.clone())),
                    Binding::CombineReg(t) => {
                        if self.in_reduce_rhs {
                            Ok(t.clone())
                        } else {
                            Err(TypeError::new(
                                TypeErrorKind::BadCombine,
                                format!(
                                    "combine register `{name}` holds one value per unrolled copy \
                                     and can only be consumed by a reducer (`+=`, `-=`, `*=`, `/=`)"
                                ),
                                *span,
                            ))
                        }
                    }
                }
            }
            Expr::Bin { op, lhs, rhs, span } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                if op.is_logical() {
                    if lt == Type::Bool && rt == Type::Bool {
                        Ok(Type::Bool)
                    } else {
                        Err(TypeError::new(
                            TypeErrorKind::Mismatch,
                            format!("`{op}` needs bool operands, found `{lt}` and `{rt}`"),
                            *span,
                        ))
                    }
                } else if op.is_comparison() {
                    if lt == Type::Bool && rt == Type::Bool {
                        return Ok(Type::Bool);
                    }
                    join_scalar(&lt, &rt, *span)?;
                    Ok(Type::Bool)
                } else {
                    join_scalar(&lt, &rt, *span)
                }
            }
            Expr::Un { op, arg, span } => {
                let t = self.check_expr(arg)?;
                match op {
                    UnOp::Not => {
                        if t == Type::Bool {
                            Ok(Type::Bool)
                        } else {
                            Err(TypeError::new(
                                TypeErrorKind::Mismatch,
                                format!("`!` needs a bool operand, found `{t}`"),
                                *span,
                            ))
                        }
                    }
                    UnOp::Neg => {
                        require_numeric(&t, *span)?;
                        Ok(decay(&t))
                    }
                }
            }
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => self.check_access(*mem, phys_bank.as_deref(), idxs, Mode::Read, *span),
            Expr::Call { func, span, .. } => Err(TypeError::new(
                TypeErrorKind::BadCall,
                format!("`{func}` is a procedure; calls are statements, not expressions"),
                *span,
            )),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    Write,
}

/// Which bank sets of the *parent* does an access to these view banks touch?
fn map_banks(op: &ViewOp, sets: &[BankSet], child: &MemType, parent: &MemType) -> Vec<BankSet> {
    match op {
        ViewOp::Shrink(factors) => sets
            .iter()
            .zip(factors)
            .zip(&child.dims)
            .map(|((s, &f), d)| {
                let child_banks = d.banks;
                match s {
                    BankSet::All => BankSet::All,
                    BankSet::Some(bs) => BankSet::Some(
                        bs.iter()
                            .flat_map(|&b| (0..f).map(move |t| b + t * child_banks))
                            .collect(),
                    ),
                }
            })
            .collect(),
        ViewOp::Suffix => sets.to_vec(),
        ViewOp::Shift => vec![BankSet::All; parent.dims.len()],
        ViewOp::Split(f) => {
            // Child dims: [f bank f][n/f bank B/f] → parent bank
            // b0 * (B/f) + b1.
            let pb = parent.dims[0].banks;
            let per_window = pb / f;
            let b0s = sets[0].expand(*f);
            let b1s = sets[1].expand(per_window);
            let mut out = std::collections::BTreeSet::new();
            for &b0 in &b0s {
                for &b1 in &b1s {
                    out.insert(b0 * per_window + b1);
                }
            }
            vec![BankSet::Some(out)]
        }
    }
}

/// Bank counts per dimension.
fn bank_dims(m: &MemType) -> Vec<u64> {
    m.dims.iter().map(|d| d.banks).collect()
}

/// Iterator types decay to plain integers when stored or negated.
fn decay(t: &Type) -> Type {
    match t {
        Type::Idx { .. } => Type::Bit(32),
        other => other.clone(),
    }
}

/// Join two scalar types, with the conveniences documented in DESIGN.md:
/// integer widths widen, indexes decay, and integers widen to floats.
fn join_scalar(a: &Type, b: &Type, span: Span) -> Result<Type, TypeError> {
    use Type::*;
    let err = || {
        Err(TypeError::new(
            TypeErrorKind::Mismatch,
            format!("incompatible types `{a}` and `{b}`"),
            span,
        ))
    };
    Ok(match (a, b) {
        (Mem(_), _) | (_, Mem(_)) => return err(),
        (Bool, Bool) => Bool,
        (Bool, _) | (_, Bool) => return err(),
        (Idx { .. }, Idx { .. }) => Bit(32),
        (Idx { .. }, t) | (t, Idx { .. }) => decay(t),
        (Double, Double | Float) | (Float, Double) => Double,
        (Float, Float) => Float,
        (Bit(x), Bit(y)) => Bit(*x.max(y)),
        (UBit(x), UBit(y)) => UBit(*x.max(y)),
        (Bit(x), UBit(y)) | (UBit(y), Bit(x)) => Bit(*x.max(y)),
        (Float, Bit(_) | UBit(_)) | (Bit(_) | UBit(_), Float) => Float,
        (Double, Bit(_) | UBit(_)) | (Bit(_) | UBit(_), Double) => Double,
    })
}

fn require_numeric(t: &Type, span: Span) -> Result<(), TypeError> {
    if t.is_numeric() {
        Ok(())
    } else {
        Err(TypeError::new(
            TypeErrorKind::Mismatch,
            format!("expected a numeric type, found `{t}`"),
            span,
        ))
    }
}

/// Constant-fold an index expression.
pub fn const_eval(e: &Expr) -> Option<i64> {
    match e {
        Expr::LitInt { val, .. } => Some(*val),
        Expr::Un {
            op: UnOp::Neg, arg, ..
        } => Some(-const_eval(arg)?),
        Expr::Bin { op, lhs, rhs, .. } => {
            let (a, b) = (const_eval(lhs)?, const_eval(rhs)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div if b != 0 => a / b,
                BinOp::Mod if b != 0 => a % b,
                _ => return None,
            })
        }
        _ => None,
    }
}

/// A 128-bit FNV-1a accumulator for structural access fingerprints.
///
/// The checker identifies "the same syntactic access" (for read-port
/// sharing and double-write detection) by this fingerprint instead of a
/// printed string: the hot path hashes symbols and literals, it never
/// allocates. Spans are excluded, so two textually identical accesses on
/// different lines share as before. 128 bits makes an accidental
/// collision between *different* accesses within one program
/// astronomically unlikely.
pub struct Fingerprint(u128);

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// The FNV-1a 128-bit offset basis.
    pub fn new() -> Fingerprint {
        Fingerprint(0x6c62_272e_07bb_0142_62b8_2175_6295_c58d)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self
            .0
            .wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

/// Fold an expression's structure (operators, literals, interned
/// identifiers — not spans) into `fp`. The structural identity used for
/// [`caps::AccessKey`]s.
pub fn expr_fingerprint(e: &Expr, fp: &mut Fingerprint) {
    match e {
        Expr::LitInt { val, .. } => {
            fp.byte(1);
            fp.u64(*val as u64);
        }
        Expr::LitFloat { val, .. } => {
            fp.byte(2);
            fp.u64(val.to_bits());
        }
        Expr::LitBool { val, .. } => {
            fp.byte(3);
            fp.byte(*val as u8);
        }
        Expr::Var { name, .. } => {
            fp.byte(4);
            fp.u64(name.id() as u64);
        }
        Expr::Bin { op, lhs, rhs, .. } => {
            fp.byte(5);
            fp.byte(*op as u8);
            expr_fingerprint(lhs, fp);
            expr_fingerprint(rhs, fp);
        }
        Expr::Un { op, arg, .. } => {
            fp.byte(6);
            fp.byte(*op as u8);
            expr_fingerprint(arg, fp);
        }
        Expr::Access {
            mem,
            phys_bank,
            idxs,
            ..
        } => {
            fp.byte(7);
            fp.u64(mem.id() as u64);
            match phys_bank {
                Some(b) => {
                    fp.byte(1);
                    expr_fingerprint(b, fp);
                }
                None => fp.byte(0),
            }
            fp.u64(idxs.len() as u64);
            for i in idxs {
                expr_fingerprint(i, fp);
            }
        }
        Expr::Call { func, args, .. } => {
            fp.byte(8);
            fp.u64(func.id() as u64);
            fp.u64(args.len() as u64);
            for a in args {
                expr_fingerprint(a, fp);
            }
        }
    }
}

#[cfg(test)]
mod tests;
