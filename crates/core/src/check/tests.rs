//! Accept/reject tests for the affine type checker, taken directly from the
//! paper's running examples (§3).

use crate::error::{Error, TypeErrorKind};
use crate::parser::parse;

use super::typecheck;

fn accepts(src: &str) {
    let p = parse(src).unwrap_or_else(|e| panic!("parse error: {e}\n{src}"));
    if let Err(e) = typecheck(&p) {
        panic!("expected accept, got {e}\n{src}");
    }
}

fn rejects(src: &str, kind: TypeErrorKind) {
    let p = parse(src).unwrap_or_else(|e| panic!("parse error: {e}\n{src}"));
    match typecheck(&p) {
        Ok(_) => panic!("expected {kind:?}, but the program was accepted\n{src}"),
        Err(Error::Type(t)) => {
            assert_eq!(t.kind, kind, "wrong error: {t}\n{src}");
        }
        Err(other) => panic!("unexpected error {other}\n{src}"),
    }
}

// ------------------------------------------------------------- §3.1 basics

#[test]
fn read_into_scalar_ok() {
    accepts("let A: float[10]; let x = A[0];");
}

#[test]
fn memories_cannot_be_copied() {
    rejects("let A: float[10]; let B = A;", TypeErrorKind::MemoryCopy);
}

#[test]
fn read_then_write_same_step_rejected() {
    // "let x = A[0]; A[1] := 1; // Error: Previous read consumed A."
    rejects(
        "let A: float[10]; let x = A[0]; A[1] := 1.0;",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn identical_reads_share_capability() {
    // "let x = A[0]; let y = A[0]; // OK: Reading the same address."
    accepts("let A: float[10]; let x = A[0]; let y = A[0];");
}

#[test]
fn different_reads_conflict() {
    rejects(
        "let A: float[10]; let x = A[0]; let y = A[1];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn double_write_same_location_rejected() {
    rejects(
        "let A: float{2}[10]; A[0] := 1.0; A[0] := 2.0;",
        TypeErrorKind::WriteConflict,
    );
}

// ------------------------------------------------- §3.2 ordered composition

#[test]
fn ordered_composition_restores_capabilities() {
    accepts("let A: float[10]; let x = A[0] --- A[1] := 1.0;");
}

#[test]
fn paper_ordered_block_example() {
    // The read of B must not conflict with either ordered step.
    rejects(
        "let A: float[10]; let B: float[10];
         {
           let x = A[0] + 1.0
           ---
           B[1] := A[1] + x
         };
         let y = B[0];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn ordered_block_then_disjoint_memory_ok() {
    accepts(
        "let A: float[10]; let B: float[10]; let C: float[10];
         {
           let x = A[0] + 1.0
           ---
           B[1] := A[1] + x
         };
         let y = C[0];",
    );
}

#[test]
fn local_variables_are_unrestricted() {
    accepts("let x = 0; x := x + 1; let y = x;");
}

// ------------------------------------------------------------ §3.3 banking

#[test]
fn distinct_banks_parallel_ok() {
    accepts(
        "let A: float[10 bank 2];
         A{0}[0] := 1.0;
         A{1}[0] := 2.0;",
    );
}

#[test]
fn same_bank_physical_conflict() {
    rejects(
        "let A: float[10 bank 2];
         A{0}[0] := 1.0;
         A{0}[1] := 2.0;",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn logical_indexing_deduces_bank() {
    // A[1] on a 2-banked memory is bank 1; A[2] is bank 0.
    accepts("let A: float[10 bank 2]; let x = A[0]; let y = A[1];");
    rejects(
        "let A: float[10 bank 2]; let x = A[0]; let y = A[2];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn banking_must_divide_size() {
    rejects("let A: float[10 bank 3];", TypeErrorKind::UnevenBanking);
}

#[test]
fn multiported_memory_allows_read_and_write() {
    // "let A: float{2}[10]; let x = A[0]; A[1] := x + 1;"
    accepts("let A: float{2}[10]; let x = A[0]; A[1] := x + 1.0;");
}

#[test]
fn multidimensional_banking() {
    accepts(
        "let M: float[4 bank 2][4 bank 2];
         let a = M[0][0]; let b = M[0][1]; let c = M[1][0]; let d = M[1][1];",
    );
    // Two accesses landing in bank (0,0):
    rejects(
        "let M: float[4 bank 2][4 bank 2]; let a = M[0][0]; let b = M[2][2];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn physical_multidim_access() {
    // M{3}[0] is the element logically at M[1][1] for a 2×2 banking: the two
    // accesses hit the same bank, so they conflict within a time step…
    rejects(
        "let M: float[4 bank 2][4 bank 2]; let x = M{3}[0]; let y = M[1][1];",
        TypeErrorKind::AlreadyConsumed,
    );
    // …and are fine when ordered, or when they hit different banks.
    accepts("let M: float[4 bank 2][4 bank 2]; let x = M{3}[0] --- let y = M[1][1];");
    accepts("let M: float[4 bank 2][4 bank 2]; let x = M{3}[0]; let y = M[0][0];");
}

// ---------------------------------------------------------- §3.4 unrolling

#[test]
fn unroll_needs_banks() {
    // Paper: unrolled write to an unbanked array is an error.
    rejects(
        "let A: float[10];
         for (let i = 0..10) unroll 2 { A[i] := 1.0; }",
        TypeErrorKind::InsufficientBanks,
    );
}

#[test]
fn unroll_matching_banks_ok() {
    accepts(
        "let A: float[10 bank 2];
         for (let i = 0..10) unroll 2 { A[i] := 1.0; }",
    );
}

#[test]
fn unroll_below_banking_needs_shrink_view() {
    rejects(
        "let A: float[8 bank 4];
         for (let i = 0..8) unroll 2 { let x = A[i]; }",
        TypeErrorKind::UnrollBankMismatch,
    );
}

#[test]
fn shrink_view_allows_lower_unroll() {
    // §3.6: "view sh = shrink A[by 2]; for (let i = 0..8) unroll 2 sh[i]"
    accepts(
        "let A: float[8 bank 4];
         view sh = shrink A[by 2];
         for (let i = 0..8) unroll 2 { let x = sh[i]; }",
    );
}

#[test]
fn unroll_must_divide_trip_count() {
    rejects(
        "let A: float[10 bank 3]; let B: float[9 bank 3];
         for (let i = 0..10) unroll 3 { let x = B[i]; }",
        TypeErrorKind::UnevenBanking, // A itself is invalid first
    );
    rejects(
        "let B: float[10 bank 5];
         for (let i = 0..10) unroll 3 { let x = B[i]; }",
        TypeErrorKind::UnevenUnroll,
    );
}

#[test]
fn unrolled_ordered_body_lockstep() {
    // §3.4: reading A[i] in step 1 and A[0] in step 2 is fine — conflicts
    // only matter within a time step.
    accepts(
        "def f(x: float, y: float) { let z = x + y; }
         let A: float[10 bank 2];
         for (let i = 0..10) unroll 2 {
           let x = A[i]
           ---
           f(x, A[0]);
         }",
    );
}

#[test]
fn nested_unroll_read_shares_write_conflicts() {
    // §3.4 nested unrolling: the read of A[i][0] fans out, the write does not.
    accepts(
        "let A: float[8 bank 1][10 bank 5];
         for (let i = 0..8) {
           for (let j = 0..10) unroll 5 {
             let x = A[i][0];
           }
         }",
    );
    rejects(
        "let A: float[8 bank 1][10 bank 5];
         for (let i = 0..8) {
           for (let j = 0..10) unroll 5 {
             let x = A[i][0]
             ---
             A[i][0] := j;
           }
         }",
        TypeErrorKind::WriteConflict,
    );
}

#[test]
fn sequential_iterator_reserves_all_banks() {
    // A plain loop can touch any bank, so a second distinct access conflicts.
    rejects(
        "let A: float[8 bank 4];
         for (let i = 0..8) { let x = A[i]; let y = A[0]; }",
        TypeErrorKind::AlreadyConsumed,
    );
    // …unless ordered.
    accepts(
        "let A: float[8 bank 4];
         for (let i = 0..8) { let x = A[i] --- let y = A[0]; }",
    );
}

// -------------------------------------------------------- §3.5 combine

#[test]
fn dot_product_with_combine() {
    accepts(
        "let A: float[10 bank 2]; let B: float[10 bank 2];
         let dot = 0.0;
         for (let i = 0..10) unroll 2 {
           let v = A[i] * B[i];
         } combine {
           dot += v;
         }",
    );
}

#[test]
fn plain_accumulation_in_doall_rejected() {
    // "dot += A[i] * B[i]" inside the unrolled body is a cross-iteration
    // dependency.
    rejects(
        "let A: float[10 bank 2]; let B: float[10 bank 2];
         let dot = 0.0;
         for (let i = 0..10) unroll 2 {
           dot += A[i] * B[i];
         }",
        TypeErrorKind::LoopDependency,
    );
}

#[test]
fn assign_to_outer_var_in_for_rejected() {
    rejects(
        "let t = 0;
         for (let i = 0..4) { t := i; }",
        TypeErrorKind::LoopDependency,
    );
}

#[test]
fn while_loops_may_carry_dependencies() {
    accepts("let t = 0; while (t < 10) { t := t + 1; }");
}

#[test]
fn combine_register_only_usable_by_reducer() {
    rejects(
        "let A: float[10 bank 2];
         let dot = 0.0;
         for (let i = 0..10) unroll 2 {
           let v = A[i];
         } combine {
           dot := v;
         }",
        TypeErrorKind::BadCombine,
    );
}

#[test]
fn memory_reduction_in_combine() {
    // gemm-style: prod[i][j] += mul in a combine block.
    accepts(
        "let A: float[8 bank 2]; let B: float[8 bank 2]; let prod: float[8];
         for (let i = 0..8) {
           for (let k = 0..8) unroll 2 {
             let mul = A[k] * B[k];
           } combine {
             prod[i] += mul;
           }
         }",
    );
}

// ------------------------------------------------------------- §3.6 views

#[test]
fn shrink_factor_must_divide_banking() {
    rejects(
        "let A: float[8 bank 4]; view sh = shrink A[by 3];",
        TypeErrorKind::BadView,
    );
}

#[test]
fn view_and_underlying_conflict() {
    rejects(
        "let A: float[8 bank 4];
         view sh = shrink A[by 2];
         let x = A[0]; let y = sh[2];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn aligned_suffix_view() {
    // view s = suffix A[by 2*i]; s[1] reads A[2*i + 1].
    accepts(
        "let A: float[8 bank 2];
         for (let i = 0..4) {
           view s = suffix A[by 2*i];
           let x = s[1];
         }",
    );
}

#[test]
fn misaligned_suffix_rejected() {
    rejects(
        "let A: float[8 bank 2];
         for (let i = 0..4) {
           view s = suffix A[by 3*i];
           let x = s[1];
         }",
        TypeErrorKind::BadView,
    );
}

#[test]
fn shift_view_allows_arbitrary_offsets() {
    // §3.6: shift A[by i*i] with a fully unrolled inner loop.
    accepts(
        "let A: float[12 bank 4];
         for (let i = 0..3) {
           view r = shift A[by i*i];
           for (let j = 0..4) unroll 4 {
             let x = r[j];
           }
         }",
    );
}

#[test]
fn shift_view_consumes_every_underlying_bank() {
    rejects(
        "let A: float[12 bank 4];
         view r = shift A[by 5];
         let x = r[0]; let y = A[1];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn split_view_enables_two_level_parallelism() {
    // §3.6 blocked dot product, after splitting.
    accepts(
        "let A: float[12 bank 4]; let B: float[12 bank 4];
         let sum = 0.0;
         view split_A = split A[by 2];
         view split_B = split B[by 2];
         for (let i = 0..6) unroll 2 {
           for (let j = 0..2) unroll 2 {
             let v = split_A[j][i] * split_B[j][i];
           } combine {
             sum += v;
           }
         }",
    );
}

#[test]
fn split_requires_one_dimension() {
    rejects(
        "let M: float[4 bank 2][4 bank 2]; view sp = split M[by 2];",
        TypeErrorKind::BadView,
    );
}

#[test]
fn split_factor_must_divide() {
    rejects(
        "let A: float[12 bank 4]; view sp = split A[by 3];",
        TypeErrorKind::BadView,
    );
}

#[test]
fn stencil_style_shift_window() {
    accepts(
        "let orig: float[126 bank 3][66 bank 3];
         let filter: float[3 bank 3][3 bank 3];
         let out: float[126 bank 1][66 bank 1];
         for (let row = 0..124) {
           for (let col = 0..64) {
             view window = shift orig[by row][by col];
             let acc = 0.0;
             for (let k1 = 0..3) unroll 3 {
               for (let k2 = 0..3) unroll 3 {
                 let mul = filter[k1][k2] * window[k1][k2];
               } combine {
                 acc += mul;
               }
             }
             ---
             out[row][col] := acc;
           }
         }",
    );
}

// --------------------------------------------------------- invalid indexing

#[test]
fn arbitrary_index_on_banked_dim_rejected() {
    rejects(
        "let A: float[8 bank 2]; for (let i = 0..4) { let x = A[2*i]; }",
        TypeErrorKind::InvalidIndex,
    );
}

#[test]
fn arbitrary_index_on_unbanked_dim_ok() {
    accepts("let A: float[8]; for (let i = 0..4) { let x = A[2*i]; }");
}

#[test]
fn dynamic_scalar_index_on_banked_dim_rejected() {
    rejects(
        "let A: float[8 bank 2]; let j = 3; let x = A[j];",
        TypeErrorKind::InvalidIndex,
    );
}

#[test]
fn out_of_bounds_constant_rejected() {
    rejects("let A: float[8]; let x = A[8];", TypeErrorKind::BadAccess);
}

#[test]
fn iterator_range_must_fit() {
    rejects(
        "let A: float[8]; for (let i = 0..10) { let x = A[i]; }",
        TypeErrorKind::BadAccess,
    );
}

#[test]
fn wrong_arity_rejected() {
    rejects(
        "let M: float[4][4]; let x = M[0];",
        TypeErrorKind::BadAccess,
    );
}

// ----------------------------------------------------------- if / while

#[test]
fn if_branches_meet() {
    // Both branches consume A's single port: afterwards it is gone.
    rejects(
        "let A: float[10]; let c = true;
         if (c) { A[0] := 1.0; } else { A[1] := 2.0; }
         let x = A[2];",
        TypeErrorKind::AlreadyConsumed,
    );
    accepts(
        "let A: float[10]; let c = true;
         if (c) { A[0] := 1.0; } else { A[1] := 2.0; }
         ---
         let x = A[2];",
    );
}

#[test]
fn condition_must_be_bool() {
    rejects("let x = 1; if (x) { }", TypeErrorKind::Mismatch);
}

#[test]
fn condition_reads_consume() {
    rejects(
        "let A: float[10]; if (A[0] > 0.0) { A[1] := 1.0; }",
        TypeErrorKind::AlreadyConsumed,
    );
}

// ------------------------------------------------------------- functions

#[test]
fn function_memory_params_are_affine() {
    accepts(
        "def g(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 2];
         g(A);",
    );
    // Two calls in the same time step both need the whole memory.
    rejects(
        "def g(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 2];
         g(A); g(A);",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn sequential_calls_ok() {
    accepts(
        "def g(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 2];
         g(A) --- g(A);",
    );
}

#[test]
fn call_type_must_match_banking() {
    rejects(
        "def g(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 4];
         g(A);",
        TypeErrorKind::BadCall,
    );
}

#[test]
fn recursion_rejected() {
    rejects("def f(x: bit<32>) { f(x); } f(1);", TypeErrorKind::Unbound);
}

#[test]
fn function_body_conflicts_detected() {
    rejects(
        "def g(M: float[8]) { let x = M[0]; M[1] := x; }",
        TypeErrorKind::AlreadyConsumed,
    );
}

// ----------------------------------------------------------- miscellany

#[test]
fn report_counts() {
    let p = parse(
        "let A: float[8 bank 4];
         view sh = shrink A[by 2];
         for (let i = 0..8) unroll 2 { let x = sh[i]; }",
    )
    .unwrap();
    let r = typecheck(&p).unwrap();
    assert_eq!(r.memories, 1);
    assert_eq!(r.views, 1);
    assert_eq!(r.accesses, 1);
    assert_eq!(r.max_unroll, 2);
}

#[test]
fn shadowing_in_same_scope_rejected() {
    rejects("let x = 1; let x = 2;", TypeErrorKind::AlreadyDefined);
}

#[test]
fn unbound_names() {
    rejects("let x = y;", TypeErrorKind::Unbound);
    rejects("x := 1;", TypeErrorKind::Unbound);
    rejects("f(1);", TypeErrorKind::Unbound);
}

#[test]
fn decl_memories_usable() {
    accepts("decl A: float[16 bank 2]; let x = A[0];");
}

#[test]
fn gemm_blocked_shape_typechecks() {
    // A faithful miniature of the paper's gemm-blocked kernel (Fig. 10).
    accepts(
        "decl m1: bit<32>[16 bank 2][16 bank 2];
         decl m2: bit<32>[16 bank 2][16 bank 2];
         decl prod: bit<32>[16 bank 1][16 bank 1];
         for (let jj = 0..2) {
           for (let kk = 0..2) {
             for (let i = 0..16) unroll 2 {
               for (let j = 0..8) unroll 2 {
                 for (let k = 0..8) {
                   let x = 0;
                 }
               }
             }
           }
         }",
    );
}
