//! Desugaring of surface constructs (§4.5 of the paper).
//!
//! Two elaborations are performed, producing a program with the same
//! functional behaviour (tested by differential interpretation):
//!
//! 1. **Loop unrolling** — `for (let i = 0..m) unroll k { c1 --- c2 }`
//!    becomes a sequential loop over `m/k` iteration groups whose body
//!    composes the `k` copies of each logical time step side by side
//!    (the paper's lockstep semantics), substituting `i ↦ k·g + c + lo`
//!    and freshening body-local names per copy. `combine` blocks are
//!    appended as a final ordered step with reducers folded over the
//!    per-copy registers.
//! 2. **View inlining** — accesses through `shrink`/`suffix`/`shift`/
//!    `split` views are rewritten to direct accesses on the underlying
//!    memory using the index arithmetic of §3.6.
//!
//! Unrolling is **clone-free where it can be**: the per-copy rewriter
//! (the private `Substitution`) is copy-on-write over the `Arc`-linked AST — a
//! subtree that mentions neither the iterator nor a freshened local is
//! returned as an `Arc` clone (a refcount bump), so the `k` copies of a
//! body share every unchanged subtree instead of deep-cloning the body
//! `k` times.
//!
//! The output is meant for *execution and lowering*, not re-type-checking:
//! inlined index expressions like `A[2*g + 1]` are exactly the forms the
//! surface type system rejects.

use std::sync::Arc;

use crate::ast::*;
use crate::intern::{Symbol, SymbolMap};
use crate::span::Span;

/// Desugar a program: unroll loops and inline views.
pub fn desugar(prog: &Program) -> Program {
    desugar_with(prog, true)
}

/// Inline views only, leaving `for … unroll k` loops (and `combine`
/// blocks) intact. Used by backends that keep unrolling as a loop
/// attribute (HLS C++ pragmas, the hls-sim IR).
pub fn inline_views(prog: &Program) -> Program {
    desugar_with(prog, false)
}

fn desugar_with(prog: &Program, unroll_loops: bool) -> Program {
    let mut d = Desugarer {
        unroll_loops,
        ..Desugarer::default()
    };
    Program {
        decls: prog.decls.clone(),
        defs: prog
            .defs
            .iter()
            .map(|f| FuncDef {
                name: f.name,
                params: f.params.clone(),
                body: {
                    let mut fd = Desugarer {
                        unroll_loops,
                        ..Desugarer::default()
                    };
                    for p in &f.params {
                        if let Type::Mem(m) = &p.ty {
                            fd.mems.insert(p.name, MemInfo::Direct(m.clone()));
                        }
                    }
                    fd.cmd(&f.body)
                },
                span: f.span,
            })
            .collect(),
        body: {
            for dec in &prog.decls {
                d.mems.insert(dec.name, MemInfo::Direct(dec.ty.clone()));
            }
            d.cmd(&prog.body)
        },
    }
}

#[derive(Debug, Clone)]
enum MemInfo {
    Direct(MemType),
    View {
        parent: Id,
        ty: MemType,
        kind: ViewKind,
    },
}

impl MemInfo {
    fn ty(&self) -> &MemType {
        match self {
            MemInfo::Direct(t) => t,
            MemInfo::View { ty, .. } => ty,
        }
    }
}

#[derive(Default)]
struct Desugarer {
    mems: SymbolMap<MemInfo>,
    fresh: u64,
    unroll_loops: bool,
}

impl Desugarer {
    fn cmd(&mut self, c: &Cmd) -> Cmd {
        match c {
            Cmd::Skip => Cmd::Skip,
            Cmd::Seq(cs) => Cmd::Seq(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Par(cs) => Cmd::Par(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => {
                if let Some(Type::Mem(m)) = ty {
                    self.mems.insert(*name, MemInfo::Direct(m.clone()));
                }
                Cmd::Let {
                    name: *name,
                    ty: ty.clone(),
                    init: init.as_ref().map(|e| self.expr(e)),
                    span: *span,
                }
            }
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => {
                // Record and erase: accesses are rewritten at use sites.
                let parent_ty = self
                    .mems
                    .get(mem)
                    .map(|i| i.ty().clone())
                    .unwrap_or(MemType {
                        elem: Arc::new(Type::Float),
                        ports: 1,
                        dims: vec![Dim::flat(1)],
                    });
                let ty = view_type(&parent_ty, kind);
                let kind = match kind {
                    ViewKind::Suffix { offsets } => ViewKind::Suffix {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    ViewKind::Shift { offsets } => ViewKind::Shift {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    other => other.clone(),
                };
                self.mems.insert(
                    *name,
                    MemInfo::View {
                        parent: *mem,
                        ty,
                        kind,
                    },
                );
                // Views cost no state; they disappear in the core language.
                let _ = span;
                Cmd::Skip
            }
            Cmd::Assign { name, rhs, span } => Cmd::Assign {
                name: *name,
                rhs: self.expr(rhs),
                span: *span,
            },
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => {
                let rhs = self.expr(rhs);
                let idxs: Vec<Expr> = idxs.iter().map(|i| self.expr(i)).collect();
                let (mem, idxs) = self.rewrite_access(*mem, idxs);
                Cmd::Store {
                    mem,
                    phys_bank: phys_bank.as_ref().map(|b| Arc::new(self.expr(b))),
                    idxs,
                    rhs,
                    span: *span,
                }
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => {
                let rhs = self.expr(rhs);
                let (target, target_idxs) = if target_idxs.is_empty() {
                    (*target, Vec::new())
                } else {
                    let idxs: Vec<Expr> = target_idxs.iter().map(|i| self.expr(i)).collect();
                    self.rewrite_access(*target, idxs)
                };
                Cmd::Reduce {
                    target,
                    target_idxs,
                    op: *op,
                    rhs,
                    span: *span,
                }
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Cmd::If {
                cond: self.expr(cond),
                then_branch: Arc::new(self.cmd(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Arc::new(self.cmd(e))),
                span: *span,
            },
            Cmd::While { cond, body, span } => Cmd::While {
                cond: self.expr(cond),
                body: Arc::new(self.cmd(body)),
                span: *span,
            },
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => self.desugar_for(*var, *lo, *hi, *unroll, body, combine.as_deref(), *span),
            Cmd::Expr(e) => Cmd::Expr(self.expr(e)),
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => {
                let idxs: Vec<Expr> = idxs.iter().map(|i| self.expr(i)).collect();
                let (mem, idxs) = self.rewrite_access(*mem, idxs);
                Expr::Access {
                    mem,
                    phys_bank: phys_bank.as_ref().map(|b| Arc::new(self.expr(b))),
                    idxs,
                    span: *span,
                }
            }
            Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
                op: *op,
                lhs: Arc::new(self.expr(lhs)),
                rhs: Arc::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Un { op, arg, span } => Expr::Un {
                op: *op,
                arg: Arc::new(self.expr(arg)),
                span: *span,
            },
            Expr::Call { func, args, span } => Expr::Call {
                func: *func,
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            other => other.clone(),
        }
    }

    /// Rewrite a (possibly view) access into a root-memory access with the
    /// §3.6 index arithmetic applied. Borrows the view table; nothing is
    /// cloned along the chain.
    fn rewrite_access(&self, mem: Id, mut idxs: Vec<Expr>) -> (Id, Vec<Expr>) {
        let mut name = mem;
        loop {
            match self.mems.get(&name) {
                None | Some(MemInfo::Direct(_)) => return (name, idxs),
                Some(MemInfo::View { parent, ty, kind }) => {
                    idxs = match kind {
                        // sh[i] compiles to A[i].
                        ViewKind::Shrink { .. } => idxs,
                        // v[i] compiles to M[e + i].
                        ViewKind::Suffix { offsets } | ViewKind::Shift { offsets } => idxs
                            .iter()
                            .zip(offsets)
                            .map(|(i, o)| add(o.clone(), i.clone()))
                            .collect(),
                        // sp[i][j] → M[(j / b)·B + i·b + j mod b].
                        ViewKind::Split { factor } => {
                            let parent_banks = self
                                .mems
                                .get(parent)
                                .map(|p| p.ty().dims[0].banks)
                                .unwrap_or(ty.dims[0].banks * ty.dims[1].banks);
                            let b = (parent_banks / factor).max(1) as i64;
                            let (i, j) = (idxs[0].clone(), idxs[1].clone());
                            let quot = mul(div(j.clone(), b), parent_banks as i64);
                            let mid = mul(i, b);
                            let rem = modulo(j, b);
                            vec![add(add(quot, mid), rem)]
                        }
                    };
                    name = *parent;
                }
            }
        }
    }

    /// The lockstep unrolling of §3.4 / §4.5.
    #[allow(clippy::too_many_arguments)]
    fn desugar_for(
        &mut self,
        var: Id,
        lo: i64,
        hi: i64,
        unroll: u64,
        body: &Cmd,
        combine: Option<&Cmd>,
        span: Span,
    ) -> Cmd {
        if !self.unroll_loops || (unroll <= 1 && combine.is_none()) {
            return Cmd::For {
                var,
                lo,
                hi,
                unroll: if self.unroll_loops { 1 } else { unroll },
                body: Arc::new(self.cmd(body)),
                combine: combine.map(|c| Arc::new(self.cmd(c))),
                span,
            };
        }
        let u = unroll.max(1);
        let trips = (hi - lo).max(0) as u64;
        let groups = trips / u;
        let gvar = self.fresh_name(var);

        // Names bound at the top level of the body become per-copy copies.
        let locals = top_level_lets(body);

        let steps: Vec<&Cmd> = match body {
            Cmd::Par(steps) => steps.iter().collect(),
            other => vec![other],
        };

        let mut new_steps: Vec<Cmd> = Vec::new();
        for step in steps {
            let copies: Vec<Cmd> = (0..u)
                .map(|c| {
                    // i ↦ u·g + c + lo, body-locals freshened per copy.
                    let mut sub = Substitution::default();
                    sub.exprs
                        .insert(var, add(mul(Expr::var(gvar), u as i64), lo + c as i64));
                    for &l in &locals {
                        sub.renames.insert(l, copy_name(l, c));
                    }
                    sub.cmd_owned(step)
                })
                .collect();
            new_steps.push(Cmd::Seq(copies));
        }
        if let Some(comb) = combine {
            // The combine block folds each copy's register in turn:
            // `dot += v` ⇒ `dot += v__0; … ; dot += v__{u-1}` — sequential
            // applications of the reducer, one ordered step.
            let mut folded: Vec<Cmd> = Vec::new();
            for c in 0..u {
                let mut sub = Substitution::default();
                sub.exprs
                    .insert(var, add(mul(Expr::var(gvar), u as i64), lo));
                for &l in &locals {
                    sub.renames.insert(l, copy_name(l, c));
                }
                folded.push(sub.cmd_owned(comb));
            }
            new_steps.push(Cmd::Par(folded));
        }

        let body = self.cmd(&Cmd::Par(new_steps));
        Cmd::For {
            var: gvar,
            lo: 0,
            hi: groups as i64,
            unroll: 1,
            body: Arc::new(body),
            combine: None,
            span,
        }
    }

    fn fresh_name(&mut self, base: Id) -> Id {
        self.fresh += 1;
        Symbol::intern(&format!("{base}__g{}", self.fresh))
    }
}

fn copy_name(base: Id, copy: u64) -> Id {
    Symbol::intern(&format!("{base}__u{copy}"))
}

/// Names bound by `let`/`view` at the top level of a loop body.
fn top_level_lets(body: &Cmd) -> Vec<Id> {
    let mut out = Vec::new();
    let mut stack = vec![body];
    while let Some(c) = stack.pop() {
        match c {
            Cmd::Seq(cs) | Cmd::Par(cs) => stack.extend(cs.iter()),
            Cmd::Let { name, .. } | Cmd::View { name, .. } => out.push(*name),
            _ => {}
        }
    }
    out
}

/// Capture-avoiding-enough substitution for desugared loop bodies: maps
/// iterator variables to expressions and renames body-local binders.
///
/// The rewriter is **copy-on-write**: every method returns `None` when
/// the subtree is unaffected, and the `*_arc` wrappers turn that into an
/// `Arc::clone` of the original node. The k unrolled copies of a loop
/// body therefore share every subtree that mentions neither the
/// iterator nor a per-copy local — no deep clones.
#[derive(Default)]
struct Substitution {
    exprs: SymbolMap<Expr>,
    renames: SymbolMap<Id>,
}

impl Substitution {
    fn name(&self, n: Id) -> Id {
        self.renames.get(&n).copied().unwrap_or(n)
    }

    /// Rewrite a command into an owned value (for callers that splice the
    /// result into a new `Vec<Cmd>`). Unchanged subtrees cost a shallow
    /// clone: child links are `Arc`, so no recursion into shared nodes.
    fn cmd_owned(&self, c: &Cmd) -> Cmd {
        self.cmd(c).unwrap_or_else(|| c.clone())
    }

    fn cmd_arc(&self, c: &Arc<Cmd>) -> Arc<Cmd> {
        match self.cmd(c) {
            Some(new) => Arc::new(new),
            None => Arc::clone(c),
        }
    }

    fn expr_arc(&self, e: &Arc<Expr>) -> Arc<Expr> {
        match self.expr(e) {
            Some(new) => Arc::new(new),
            None => Arc::clone(e),
        }
    }

    /// Rewrite a slice of commands; `None` when every element is
    /// unchanged.
    fn cmds(&self, cs: &[Cmd]) -> Option<Vec<Cmd>> {
        let rewritten: Vec<Option<Cmd>> = cs.iter().map(|c| self.cmd(c)).collect();
        if rewritten.iter().all(Option::is_none) {
            return None;
        }
        Some(
            rewritten
                .into_iter()
                .zip(cs)
                .map(|(new, old)| new.unwrap_or_else(|| old.clone()))
                .collect(),
        )
    }

    /// Rewrite a slice of expressions; `None` when every element is
    /// unchanged.
    fn exprs(&self, es: &[Expr]) -> Option<Vec<Expr>> {
        let rewritten: Vec<Option<Expr>> = es.iter().map(|e| self.expr(e)).collect();
        if rewritten.iter().all(Option::is_none) {
            return None;
        }
        Some(
            rewritten
                .into_iter()
                .zip(es)
                .map(|(new, old)| new.unwrap_or_else(|| old.clone()))
                .collect(),
        )
    }

    /// Rewrite a command; `None` when the subtree is unaffected.
    fn cmd(&self, c: &Cmd) -> Option<Cmd> {
        match c {
            Cmd::Skip => None,
            Cmd::Seq(cs) => self.cmds(cs).map(Cmd::Seq),
            Cmd::Par(cs) => self.cmds(cs).map(Cmd::Par),
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => {
                let new_name = self.name(*name);
                let new_init = init.as_ref().map(|e| self.expr(e));
                if new_name == *name && !matches!(new_init, Some(Some(_))) {
                    return None;
                }
                Some(Cmd::Let {
                    name: new_name,
                    ty: ty.clone(),
                    init: match (init, new_init) {
                        (_, Some(Some(e))) => Some(e),
                        (old, _) => old.clone(),
                    },
                    span: *span,
                })
            }
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => {
                let (new_name, new_mem) = (self.name(*name), self.name(*mem));
                let new_kind = match kind {
                    ViewKind::Suffix { offsets } => {
                        self.exprs(offsets).map(|o| ViewKind::Suffix { offsets: o })
                    }
                    ViewKind::Shift { offsets } => {
                        self.exprs(offsets).map(|o| ViewKind::Shift { offsets: o })
                    }
                    _ => None,
                };
                if new_name == *name && new_mem == *mem && new_kind.is_none() {
                    return None;
                }
                Some(Cmd::View {
                    name: new_name,
                    mem: new_mem,
                    kind: new_kind.unwrap_or_else(|| kind.clone()),
                    span: *span,
                })
            }
            Cmd::Assign { name, rhs, span } => {
                let new_name = self.name(*name);
                let new_rhs = self.expr(rhs);
                if new_name == *name && new_rhs.is_none() {
                    return None;
                }
                Some(Cmd::Assign {
                    name: new_name,
                    rhs: new_rhs.unwrap_or_else(|| rhs.clone()),
                    span: *span,
                })
            }
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => {
                let new_mem = self.name(*mem);
                let new_bank = phys_bank.as_ref().map(|b| self.expr_arc(b));
                let new_idxs = self.exprs(idxs);
                let new_rhs = self.expr(rhs);
                let bank_changed = matches!(
                    (&new_bank, phys_bank),
                    (Some(n), Some(o)) if !Arc::ptr_eq(n, o)
                );
                if new_mem == *mem && !bank_changed && new_idxs.is_none() && new_rhs.is_none() {
                    return None;
                }
                Some(Cmd::Store {
                    mem: new_mem,
                    phys_bank: new_bank,
                    idxs: new_idxs.unwrap_or_else(|| idxs.clone()),
                    rhs: new_rhs.unwrap_or_else(|| rhs.clone()),
                    span: *span,
                })
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => {
                let new_target = self.name(*target);
                let new_idxs = self.exprs(target_idxs);
                let new_rhs = self.expr(rhs);
                if new_target == *target && new_idxs.is_none() && new_rhs.is_none() {
                    return None;
                }
                Some(Cmd::Reduce {
                    target: new_target,
                    target_idxs: new_idxs.unwrap_or_else(|| target_idxs.clone()),
                    op: *op,
                    rhs: new_rhs.unwrap_or_else(|| rhs.clone()),
                    span: *span,
                })
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let new_cond = self.expr(cond);
                let new_then = self.cmd_arc(then_branch);
                let new_else = else_branch.as_ref().map(|e| self.cmd_arc(e));
                let branches_changed = !Arc::ptr_eq(&new_then, then_branch)
                    || matches!((&new_else, else_branch), (Some(n), Some(o)) if !Arc::ptr_eq(n, o));
                if new_cond.is_none() && !branches_changed {
                    return None;
                }
                Some(Cmd::If {
                    cond: new_cond.unwrap_or_else(|| cond.clone()),
                    then_branch: new_then,
                    else_branch: new_else,
                    span: *span,
                })
            }
            Cmd::While { cond, body, span } => {
                let new_cond = self.expr(cond);
                let new_body = self.cmd_arc(body);
                if new_cond.is_none() && Arc::ptr_eq(&new_body, body) {
                    return None;
                }
                Some(Cmd::While {
                    cond: new_cond.unwrap_or_else(|| cond.clone()),
                    body: new_body,
                    span: *span,
                })
            }
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => {
                let new_var = self.name(*var);
                let new_body = self.cmd_arc(body);
                let new_comb = combine.as_ref().map(|c| self.cmd_arc(c));
                let changed = new_var != *var
                    || !Arc::ptr_eq(&new_body, body)
                    || matches!((&new_comb, combine), (Some(n), Some(o)) if !Arc::ptr_eq(n, o));
                if !changed {
                    return None;
                }
                Some(Cmd::For {
                    var: new_var,
                    lo: *lo,
                    hi: *hi,
                    unroll: *unroll,
                    body: new_body,
                    combine: new_comb,
                    span: *span,
                })
            }
            Cmd::Expr(e) => self.expr(e).map(Cmd::Expr),
        }
    }

    /// Rewrite an expression; `None` when the subtree is unaffected.
    fn expr(&self, e: &Expr) -> Option<Expr> {
        match e {
            Expr::Var { name, span } => {
                if let Some(repl) = self.exprs.get(name) {
                    return Some(repl.clone());
                }
                let new_name = self.name(*name);
                if new_name == *name {
                    None
                } else {
                    Some(Expr::Var {
                        name: new_name,
                        span: *span,
                    })
                }
            }
            Expr::Bin { op, lhs, rhs, span } => {
                let (nl, nr) = (self.expr(lhs), self.expr(rhs));
                if nl.is_none() && nr.is_none() {
                    return None;
                }
                Some(Expr::Bin {
                    op: *op,
                    lhs: match nl {
                        Some(l) => Arc::new(l),
                        None => Arc::clone(lhs),
                    },
                    rhs: match nr {
                        Some(r) => Arc::new(r),
                        None => Arc::clone(rhs),
                    },
                    span: *span,
                })
            }
            Expr::Un { op, arg, span } => self.expr(arg).map(|a| Expr::Un {
                op: *op,
                arg: Arc::new(a),
                span: *span,
            }),
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => {
                let new_mem = self.name(*mem);
                let new_bank = phys_bank.as_ref().map(|b| self.expr_arc(b));
                let new_idxs = self.exprs(idxs);
                let bank_changed = matches!(
                    (&new_bank, phys_bank),
                    (Some(n), Some(o)) if !Arc::ptr_eq(n, o)
                );
                if new_mem == *mem && !bank_changed && new_idxs.is_none() {
                    return None;
                }
                Some(Expr::Access {
                    mem: new_mem,
                    phys_bank: new_bank,
                    idxs: new_idxs.unwrap_or_else(|| idxs.clone()),
                    span: *span,
                })
            }
            Expr::Call { func, args, span } => self.exprs(args).map(|a| Expr::Call {
                func: *func,
                args: a,
                span: *span,
            }),
            _ => None,
        }
    }
}

/// The type a view exposes (mirrors the checker's computation).
fn view_type(parent: &MemType, kind: &ViewKind) -> MemType {
    let dims = match kind {
        ViewKind::Shrink { factors } => parent
            .dims
            .iter()
            .zip(factors)
            .map(|(d, f)| Dim {
                size: d.size,
                banks: d.banks / f.max(&1),
            })
            .collect(),
        ViewKind::Suffix { .. } | ViewKind::Shift { .. } => parent.dims.clone(),
        ViewKind::Split { factor } => {
            let d = parent.dims.first().copied().unwrap_or(Dim::flat(1));
            let f = (*factor).max(1);
            vec![
                Dim { size: f, banks: f },
                Dim {
                    size: d.size / f,
                    banks: (d.banks / f).max(1),
                },
            ]
        }
    };
    MemType {
        elem: Arc::clone(&parent.elem),
        ports: parent.ports,
        dims,
    }
}

// Expression constructors used by the rewrites.
fn add(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Add,
        lhs: Arc::new(a),
        rhs: Arc::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn mul(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Mul,
        lhs: Arc::new(a),
        rhs: Arc::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn div(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Div,
        lhs: Arc::new(a),
        rhs: Arc::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn modulo(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Mod,
        lhs: Arc::new(a),
        rhs: Arc::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

trait IntoExpr {
    fn into_expr(self) -> Expr;
}

impl IntoExpr for Expr {
    fn into_expr(self) -> Expr {
        self
    }
}

impl IntoExpr for i64 {
    fn into_expr(self) -> Expr {
        Expr::int(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{interpret_with, InterpOptions, Outcome};
    use crate::parser::parse;
    use std::collections::HashMap as Map;

    /// Interpret source and its desugaring (unchecked — desugared output is
    /// not meant to re-typecheck) and compare final states.
    fn agree(src: &str) -> Outcome {
        let p = parse(src).unwrap();
        let d = desugar(&p);
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        let o1 = interpret_with(&p, &opts, &Map::new()).unwrap();
        let o2 = interpret_with(&d, &opts, &Map::new()).unwrap_or_else(|e| {
            panic!(
                "desugared program failed: {e}\n{}",
                crate::pretty::program(&d)
            )
        });
        assert_eq!(
            o1.mems,
            o2.mems,
            "memories diverged\n{}",
            crate::pretty::program(&d)
        );
        o1
    }

    #[test]
    fn unroll_expansion_matches() {
        agree(
            "let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := i * 3; }",
        );
    }

    #[test]
    fn unroll_with_ordered_body_matches() {
        agree(
            "let A: bit<32>[8 bank 2]; let B: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 {
               let x = i * 2
               ---
               A[i] := x
               ---
               B[i] := A[i] + 1;
             }",
        );
    }

    #[test]
    fn combine_expansion_matches() {
        let o = agree(
            "let A: bit<32>[8 bank 4]; let out: bit<32>[1];
             for (let i = 0..8) unroll 4 { A[i] := i; }
             ---
             for (let i = 0..8) unroll 4 {
               let v = A[i];
             } combine {
               out[0] += v;
             }",
        );
        assert_eq!(o.mems["out"][0], crate::interp::Value::Int(28));
    }

    #[test]
    fn shrink_view_inlined() {
        agree(
            "let A: bit<32>[8 bank 4];
             for (let i = 0..8) unroll 4 { A[i] := i + 100; }
             ---
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }",
        );
    }

    #[test]
    fn suffix_and_shift_views_inlined() {
        agree(
            "let A: bit<32>{4}[8 bank 2]; let out: bit<32>[4];
             for (let i = 0..8) unroll 2 { A[i] := i * i; }
             ---
             for (let g = 0..4) {
               view s = suffix A[by 2*g];
               out[g] := s[0] + s[1];
             }",
        );
    }

    #[test]
    fn split_view_inlined() {
        agree(
            "let A: bit<32>[12 bank 4]; let out: bit<32>[12];
             for (let i = 0..12) { A[i] := i * 7; }
             ---
             view sp = split A[by 2];
             for (let i = 0..6) unroll 2 {
               for (let j = 0..2) unroll 2 {
                 let v = sp[j][i];
               } combine {
                 out[i] += v;
               }
             }",
        );
    }

    #[test]
    fn nested_unrolled_loops_match() {
        agree(
            "let M: bit<32>[4 bank 2][6 bank 3];
             for (let i = 0..4) unroll 2 {
               for (let j = 0..6) unroll 3 {
                 M[i][j] := i * 10 + j;
               }
             }",
        );
    }

    #[test]
    fn inline_views_keeps_unroll() {
        let p = parse(
            "let A: bit<32>[8 bank 4];
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }",
        )
        .unwrap();
        let d = inline_views(&p);
        match &d.body {
            Cmd::Seq(v) => {
                assert!(matches!(v[1], Cmd::Skip), "view erased");
                match &v[2] {
                    Cmd::For {
                        unroll: 2, body, ..
                    } => match &**body {
                        Cmd::Let {
                            init: Some(Expr::Access { mem, .. }),
                            ..
                        } => {
                            assert_eq!(*mem, "A", "access redirected to the root memory");
                        }
                        other => panic!("unexpected body {other:?}"),
                    },
                    other => panic!("unexpected loop {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Functional agreement under the unchecked interpreter.
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        let o1 = interpret_with(&p, &opts, &Map::new()).unwrap();
        let o2 = interpret_with(&d, &opts, &Map::new()).unwrap();
        assert_eq!(o1.mems, o2.mems);
    }

    #[test]
    fn plain_loops_untouched() {
        let p = parse("let A: bit<32>[4]; for (let i = 0..4) { A[i] := i; }").unwrap();
        let d = desugar(&p);
        assert!(matches!(
            d.body,
            Cmd::Seq(ref v) if matches!(v[1], Cmd::For { unroll: 1, combine: None, .. })
        ));
    }

    #[test]
    fn desugared_loop_iterates_groups() {
        let p = parse(
            "let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := 1; }",
        )
        .unwrap();
        let d = desugar(&p);
        match &d.body {
            Cmd::Seq(v) => match &v[1] {
                Cmd::For {
                    lo: 0,
                    hi: 4,
                    unroll: 1,
                    ..
                } => {}
                other => panic!("unexpected loop shape: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn substitution_shares_unaffected_subtrees() {
        // A subtree that mentions neither the iterator nor a body-local
        // must come back as the *same* Arc allocation, not a copy.
        let p = parse(
            "let A: bit<32>[4]; let B: bit<32>[4];
             for (let j = 0..4) { if (B[0] > 2) { A[0] := 1; } }",
        )
        .unwrap();
        let body = match &p.body {
            Cmd::Seq(v) => match &v[2] {
                Cmd::For { body, .. } => Arc::clone(body),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        let mut sub = Substitution::default();
        sub.exprs.insert(Symbol::intern("j"), Expr::int(7));
        // `j` is not mentioned anywhere in the body: the rewrite is a no-op
        // and the arc is shared.
        let out = sub.cmd_arc(&body);
        assert!(Arc::ptr_eq(&out, &body), "unchanged body must be shared");
    }

    #[test]
    fn substitution_rewrites_only_touched_branches() {
        let p = parse("let A: bit<32>[8]; A[i] := B[0] + i;").unwrap();
        let (store_idxs, rhs) = match &p.body {
            Cmd::Seq(v) => match &v[1] {
                Cmd::Store { idxs, rhs, .. } => (idxs.clone(), rhs.clone()),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        };
        let mut sub = Substitution::default();
        sub.exprs.insert(Symbol::intern("i"), Expr::int(3));
        // The index mentions `i`: rewritten.
        assert!(sub.exprs(&store_idxs).is_some());
        // In `B[0] + i`, the left operand is untouched and must be shared
        // by pointer with the original.
        let new_rhs = sub.expr(&rhs).expect("rhs mentions `i`");
        match (&rhs, &new_rhs) {
            (Expr::Bin { lhs: old, .. }, Expr::Bin { lhs: new, .. }) => {
                assert!(Arc::ptr_eq(old, new), "untouched operand must be shared");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
