//! Desugaring of surface constructs (§4.5 of the paper).
//!
//! Two elaborations are performed, producing a program with the same
//! functional behaviour (tested by differential interpretation):
//!
//! 1. **Loop unrolling** — `for (let i = 0..m) unroll k { c1 --- c2 }`
//!    becomes a sequential loop over `m/k` iteration groups whose body
//!    composes the `k` copies of each logical time step side by side
//!    (the paper's lockstep semantics), substituting `i ↦ k·g + c + lo`
//!    and freshening body-local names per copy. `combine` blocks are
//!    appended as a final ordered step with reducers folded over the
//!    per-copy registers.
//! 2. **View inlining** — accesses through `shrink`/`suffix`/`shift`/
//!    `split` views are rewritten to direct accesses on the underlying
//!    memory using the index arithmetic of §3.6.
//!
//! The output is meant for *execution and lowering*, not re-type-checking:
//! inlined index expressions like `A[2*g + 1]` are exactly the forms the
//! surface type system rejects.

use std::collections::HashMap;

use crate::ast::*;
use crate::span::Span;

/// Desugar a program: unroll loops and inline views.
pub fn desugar(prog: &Program) -> Program {
    desugar_with(prog, true)
}

/// Inline views only, leaving `for … unroll k` loops (and `combine`
/// blocks) intact. Used by backends that keep unrolling as a loop
/// attribute (HLS C++ pragmas, the hls-sim IR).
pub fn inline_views(prog: &Program) -> Program {
    desugar_with(prog, false)
}

fn desugar_with(prog: &Program, unroll_loops: bool) -> Program {
    let mut d = Desugarer {
        unroll_loops,
        ..Desugarer::default()
    };
    Program {
        decls: prog.decls.clone(),
        defs: prog
            .defs
            .iter()
            .map(|f| FuncDef {
                name: f.name.clone(),
                params: f.params.clone(),
                body: {
                    let mut fd = Desugarer {
                        unroll_loops,
                        ..Desugarer::default()
                    };
                    for p in &f.params {
                        if let Type::Mem(m) = &p.ty {
                            fd.mems.insert(p.name.clone(), MemInfo::Direct(m.clone()));
                        }
                    }
                    fd.cmd(&f.body)
                },
                span: f.span,
            })
            .collect(),
        body: {
            for dec in &prog.decls {
                d.mems
                    .insert(dec.name.clone(), MemInfo::Direct(dec.ty.clone()));
            }
            d.cmd(&prog.body)
        },
    }
}

#[derive(Debug, Clone)]
enum MemInfo {
    Direct(MemType),
    View {
        parent: Id,
        ty: MemType,
        kind: ViewKind,
    },
}

impl MemInfo {
    fn ty(&self) -> &MemType {
        match self {
            MemInfo::Direct(t) => t,
            MemInfo::View { ty, .. } => ty,
        }
    }
}

#[derive(Default)]
struct Desugarer {
    mems: HashMap<Id, MemInfo>,
    fresh: u64,
    unroll_loops: bool,
}

impl Desugarer {
    fn cmd(&mut self, c: &Cmd) -> Cmd {
        match c {
            Cmd::Skip => Cmd::Skip,
            Cmd::Seq(cs) => Cmd::Seq(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Par(cs) => Cmd::Par(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => {
                if let Some(Type::Mem(m)) = ty {
                    self.mems.insert(name.clone(), MemInfo::Direct(m.clone()));
                }
                Cmd::Let {
                    name: name.clone(),
                    ty: ty.clone(),
                    init: init.as_ref().map(|e| self.expr(e)),
                    span: *span,
                }
            }
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => {
                // Record and erase: accesses are rewritten at use sites.
                let parent_ty = self
                    .mems
                    .get(mem)
                    .map(|i| i.ty().clone())
                    .unwrap_or(MemType {
                        elem: Box::new(Type::Float),
                        ports: 1,
                        dims: vec![Dim::flat(1)],
                    });
                let ty = view_type(&parent_ty, kind);
                let kind = match kind {
                    ViewKind::Suffix { offsets } => ViewKind::Suffix {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    ViewKind::Shift { offsets } => ViewKind::Shift {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    other => other.clone(),
                };
                self.mems.insert(
                    name.clone(),
                    MemInfo::View {
                        parent: mem.clone(),
                        ty,
                        kind,
                    },
                );
                // Views cost no state; they disappear in the core language.
                let _ = span;
                Cmd::Skip
            }
            Cmd::Assign { name, rhs, span } => Cmd::Assign {
                name: name.clone(),
                rhs: self.expr(rhs),
                span: *span,
            },
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => {
                let rhs = self.expr(rhs);
                let (mem, idxs) = self.rewrite_access(mem, idxs);
                Cmd::Store {
                    mem,
                    phys_bank: phys_bank.as_ref().map(|b| Box::new(self.expr(b))),
                    idxs,
                    rhs,
                    span: *span,
                }
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => {
                let rhs = self.expr(rhs);
                let (target, target_idxs) = if target_idxs.is_empty() {
                    (target.clone(), Vec::new())
                } else {
                    self.rewrite_access(target, target_idxs)
                };
                Cmd::Reduce {
                    target,
                    target_idxs,
                    op: *op,
                    rhs,
                    span: *span,
                }
            }
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Cmd::If {
                cond: self.expr(cond),
                then_branch: Box::new(self.cmd(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.cmd(e))),
                span: *span,
            },
            Cmd::While { cond, body, span } => Cmd::While {
                cond: self.expr(cond),
                body: Box::new(self.cmd(body)),
                span: *span,
            },
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => self.desugar_for(var, *lo, *hi, *unroll, body, combine.as_deref(), *span),
            Cmd::Expr(e) => Cmd::Expr(self.expr(e)),
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => {
                let idxs: Vec<Expr> = idxs.iter().map(|i| self.expr(i)).collect();
                let (mem, idxs) = self.rewrite_access(&mem.clone(), &idxs);
                Expr::Access {
                    mem,
                    phys_bank: phys_bank.as_ref().map(|b| Box::new(self.expr(b))),
                    idxs,
                    span: *span,
                }
            }
            Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Un { op, arg, span } => Expr::Un {
                op: *op,
                arg: Box::new(self.expr(arg)),
                span: *span,
            },
            Expr::Call { func, args, span } => Expr::Call {
                func: func.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            other => other.clone(),
        }
    }

    /// Rewrite a (possibly view) access into a root-memory access with the
    /// §3.6 index arithmetic applied.
    fn rewrite_access(&mut self, mem: &str, idxs: &[Expr]) -> (Id, Vec<Expr>) {
        let mut name = mem.to_string();
        let mut idxs: Vec<Expr> = idxs.to_vec();
        loop {
            let info = match self.mems.get(&name) {
                Some(i) => i.clone(),
                None => return (name, idxs),
            };
            match info {
                MemInfo::Direct(_) => return (name, idxs),
                MemInfo::View { parent, ty, kind } => {
                    idxs = match &kind {
                        // sh[i] compiles to A[i].
                        ViewKind::Shrink { .. } => idxs,
                        // v[i] compiles to M[e + i].
                        ViewKind::Suffix { offsets } | ViewKind::Shift { offsets } => idxs
                            .iter()
                            .zip(offsets)
                            .map(|(i, o)| add(o.clone(), i.clone()))
                            .collect(),
                        // sp[i][j] → M[(j / b)·B + i·b + j mod b].
                        ViewKind::Split { factor } => {
                            let parent_banks = self
                                .mems
                                .get(&parent)
                                .map(|p| p.ty().dims[0].banks)
                                .unwrap_or(ty.dims[0].banks * ty.dims[1].banks);
                            let b = (parent_banks / factor).max(1) as i64;
                            let (i, j) = (idxs[0].clone(), idxs[1].clone());
                            let quot = mul(div(j.clone(), b), parent_banks as i64);
                            let mid = mul(i, b);
                            let rem = modulo(j, b);
                            vec![add(add(quot, mid), rem)]
                        }
                    };
                    name = parent;
                }
            }
        }
    }

    /// The lockstep unrolling of §3.4 / §4.5.
    #[allow(clippy::too_many_arguments)]
    fn desugar_for(
        &mut self,
        var: &str,
        lo: i64,
        hi: i64,
        unroll: u64,
        body: &Cmd,
        combine: Option<&Cmd>,
        span: Span,
    ) -> Cmd {
        if !self.unroll_loops || (unroll <= 1 && combine.is_none()) {
            return Cmd::For {
                var: var.to_string(),
                lo,
                hi,
                unroll: if self.unroll_loops { 1 } else { unroll },
                body: Box::new(self.cmd(body)),
                combine: combine.map(|c| Box::new(self.cmd(c))),
                span,
            };
        }
        let u = unroll.max(1);
        let trips = (hi - lo).max(0) as u64;
        let groups = trips / u;
        let gvar = self.fresh_name(var);

        // Names bound at the top level of the body become per-copy copies.
        let locals = top_level_lets(body);

        let steps: Vec<&Cmd> = match body {
            Cmd::Par(steps) => steps.iter().collect(),
            other => vec![other],
        };

        let mut new_steps: Vec<Cmd> = Vec::new();
        for step in steps {
            let copies: Vec<Cmd> = (0..u)
                .map(|c| {
                    // i ↦ u·g + c + lo, body-locals freshened per copy.
                    let mut sub = Substitution::new();
                    sub.exprs.insert(
                        var.to_string(),
                        add(mul(Expr::var(&gvar), u as i64), lo + c as i64),
                    );
                    for l in &locals {
                        sub.renames.insert(l.clone(), copy_name(l, c));
                    }
                    sub.cmd(step)
                })
                .collect();
            new_steps.push(Cmd::Seq(copies));
        }
        if let Some(comb) = combine {
            // The combine block folds each copy's register in turn:
            // `dot += v` ⇒ `dot += v__0; … ; dot += v__{u-1}` — sequential
            // applications of the reducer, one ordered step.
            let mut folded: Vec<Cmd> = Vec::new();
            for c in 0..u {
                let mut sub = Substitution::new();
                sub.exprs
                    .insert(var.to_string(), add(mul(Expr::var(&gvar), u as i64), lo));
                for l in &locals {
                    sub.renames.insert(l.clone(), copy_name(l, c));
                }
                folded.push(sub.cmd(comb));
            }
            new_steps.push(Cmd::Par(folded));
        }

        let body = self.cmd(&Cmd::Par(new_steps));
        Cmd::For {
            var: gvar,
            lo: 0,
            hi: groups as i64,
            unroll: 1,
            body: Box::new(body),
            combine: None,
            span,
        }
    }

    fn fresh_name(&mut self, base: &str) -> String {
        self.fresh += 1;
        format!("{base}__g{}", self.fresh)
    }
}

fn copy_name(base: &str, copy: u64) -> String {
    format!("{base}__u{copy}")
}

/// Names bound by `let`/`view` at the top level of a loop body.
fn top_level_lets(body: &Cmd) -> Vec<Id> {
    let mut out = Vec::new();
    let mut stack = vec![body];
    while let Some(c) = stack.pop() {
        match c {
            Cmd::Seq(cs) | Cmd::Par(cs) => stack.extend(cs.iter()),
            Cmd::Let { name, .. } | Cmd::View { name, .. } => out.push(name.clone()),
            _ => {}
        }
    }
    out
}

/// Capture-avoiding-enough substitution for desugared loop bodies: maps
/// iterator variables to expressions and renames body-local binders.
struct Substitution {
    exprs: HashMap<Id, Expr>,
    renames: HashMap<Id, Id>,
}

impl Substitution {
    fn new() -> Self {
        Substitution {
            exprs: HashMap::new(),
            renames: HashMap::new(),
        }
    }

    fn name(&self, n: &str) -> Id {
        self.renames
            .get(n)
            .cloned()
            .unwrap_or_else(|| n.to_string())
    }

    fn cmd(&mut self, c: &Cmd) -> Cmd {
        match c {
            Cmd::Skip => Cmd::Skip,
            Cmd::Seq(cs) => Cmd::Seq(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Par(cs) => Cmd::Par(cs.iter().map(|c| self.cmd(c)).collect()),
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => Cmd::Let {
                name: self.name(name),
                ty: ty.clone(),
                init: init.as_ref().map(|e| self.expr(e)),
                span: *span,
            },
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => Cmd::View {
                name: self.name(name),
                mem: self.name(mem),
                kind: match kind {
                    ViewKind::Suffix { offsets } => ViewKind::Suffix {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    ViewKind::Shift { offsets } => ViewKind::Shift {
                        offsets: offsets.iter().map(|o| self.expr(o)).collect(),
                    },
                    other => other.clone(),
                },
                span: *span,
            },
            Cmd::Assign { name, rhs, span } => Cmd::Assign {
                name: self.name(name),
                rhs: self.expr(rhs),
                span: *span,
            },
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => Cmd::Store {
                mem: self.name(mem),
                phys_bank: phys_bank.as_ref().map(|b| Box::new(self.expr(b))),
                idxs: idxs.iter().map(|i| self.expr(i)).collect(),
                rhs: self.expr(rhs),
                span: *span,
            },
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => Cmd::Reduce {
                target: self.name(target),
                target_idxs: target_idxs.iter().map(|i| self.expr(i)).collect(),
                op: *op,
                rhs: self.expr(rhs),
                span: *span,
            },
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => Cmd::If {
                cond: self.expr(cond),
                then_branch: Box::new(self.cmd(then_branch)),
                else_branch: else_branch.as_ref().map(|e| Box::new(self.cmd(e))),
                span: *span,
            },
            Cmd::While { cond, body, span } => Cmd::While {
                cond: self.expr(cond),
                body: Box::new(self.cmd(body)),
                span: *span,
            },
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => Cmd::For {
                var: self.name(var),
                lo: *lo,
                hi: *hi,
                unroll: *unroll,
                body: Box::new(self.cmd(body)),
                combine: combine.as_ref().map(|c| Box::new(self.cmd(c))),
                span: *span,
            },
            Cmd::Expr(e) => Cmd::Expr(self.expr(e)),
        }
    }

    fn expr(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Var { name, span } => match self.exprs.get(name) {
                Some(repl) => repl.clone(),
                None => Expr::Var {
                    name: self.name(name),
                    span: *span,
                },
            },
            Expr::Bin { op, lhs, rhs, span } => Expr::Bin {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
                span: *span,
            },
            Expr::Un { op, arg, span } => Expr::Un {
                op: *op,
                arg: Box::new(self.expr(arg)),
                span: *span,
            },
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => Expr::Access {
                mem: self.name(mem),
                phys_bank: phys_bank.as_ref().map(|b| Box::new(self.expr(b))),
                idxs: idxs.iter().map(|i| self.expr(i)).collect(),
                span: *span,
            },
            Expr::Call { func, args, span } => Expr::Call {
                func: func.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
                span: *span,
            },
            other => other.clone(),
        }
    }
}

/// The type a view exposes (mirrors the checker's computation).
fn view_type(parent: &MemType, kind: &ViewKind) -> MemType {
    let dims = match kind {
        ViewKind::Shrink { factors } => parent
            .dims
            .iter()
            .zip(factors)
            .map(|(d, f)| Dim {
                size: d.size,
                banks: d.banks / f.max(&1),
            })
            .collect(),
        ViewKind::Suffix { .. } | ViewKind::Shift { .. } => parent.dims.clone(),
        ViewKind::Split { factor } => {
            let d = parent.dims.first().copied().unwrap_or(Dim::flat(1));
            let f = (*factor).max(1);
            vec![
                Dim { size: f, banks: f },
                Dim {
                    size: d.size / f,
                    banks: (d.banks / f).max(1),
                },
            ]
        }
    };
    MemType {
        elem: parent.elem.clone(),
        ports: parent.ports,
        dims,
    }
}

// Expression constructors used by the rewrites.
fn add(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Add,
        lhs: Box::new(a),
        rhs: Box::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn mul(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Mul,
        lhs: Box::new(a),
        rhs: Box::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn div(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Div,
        lhs: Box::new(a),
        rhs: Box::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

fn modulo(a: Expr, b: impl IntoExpr) -> Expr {
    Expr::Bin {
        op: BinOp::Mod,
        lhs: Box::new(a),
        rhs: Box::new(b.into_expr()),
        span: Span::synthetic(),
    }
}

trait IntoExpr {
    fn into_expr(self) -> Expr;
}

impl IntoExpr for Expr {
    fn into_expr(self) -> Expr {
        self
    }
}

impl IntoExpr for i64 {
    fn into_expr(self) -> Expr {
        Expr::int(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{interpret_with, InterpOptions, Outcome};
    use crate::parser::parse;
    use std::collections::HashMap as Map;

    /// Interpret source and its desugaring (unchecked — desugared output is
    /// not meant to re-typecheck) and compare final states.
    fn agree(src: &str) -> Outcome {
        let p = parse(src).unwrap();
        let d = desugar(&p);
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        let o1 = interpret_with(&p, &opts, &Map::new()).unwrap();
        let o2 = interpret_with(&d, &opts, &Map::new()).unwrap_or_else(|e| {
            panic!(
                "desugared program failed: {e}\n{}",
                crate::pretty::program(&d)
            )
        });
        assert_eq!(
            o1.mems,
            o2.mems,
            "memories diverged\n{}",
            crate::pretty::program(&d)
        );
        o1
    }

    #[test]
    fn unroll_expansion_matches() {
        agree(
            "let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := i * 3; }",
        );
    }

    #[test]
    fn unroll_with_ordered_body_matches() {
        agree(
            "let A: bit<32>[8 bank 2]; let B: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 {
               let x = i * 2
               ---
               A[i] := x
               ---
               B[i] := A[i] + 1;
             }",
        );
    }

    #[test]
    fn combine_expansion_matches() {
        let o = agree(
            "let A: bit<32>[8 bank 4]; let out: bit<32>[1];
             for (let i = 0..8) unroll 4 { A[i] := i; }
             ---
             for (let i = 0..8) unroll 4 {
               let v = A[i];
             } combine {
               out[0] += v;
             }",
        );
        assert_eq!(o.mems["out"][0], crate::interp::Value::Int(28));
    }

    #[test]
    fn shrink_view_inlined() {
        agree(
            "let A: bit<32>[8 bank 4];
             for (let i = 0..8) unroll 4 { A[i] := i + 100; }
             ---
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }",
        );
    }

    #[test]
    fn suffix_and_shift_views_inlined() {
        agree(
            "let A: bit<32>{4}[8 bank 2]; let out: bit<32>[4];
             for (let i = 0..8) unroll 2 { A[i] := i * i; }
             ---
             for (let g = 0..4) {
               view s = suffix A[by 2*g];
               out[g] := s[0] + s[1];
             }",
        );
    }

    #[test]
    fn split_view_inlined() {
        agree(
            "let A: bit<32>[12 bank 4]; let out: bit<32>[12];
             for (let i = 0..12) { A[i] := i * 7; }
             ---
             view sp = split A[by 2];
             for (let i = 0..6) unroll 2 {
               for (let j = 0..2) unroll 2 {
                 let v = sp[j][i];
               } combine {
                 out[i] += v;
               }
             }",
        );
    }

    #[test]
    fn nested_unrolled_loops_match() {
        agree(
            "let M: bit<32>[4 bank 2][6 bank 3];
             for (let i = 0..4) unroll 2 {
               for (let j = 0..6) unroll 3 {
                 M[i][j] := i * 10 + j;
               }
             }",
        );
    }

    #[test]
    fn inline_views_keeps_unroll() {
        let p = parse(
            "let A: bit<32>[8 bank 4];
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }",
        )
        .unwrap();
        let d = inline_views(&p);
        match &d.body {
            Cmd::Seq(v) => {
                assert!(matches!(v[1], Cmd::Skip), "view erased");
                match &v[2] {
                    Cmd::For {
                        unroll: 2, body, ..
                    } => match &**body {
                        Cmd::Let {
                            init: Some(Expr::Access { mem, .. }),
                            ..
                        } => {
                            assert_eq!(mem, "A", "access redirected to the root memory");
                        }
                        other => panic!("unexpected body {other:?}"),
                    },
                    other => panic!("unexpected loop {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Functional agreement under the unchecked interpreter.
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        let o1 = interpret_with(&p, &opts, &Map::new()).unwrap();
        let o2 = interpret_with(&d, &opts, &Map::new()).unwrap();
        assert_eq!(o1.mems, o2.mems);
    }

    #[test]
    fn plain_loops_untouched() {
        let p = parse("let A: bit<32>[4]; for (let i = 0..4) { A[i] := i; }").unwrap();
        let d = desugar(&p);
        assert!(matches!(
            d.body,
            Cmd::Seq(ref v) if matches!(v[1], Cmd::For { unroll: 1, combine: None, .. })
        ));
    }

    #[test]
    fn desugared_loop_iterates_groups() {
        let p = parse(
            "let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := 1; }",
        )
        .unwrap();
        let d = desugar(&p);
        match &d.body {
            Cmd::Seq(v) => match &v[1] {
                Cmd::For {
                    lo: 0,
                    hi: 4,
                    unroll: 1,
                    ..
                } => {}
                other => panic!("unexpected loop shape: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }
}
