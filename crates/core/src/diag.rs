//! Structured, thread-safe diagnostics.
//!
//! The long-lived compilation service ([`dahlia-server`]) shares compiler
//! results between worker threads and serializes them over a wire
//! protocol, which needs more structure than a `Display` string: a stable
//! machine-readable *code* per rule, the *phase* that rejected the
//! program, and the source span — all in a type that is `Clone + Send +
//! Sync` so one diagnostic can be cached once and handed to every
//! concurrent requester.
//!
//! [`dahlia-server`]: https://docs.rs/dahlia-server
//!
//! ```
//! use dahlia_core::{parse, typecheck};
//! use dahlia_core::diag::Phase;
//!
//! let p = parse("let A: float[10]; let x = A[0]; A[1] := 1.0;").unwrap();
//! let d = typecheck(&p).unwrap_err().diagnostic();
//! assert_eq!(d.phase, Phase::Check);
//! assert_eq!(d.code, "type/already-consumed");
//! assert!(d.message.contains("A"));
//! ```

use std::fmt;

use crate::error::{Error, TypeErrorKind};
use crate::span::Span;

/// The compiler phase a diagnostic originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// The time-sensitive affine type checker.
    Check,
    /// The checked interpreter.
    Interp,
    /// Not a language phase: an internal failure in the tooling itself
    /// (e.g. a compiler panic caught by the compilation service).
    Internal,
}

impl Phase {
    /// Stable lower-case name, used in protocol payloads and exit codes.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Interp => "interp",
            Phase::Internal => "internal",
        }
    }
}

/// A structured diagnostic: everything a tool (or a wire protocol) needs
/// to report an error without re-parsing a rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which phase rejected the program.
    pub phase: Phase,
    /// Stable machine-readable code, e.g. `type/insufficient-banks`.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Offending source location.
    pub span: Span,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ({}): {}",
            self.span,
            self.phase.name(),
            self.code,
            self.message
        )
    }
}

/// Stable code for each typing rule (kept in sync with
/// [`TypeErrorKind`]; tests enumerate the mapping).
pub fn type_error_code(kind: TypeErrorKind) -> &'static str {
    match kind {
        TypeErrorKind::Unbound => "type/unbound",
        TypeErrorKind::AlreadyDefined => "type/already-defined",
        TypeErrorKind::Mismatch => "type/mismatch",
        TypeErrorKind::MemoryCopy => "type/memory-copy",
        TypeErrorKind::AlreadyConsumed => "type/already-consumed",
        TypeErrorKind::InsufficientBanks => "type/insufficient-banks",
        TypeErrorKind::UnrollBankMismatch => "type/unroll-bank-mismatch",
        TypeErrorKind::WriteConflict => "type/write-conflict",
        TypeErrorKind::InvalidIndex => "type/invalid-index",
        TypeErrorKind::BadAccess => "type/bad-access",
        TypeErrorKind::UnevenBanking => "type/uneven-banking",
        TypeErrorKind::BadView => "type/bad-view",
        TypeErrorKind::LoopDependency => "type/loop-dependency",
        TypeErrorKind::UnevenUnroll => "type/uneven-unroll",
        TypeErrorKind::BadCombine => "type/bad-combine",
        TypeErrorKind::BadCall => "type/bad-call",
    }
}

impl Error {
    /// The phase this error came from.
    pub fn phase(&self) -> Phase {
        match self {
            Error::Lex { .. } => Phase::Lex,
            Error::Parse { .. } => Phase::Parse,
            Error::Type(_) => Phase::Check,
            Error::Interp { .. } => Phase::Interp,
        }
    }

    /// Stable machine-readable code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Lex { .. } => "lex/invalid",
            Error::Parse { .. } => "parse/invalid",
            Error::Type(t) => type_error_code(t.kind),
            Error::Interp { .. } => "interp/runtime",
        }
    }

    /// Convert into a structured diagnostic (cheap; clones the message).
    pub fn diagnostic(&self) -> Diagnostic {
        let message = match self {
            Error::Lex { msg, .. } | Error::Parse { msg, .. } | Error::Interp { msg, .. } => {
                msg.clone()
            }
            Error::Type(t) => t.msg.clone(),
        };
        Diagnostic {
            phase: self.phase(),
            code: self.code(),
            message,
            span: self.span(),
        }
    }
}

// The compilation service caches diagnostics and shares them across
// threads; keep the whole error surface Send + Sync + Clone.
const _: () = {
    const fn assert_shareable<T: Send + Sync + Clone>() {}
    assert_shareable::<Error>();
    assert_shareable::<Diagnostic>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TypeError;

    #[test]
    fn codes_are_stable_and_distinct() {
        let kinds = [
            TypeErrorKind::Unbound,
            TypeErrorKind::AlreadyDefined,
            TypeErrorKind::Mismatch,
            TypeErrorKind::MemoryCopy,
            TypeErrorKind::AlreadyConsumed,
            TypeErrorKind::InsufficientBanks,
            TypeErrorKind::UnrollBankMismatch,
            TypeErrorKind::WriteConflict,
            TypeErrorKind::InvalidIndex,
            TypeErrorKind::BadAccess,
            TypeErrorKind::UnevenBanking,
            TypeErrorKind::BadView,
            TypeErrorKind::LoopDependency,
            TypeErrorKind::UnevenUnroll,
            TypeErrorKind::BadCombine,
            TypeErrorKind::BadCall,
        ];
        let codes: std::collections::HashSet<&str> =
            kinds.iter().map(|k| type_error_code(*k)).collect();
        assert_eq!(codes.len(), kinds.len(), "codes must be distinct");
        assert!(codes.iter().all(|c| c.starts_with("type/")));
    }

    #[test]
    fn diagnostic_carries_structure() {
        let e = Error::from(TypeError::new(
            TypeErrorKind::InsufficientBanks,
            "needs 4 banks",
            Span::new(3, 7, 2, 1),
        ));
        let d = e.diagnostic();
        assert_eq!(d.phase, Phase::Check);
        assert_eq!(d.code, "type/insufficient-banks");
        assert_eq!(d.span.line, 2);
        assert_eq!(
            d.to_string(),
            "[2:1] check (type/insufficient-banks): needs 4 banks"
        );
    }

    #[test]
    fn parse_errors_map_to_parse_phase() {
        let e = Error::parse("oops", Span::synthetic());
        assert_eq!(e.phase(), Phase::Parse);
        assert_eq!(e.code(), "parse/invalid");
    }
}
