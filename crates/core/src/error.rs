//! Error types for every phase of the Dahlia front end.
//!
//! Dahlia's reason for existing is that *errors replace silently-bad
//! hardware*, so diagnostics carry enough structure for a caller to test
//! which rule fired (see [`TypeErrorKind`]) as well as a human-readable
//! message pointing at the offending source span.

use std::error::Error as StdError;
use std::fmt;

use crate::span::Span;

/// Any error produced while processing a Dahlia program.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lexical error: unexpected character, malformed literal, …
    Lex { msg: String, span: Span },
    /// Syntax error from the parser.
    Parse { msg: String, span: Span },
    /// A violation of the time-sensitive affine type system.
    Type(TypeError),
    /// Runtime error from the checked interpreter (out-of-bounds, dynamic
    /// capability violation, …).
    Interp { msg: String, span: Span },
}

impl Error {
    /// The source span the error points at.
    pub fn span(&self) -> Span {
        match self {
            Error::Lex { span, .. } | Error::Parse { span, .. } | Error::Interp { span, .. } => {
                *span
            }
            Error::Type(t) => t.span,
        }
    }

    /// Shorthand constructor for parse errors.
    pub fn parse(msg: impl Into<String>, span: Span) -> Self {
        Error::Parse {
            msg: msg.into(),
            span,
        }
    }

    /// Shorthand constructor for interpreter errors.
    pub fn interp(msg: impl Into<String>, span: Span) -> Self {
        Error::Interp {
            msg: msg.into(),
            span,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex { msg, span } => write!(f, "[{span}] lexical error: {msg}"),
            Error::Parse { msg, span } => write!(f, "[{span}] parse error: {msg}"),
            Error::Type(t) => write!(f, "{t}"),
            Error::Interp { msg, span } => write!(f, "[{span}] runtime error: {msg}"),
        }
    }
}

impl StdError for Error {}

impl From<TypeError> for Error {
    fn from(t: TypeError) -> Self {
        Error::Type(t)
    }
}

/// A type error together with the rule that fired.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Which typing rule rejected the program.
    pub kind: TypeErrorKind,
    /// Human-readable detail.
    pub msg: String,
    /// Offending location.
    pub span: Span,
}

impl TypeError {
    /// Create a new type error.
    pub fn new(kind: TypeErrorKind, msg: impl Into<String>, span: Span) -> Self {
        TypeError {
            kind,
            msg: msg.into(),
            span,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] type error ({:?}): {}",
            self.span, self.kind, self.msg
        )
    }
}

impl StdError for TypeError {}

/// The individual rules of the affine type system, so tests can assert on
/// *why* a program was rejected — mirroring the paper's error messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeErrorKind {
    /// Use of an undefined variable or memory.
    Unbound,
    /// A name was defined twice in the same scope.
    AlreadyDefined,
    /// Operand/annotation types don't line up.
    Mismatch,
    /// "Error: cannot copy memories." — memories are not first-class values.
    MemoryCopy,
    /// "Error: Previous read consumed A." — not enough ports/banks left in
    /// this logical time step.
    AlreadyConsumed,
    /// "Error: Insufficient banks." — unrolling exceeds the banking factor.
    InsufficientBanks,
    /// Unrolling factor does not match the banking factor (use a shrink
    /// view for lower factors).
    UnrollBankMismatch,
    /// "Error: Insufficient write capabilities." — parallel copies write the
    /// same location.
    WriteConflict,
    /// Index expression is not analyzable (e.g. `A[2*i]`); Dahlia rejects
    /// these instead of synthesizing indirection hardware.
    InvalidIndex,
    /// Access has the wrong number of dimensions or is out of bounds.
    BadAccess,
    /// Banking factor must evenly divide the array dimension.
    UnevenBanking,
    /// Invalid view construction (wrong factor, wrong dimensionality, …).
    BadView,
    /// Cross-iteration dependency in a `for` body (writes to an outer
    /// variable belong in a `combine` block).
    LoopDependency,
    /// Unroll factor must evenly divide the loop trip count.
    UnevenUnroll,
    /// Misuse of a combine register or reducer.
    BadCombine,
    /// Wrong arity or argument type in a function call.
    BadCall,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_kind() {
        let e = Error::from(TypeError::new(
            TypeErrorKind::InsufficientBanks,
            "unrolled access needs 4 banks but `A` has 2",
            Span::new(0, 1, 3, 5),
        ));
        let s = e.to_string();
        assert!(s.contains("3:5"), "{s}");
        assert!(s.contains("InsufficientBanks"), "{s}");
    }

    #[test]
    fn type_error_converts() {
        let t = TypeError::new(TypeErrorKind::Unbound, "x", Span::synthetic());
        let e: Error = t.clone().into();
        assert_eq!(e, Error::Type(t));
    }
}
