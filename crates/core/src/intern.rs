//! Global string interning for identifiers.
//!
//! Every identifier in a Dahlia program — variables, memories, views,
//! functions, loop iterators — is interned once into a process-global
//! table and thereafter carried as a [`Symbol`]: a `Copy` `u32` handle.
//! Equality and hashing are integer operations, scope maps key on a
//! 4-byte value instead of a heap string, and the lexer emits identifier
//! tokens without allocating.
//!
//! The interner is **lock-sharded**: the string → symbol map is split
//! across [`SHARD_COUNT`] mutexes selected by a hash of the string, so
//! concurrent compiles (the server runs one per worker thread) rarely
//! contend. Symbol → string resolution goes through an append-only table
//! under a `RwLock` that writers touch only on a genuinely new string —
//! after warm-up, resolution is an uncontended read lock plus an index.
//!
//! Interned strings live for the process lifetime (they are leaked into
//! `&'static str`). That is the standard compiler-interner trade-off and
//! is bounded by the number of *distinct* identifiers ever seen, not by
//! the number of compiles; symbols are stable within a process but NOT
//! across processes, so anything persisted (see `dahlia-server`'s codec)
//! stores the string and re-interns on decode.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Mutex, OnceLock, RwLock};

/// Number of mutex shards in the string → symbol direction.
pub const SHARD_COUNT: usize = 16;

/// An interned identifier: a `Copy` handle into the global intern table.
///
/// Ordering is by intern id (arrival order), not lexicographic — stable
/// within a process, which is all the checker's capability maps need.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// FNV-1a string hasher for the shard maps: the shard index already
/// cost one FNV pass, and SipHash on short identifiers is the single
/// hottest instruction path in the lexer — a second FNV pass is ~3x
/// cheaper and identifiers are not attacker-controlled hash-DoS input
/// here (a source file is compiled by the submitter's own request).
#[derive(Default, Clone)]
struct StrHasher(u64);

impl Hasher for StrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type ShardMap = HashMap<&'static str, Symbol, BuildHasherDefault<StrHasher>>;

struct Interner {
    shards: [Mutex<ShardMap>; SHARD_COUNT],
    /// Append-only symbol → string table; a symbol's id indexes it.
    strings: RwLock<Vec<&'static str>>,
}

fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| Mutex::new(ShardMap::default())),
        strings: RwLock::new(Vec::new()),
    })
}

/// FNV-1a over the bytes; only used to pick a shard.
fn shard_of(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

impl Symbol {
    /// Intern a string, returning its stable in-process handle. The same
    /// string always yields the same symbol, from any thread.
    pub fn intern(s: &str) -> Symbol {
        let interner = global();
        let mut shard = interner.shards[shard_of(s)].lock().unwrap();
        if let Some(&sym) = shard.get(s) {
            return sym;
        }
        // New string: leak it once, append to the resolution table. The
        // shard lock is held across the append, so double-insertion of
        // one string is impossible; distinct strings in other shards
        // append concurrently under the write lock.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let mut strings = interner.strings.write().unwrap();
        let id = u32::try_from(strings.len()).expect("interner full (2^32 distinct identifiers)");
        strings.push(leaked);
        drop(strings);
        let sym = Symbol(id);
        shard.insert(leaked, sym);
        sym
    }

    /// The interned string. O(1): a read lock and an index.
    pub fn resolve(self) -> &'static str {
        global().strings.read().unwrap()[self.0 as usize]
    }

    /// Alias for [`Symbol::resolve`], for call sites that read better
    /// with string vocabulary.
    pub fn as_str(self) -> &'static str {
        self.resolve()
    }

    /// The raw intern id (diagnostics and tests only — ids are not
    /// stable across processes).
    pub fn id(self) -> u32 {
        self.0
    }
}

/// Occupancy of the process-global intern table.
///
/// Interned strings are never reclaimed (see the module docs), so a
/// long-lived server compiling many distinct identifiers grows this
/// monotonically — the numbers are surfaced in the serving stats /
/// `--metrics` endpoint precisely so operators can watch it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Number of distinct interned strings.
    pub symbols: u64,
    /// Total bytes of leaked string payload.
    pub bytes: u64,
}

/// Current global interner occupancy.
pub fn stats() -> InternStats {
    let strings = global().strings.read().unwrap();
    InternStats {
        symbols: strings.len() as u64,
        bytes: strings.iter().map(|s| s.len() as u64).sum(),
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.resolve())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.resolve())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.resolve() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.resolve() == *other
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.resolve()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.resolve()
    }
}

/// A no-mixing hasher for [`Symbol`] keys: intern ids are already
/// uniformly spread small integers, so a single multiply by a 64-bit
/// odd constant (Fibonacci hashing) beats SipHash by a wide margin in
/// the checker's and interpreter's scope maps.
#[derive(Default, Clone)]
pub struct SymbolHasher(u64);

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u32 writes (derived Hash on compound keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// A `HashMap` keyed by symbols with the cheap [`SymbolHasher`].
pub type SymbolMap<V> = HashMap<Symbol, V, BuildHasherDefault<SymbolHasher>>;

/// A `HashSet` of symbols with the cheap [`SymbolHasher`].
pub type SymbolSet = HashSet<Symbol, BuildHasherDefault<SymbolHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = Symbol::intern("gemm_blocked");
        let b = Symbol::intern("gemm_blocked");
        assert_eq!(a, b);
        // Resolution returns the same leaked allocation both times.
        assert!(std::ptr::eq(a.resolve(), b.resolve()));
        assert_eq!(a.resolve(), "gemm_blocked");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("intern_test_x");
        let b = Symbol::intern("intern_test_y");
        assert_ne!(a, b);
        assert_eq!(a.resolve(), "intern_test_x");
        assert_eq!(b.resolve(), "intern_test_y");
    }

    #[test]
    fn string_comparisons_and_conversions() {
        let s: Symbol = "abc".into();
        assert_eq!(s, "abc");
        assert_eq!("abc", s);
        assert!(s != "abd");
        assert_eq!(s.to_string(), "abc");
        assert_eq!(format!("{s:?}"), "\"abc\"");
        let from_string: Symbol = String::from("abc").into();
        assert_eq!(s, from_string);
    }

    #[test]
    fn symbol_map_round_trips() {
        let mut m: SymbolMap<i32> = SymbolMap::default();
        m.insert("k1".into(), 1);
        m.insert("k2".into(), 2);
        assert_eq!(m[&Symbol::intern("k1")], 1);
        assert_eq!(m[&Symbol::intern("k2")], 2);
        let mut s = SymbolSet::default();
        s.insert("k1".into());
        assert!(s.contains(&Symbol::intern("k1")));
        assert!(!s.contains(&Symbol::intern("k3")));
    }

    #[test]
    fn stats_track_occupancy() {
        let before = stats();
        let name = "occupancy_probe_symbol_xyz";
        let _ = Symbol::intern(name);
        let after = stats();
        assert!(after.symbols > before.symbols);
        assert!(after.bytes >= before.bytes + name.len() as u64);
        // Re-interning the same string adds nothing.
        let _ = Symbol::intern(name);
        assert_eq!(stats(), after);
    }

    #[test]
    fn concurrent_interning_agrees() {
        // Many threads interning an overlapping set of names must all
        // observe identical symbols (single id per string).
        let names: Vec<String> = (0..64).map(|i| format!("conc_{}", i % 16)).collect();
        let results: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let names = &names;
                    scope.spawn(move || names.iter().map(|n| Symbol::intern(n)).collect())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &results[1..] {
            assert_eq!(*w, results[0]);
        }
        for (n, s) in names.iter().zip(&results[0]) {
            assert_eq!(s.resolve(), n);
        }
    }
}
