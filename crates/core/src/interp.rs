//! A checked interpreter for Dahlia surface programs.
//!
//! The interpreter gives Dahlia programs an executable semantics and doubles
//! as a *dynamic capability monitor*: when enabled, it tracks per-bank port
//! usage within each logical time step exactly like the checked operational
//! semantics of §4, so well-typed programs must run without tripping it
//! (tested by property tests — the executable analogue of the soundness
//! theorem).
//!
//! Unrolled loops execute their iteration groups in lockstep: all parallel
//! copies of a logical time step run against the same monitor frame, which
//! is what makes bank conflicts between copies observable.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::Error;
use crate::intern::SymbolMap;
use crate::span::Span;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (all `bit`/`ubit` widths are modelled as `i64`).
    Int(i64),
    /// Floating point (`float` and `double` are both `f64`).
    Float(f64),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Numeric value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(i) => i as f64,
            Value::Float(f) => f,
            Value::Bool(b) => b as i64 as f64,
        }
    }

    /// Numeric value as `i64` (floats truncate).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(i) => i,
            Value::Float(f) => f as i64,
            Value::Bool(b) => b as i64,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Enforce the checked semantics (bank-port capabilities) at runtime.
    pub check_capabilities: bool,
    /// Execution fuel: maximum number of command steps before aborting
    /// (guards against runaway `while` loops).
    pub max_steps: u64,
}

impl Default for InterpOptions {
    fn default() -> Self {
        InterpOptions {
            check_capabilities: true,
            max_steps: 200_000_000,
        }
    }
}

/// Final state of a completed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Outcome {
    /// Contents of every physical memory, flattened row-major.
    pub mems: HashMap<String, Vec<Value>>,
    /// Final values of top-level scalars.
    pub vars: HashMap<String, Value>,
}

/// Run a program with default options and zero-initialized memories.
///
/// # Errors
///
/// Returns [`Error::Interp`] on out-of-bounds accesses, division by zero,
/// dynamic capability violations, fuel exhaustion, or unbound names (the
/// interpreter does not assume the program was type-checked).
pub fn interpret(prog: &Program) -> Result<Outcome, Error> {
    interpret_with(prog, &InterpOptions::default(), &HashMap::new())
}

/// Run a program with explicit options and initial contents for `decl`
/// (interface) memories.
///
/// # Errors
///
/// See [`interpret`].
pub fn interpret_with(
    prog: &Program,
    opts: &InterpOptions,
    inputs: &HashMap<String, Vec<Value>>,
) -> Result<Outcome, Error> {
    let mut m = Machine::new(opts.clone());
    for d in &prog.decls {
        m.alloc(d.name, &d.ty, inputs.get(d.name.as_str()), d.span)?;
    }
    for f in &prog.defs {
        m.funcs.insert(f.name, f.clone());
    }
    m.exec(&prog.body)?;
    Ok(m.finish())
}

/// What a name is bound to at runtime.
#[derive(Debug, Clone)]
enum Slot {
    Val(Value),
    Iter(i64),
    /// Root memory or view over one.
    Mem(MemRt),
    /// Per-copy values of a body variable, visible in `combine`.
    Combine(Vec<Value>),
}

#[derive(Debug, Clone)]
struct MemRt {
    ty: MemType,
    origin: RtOrigin,
}

#[derive(Debug, Clone)]
enum RtOrigin {
    Direct(Id),
    /// View with offsets captured at declaration time.
    View {
        parent: Box<MemRt>,
        op: RtView,
    },
}

#[derive(Debug, Clone)]
enum RtView {
    Shrink,
    /// Per-dimension additive offsets (both `suffix` and `shift`).
    Offset(Vec<i64>),
    /// Split with factor `f`; parent is 1-D.
    Split {
        factor: u64,
    },
}

#[derive(Debug, Clone)]
struct MemData {
    ty: MemType,
    data: Vec<Value>,
}

/// The dynamic capability monitor: port usage per bank per time frame.
///
/// Keys are interned symbols, so the per-access bookkeeping is integer
/// hashing — no string allocation on the interpreter's hot path.
#[derive(Debug, Default)]
struct Monitor {
    enabled: bool,
    /// Port counts per root memory.
    ports: SymbolMap<u32>,
    /// Ports used this frame per (memory, flat bank id).
    used: HashMap<(Id, u64), u32>,
    /// Addresses read this frame (identical reads share a port).
    reads: std::collections::HashSet<(Id, u64)>,
    /// Addresses written this frame (double writes are illegal).
    writes: std::collections::HashSet<(Id, u64)>,
}

impl Monitor {
    fn new_frame(&mut self) {
        self.used.clear();
        self.reads.clear();
        self.writes.clear();
    }

    fn read(&mut self, mem: Id, addr: u64, bank: u64, span: Span) -> Result<(), Error> {
        if !self.enabled {
            return Ok(());
        }
        if self.reads.contains(&(mem, addr)) {
            return Ok(());
        }
        self.consume(mem, bank, span)?;
        self.reads.insert((mem, addr));
        Ok(())
    }

    fn write(&mut self, mem: Id, addr: u64, bank: u64, span: Span) -> Result<(), Error> {
        if !self.enabled {
            return Ok(());
        }
        if !self.writes.insert((mem, addr)) {
            return Err(Error::interp(
                format!(
                    "dynamic write conflict: `{mem}` address {addr} written twice in one time step"
                ),
                span,
            ));
        }
        self.consume(mem, bank, span)
    }

    fn consume(&mut self, mem: Id, bank: u64, span: Span) -> Result<(), Error> {
        let ports = self.ports.get(&mem).copied().unwrap_or(1);
        let used = self.used.entry((mem, bank)).or_insert(0);
        if *used >= ports {
            return Err(Error::interp(
                format!(
                    "dynamic capability violation: bank {bank} of `{mem}` needs {} ports \
                     in one logical time step but has {ports}",
                    *used + 1
                ),
                span,
            ));
        }
        *used += 1;
        Ok(())
    }
}

struct Machine {
    scopes: Vec<SymbolMap<Slot>>,
    mems: SymbolMap<MemData>,
    funcs: SymbolMap<FuncDef>,
    monitor: Monitor,
    fuel: u64,
    /// When executing a `combine` reducer, selects which unrolled copy's
    /// register value a [`Slot::Combine`] read resolves to.
    combine_copy: Option<usize>,
}

impl Machine {
    fn new(opts: InterpOptions) -> Self {
        let monitor = Monitor {
            enabled: opts.check_capabilities,
            ..Monitor::default()
        };
        Machine {
            scopes: vec![SymbolMap::default()],
            mems: SymbolMap::default(),
            funcs: SymbolMap::default(),
            monitor,
            fuel: opts.max_steps,
            combine_copy: None,
        }
    }

    fn finish(mut self) -> Outcome {
        let vars = self
            .scopes
            .pop()
            .expect("top scope")
            .into_iter()
            .filter_map(|(k, v)| match v {
                Slot::Val(v) => Some((k.to_string(), v)),
                _ => None,
            })
            .collect();
        let mems = self
            .mems
            .into_iter()
            .map(|(k, m)| (k.to_string(), m.data))
            .collect();
        Outcome { mems, vars }
    }

    // ----------------------------------------------------------- helpers

    fn alloc(
        &mut self,
        name: Id,
        ty: &MemType,
        init: Option<&Vec<Value>>,
        span: Span,
    ) -> Result<(), Error> {
        let n = ty.total_size() as usize;
        let zero = match *ty.elem {
            Type::Float | Type::Double => Value::Float(0.0),
            Type::Bool => Value::Bool(false),
            _ => Value::Int(0),
        };
        let data = match init {
            Some(v) => {
                if v.len() != n {
                    return Err(Error::interp(
                        format!(
                            "initializer for `{name}` has {} values, expected {n}",
                            v.len()
                        ),
                        span,
                    ));
                }
                v.clone()
            }
            None => vec![zero; n],
        };
        self.mems.insert(
            name,
            MemData {
                ty: ty.clone(),
                data,
            },
        );
        self.monitor.ports.insert(name, ty.ports);
        self.bind(
            name,
            Slot::Mem(MemRt {
                ty: ty.clone(),
                origin: RtOrigin::Direct(name),
            }),
        );
        Ok(())
    }

    fn bind(&mut self, name: Id, slot: Slot) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name, slot);
    }

    fn lookup(&self, name: Id) -> Option<&Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(&name))
    }

    fn set_var(&mut self, name: Id, v: Value, span: Span) -> Result<(), Error> {
        for s in self.scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(&name) {
                *slot = Slot::Val(v);
                return Ok(());
            }
        }
        Err(Error::interp(format!("unbound variable `{name}`"), span))
    }

    fn burn(&mut self, span: Span) -> Result<(), Error> {
        if self.fuel == 0 {
            return Err(Error::interp(
                "execution fuel exhausted (runaway loop?)",
                span,
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    // ---------------------------------------------------------- commands

    fn exec(&mut self, c: &Cmd) -> Result<(), Error> {
        self.burn(c.span())?;
        match c {
            Cmd::Skip => Ok(()),
            Cmd::Seq(cs) => {
                for c in cs {
                    self.exec(c)?;
                }
                Ok(())
            }
            Cmd::Par(steps) => {
                for s in steps {
                    self.monitor.new_frame();
                    self.exec(s)?;
                }
                self.monitor.new_frame();
                Ok(())
            }
            Cmd::Let {
                name,
                ty,
                init,
                span,
            } => match (ty, init) {
                (Some(Type::Mem(m)), None) => self.alloc(*name, m, None, *span),
                (_, Some(e)) => {
                    let v = self.eval(e)?;
                    let v = coerce(v, ty.as_ref());
                    self.bind(*name, Slot::Val(v));
                    Ok(())
                }
                _ => Err(Error::interp(
                    format!("`let {name}` needs an initializer"),
                    *span,
                )),
            },
            Cmd::View {
                name,
                mem,
                kind,
                span,
            } => {
                let parent = self.mem_rt(*mem, *span)?;
                let rt = self.view_rt(&parent, kind, *span)?;
                self.bind(*name, Slot::Mem(rt));
                Ok(())
            }
            Cmd::Assign { name, rhs, span } => {
                let v = self.eval(rhs)?;
                self.set_var(*name, v, *span)
            }
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                rhs,
                span,
            } => {
                let v = self.eval(rhs)?;
                let rt = self.mem_rt(*mem, *span)?;
                let (root, addr, bank) = self.resolve(&rt, phys_bank.as_deref(), idxs, *span)?;
                self.monitor.write(root, addr, bank, *span)?;
                self.store_raw(root, addr, v, *span)
            }
            Cmd::Reduce {
                target,
                target_idxs,
                op,
                rhs,
                span,
            } => self.exec_reduce(*target, target_idxs, *op, rhs, *span),
            Cmd::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = self.eval(cond)?;
                let taken = match c {
                    Value::Bool(b) => b,
                    other => {
                        return Err(Error::interp(
                            format!("`if` condition evaluated to non-bool {other:?}"),
                            *span,
                        ))
                    }
                };
                self.scopes.push(SymbolMap::default());
                let r = if taken {
                    self.exec(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec(e)
                } else {
                    Ok(())
                };
                self.scopes.pop();
                r
            }
            Cmd::While { cond, body, span } => loop {
                self.burn(*span)?;
                let c = self.eval(cond)?;
                if !matches!(c, Value::Bool(true)) {
                    return Ok(());
                }
                self.monitor.new_frame();
                self.scopes.push(SymbolMap::default());
                let r = self.exec(body);
                self.scopes.pop();
                r?;
                self.monitor.new_frame();
            },
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                body,
                combine,
                span,
            } => self.exec_for(*var, *lo, *hi, *unroll, body, combine.as_deref(), *span),
            Cmd::Expr(Expr::Call { func, args, span }) => self.exec_call(*func, args, *span),
            Cmd::Expr(e) => {
                self.eval(e)?;
                Ok(())
            }
        }
    }

    /// Doall loop: iteration groups of `unroll` copies run in lockstep —
    /// all copies of one logical time step share a monitor frame.
    #[allow(clippy::too_many_arguments)]
    fn exec_for(
        &mut self,
        var: Id,
        lo: i64,
        hi: i64,
        unroll: u64,
        body: &Cmd,
        combine: Option<&Cmd>,
        span: Span,
    ) -> Result<(), Error> {
        let trips = (hi - lo).max(0) as u64;
        let u = unroll.max(1) as usize;
        let steps: Vec<&Cmd> = match body {
            Cmd::Par(steps) => steps.iter().collect(),
            other => vec![other],
        };
        let groups = trips / u as u64 + u64::from(!trips.is_multiple_of(u as u64));
        for g in 0..groups {
            self.burn(span)?;
            // One private environment per copy, persisting across steps.
            let mut envs: Vec<SymbolMap<Slot>> = vec![SymbolMap::default(); u];
            for (c, env) in envs.iter_mut().enumerate() {
                env.insert(var, Slot::Iter(lo + (g * u as u64) as i64 + c as i64));
            }
            for step in &steps {
                self.monitor.new_frame();
                for env in envs.iter_mut() {
                    let iter_val = match env.get(&var) {
                        Some(Slot::Iter(v)) => *v,
                        _ => unreachable!("iterator bound above"),
                    };
                    if iter_val >= hi {
                        continue; // partial final group
                    }
                    let scope = std::mem::take(env);
                    self.scopes.push(scope);
                    let r = self.exec(step);
                    *env = self.scopes.pop().expect("copy scope");
                    r?;
                }
            }
            self.monitor.new_frame();
            if let Some(comb) = combine {
                // Collect per-copy values of body-local scalars.
                let mut regs: SymbolMap<Vec<Value>> = SymbolMap::default();
                for env in &envs {
                    for (&k, slot) in env {
                        if let Slot::Val(v) = slot {
                            regs.entry(k).or_default().push(*v);
                        }
                    }
                }
                let mut scope: SymbolMap<Slot> = regs
                    .into_iter()
                    .map(|(k, vs)| (k, Slot::Combine(vs)))
                    .collect();
                scope.insert(var, Slot::Iter(lo + (g * u as u64) as i64));
                self.scopes.push(scope);
                let r = self.exec(comb);
                self.scopes.pop();
                r?;
                self.monitor.new_frame();
            }
        }
        Ok(())
    }

    fn exec_reduce(
        &mut self,
        target: Id,
        target_idxs: &[Expr],
        op: Reducer,
        rhs: &Expr,
        span: Span,
    ) -> Result<(), Error> {
        // How many copies does the rhs fold over?
        let copies = self.combine_arity(rhs);
        let fold = |m: &mut Machine, mut acc: Value| -> Result<Value, Error> {
            match copies {
                None => {
                    let v = m.eval(rhs)?;
                    acc = binop(op.op(), acc, v, span)?;
                    Ok(acc)
                }
                Some(n) => {
                    for c in 0..n {
                        let prev = m.combine_copy.replace(c);
                        let v = m.eval(rhs);
                        m.combine_copy = prev;
                        acc = binop(op.op(), acc, v?, span)?;
                    }
                    Ok(acc)
                }
            }
        };
        if target_idxs.is_empty() {
            let cur = match self.lookup(target) {
                Some(Slot::Val(v)) => *v,
                _ => {
                    return Err(Error::interp(
                        format!("unbound reducer target `{target}`"),
                        span,
                    ))
                }
            };
            let v = fold(self, cur)?;
            self.set_var(target, v, span)
        } else {
            let rt = self.mem_rt(target, span)?;
            let (root, addr, bank) = self.resolve(&rt, None, target_idxs, span)?;
            // Read and write happen in separate micro-steps of the
            // reduction tree; the monitor sees them in distinct frames.
            self.monitor.read(root, addr, bank, span)?;
            let cur = self.load_raw(root, addr, span)?;
            let v = fold(self, cur)?;
            self.monitor.new_frame();
            self.monitor.write(root, addr, bank, span)?;
            self.store_raw(root, addr, v, span)?;
            self.monitor.new_frame();
            Ok(())
        }
    }

    /// If the expression mentions combine registers, their common arity.
    fn combine_arity(&self, e: &Expr) -> Option<usize> {
        let mut arity = None;
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match e {
                Expr::Var { name, .. } => {
                    if let Some(Slot::Combine(vs)) = self.lookup(*name) {
                        arity = Some(arity.map_or(vs.len(), |a: usize| a.max(vs.len())));
                    }
                }
                Expr::Bin { lhs, rhs, .. } => {
                    stack.push(lhs);
                    stack.push(rhs);
                }
                Expr::Un { arg, .. } => stack.push(arg),
                Expr::Access {
                    idxs, phys_bank, ..
                } => {
                    stack.extend(idxs.iter());
                    if let Some(b) = phys_bank {
                        stack.push(b);
                    }
                }
                Expr::Call { args, .. } => stack.extend(args.iter()),
                _ => {}
            }
        }
        arity
    }

    fn exec_call(&mut self, func: Id, args: &[Expr], span: Span) -> Result<(), Error> {
        let def = self
            .funcs
            .get(&func)
            .cloned()
            .ok_or_else(|| Error::interp(format!("unbound function `{func}`"), span))?;
        if def.params.len() != args.len() {
            return Err(Error::interp(
                format!(
                    "`{func}` expects {} arguments, got {}",
                    def.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut frame: SymbolMap<Slot> = SymbolMap::default();
        for (p, a) in def.params.iter().zip(args) {
            match &p.ty {
                Type::Mem(_) => {
                    let name = match a {
                        Expr::Var { name, .. } => *name,
                        other => {
                            return Err(Error::interp(
                                "memory arguments must be memory names",
                                other.span(),
                            ))
                        }
                    };
                    let rt = self.mem_rt(name, span)?;
                    frame.insert(p.name, Slot::Mem(rt));
                }
                _ => {
                    let v = self.eval(a)?;
                    frame.insert(p.name, Slot::Val(v));
                }
            }
        }
        // Function bodies see only their parameters (closed world).
        let saved = std::mem::replace(&mut self.scopes, vec![frame]);
        let r = self.exec(&def.body);
        self.scopes = saved;
        r
    }

    // ------------------------------------------------------ memory model

    fn mem_rt(&self, name: Id, span: Span) -> Result<MemRt, Error> {
        match self.lookup(name) {
            Some(Slot::Mem(rt)) => Ok(rt.clone()),
            _ => Err(Error::interp(format!("`{name}` is not a memory"), span)),
        }
    }

    fn view_rt(&mut self, parent: &MemRt, kind: &ViewKind, span: Span) -> Result<MemRt, Error> {
        let pdims = &parent.ty.dims;
        let (dims, op) = match kind {
            ViewKind::Shrink { factors } => {
                let dims = pdims
                    .iter()
                    .zip(factors)
                    .map(|(d, f)| Dim {
                        size: d.size,
                        banks: d.banks / f.max(&1),
                    })
                    .collect();
                (dims, RtView::Shrink)
            }
            ViewKind::Suffix { offsets } | ViewKind::Shift { offsets } => {
                let mut offs = Vec::with_capacity(offsets.len());
                for o in offsets {
                    offs.push(self.eval(o)?.as_i64());
                }
                (pdims.clone(), RtView::Offset(offs))
            }
            ViewKind::Split { factor } => {
                let d = pdims.first().copied().ok_or_else(|| {
                    Error::interp("split view requires a one-dimensional memory", span)
                })?;
                let f = (*factor).max(1);
                (
                    vec![
                        Dim { size: f, banks: f },
                        Dim {
                            size: d.size / f,
                            banks: (d.banks / f).max(1),
                        },
                    ],
                    RtView::Split { factor: f },
                )
            }
        };
        Ok(MemRt {
            ty: MemType {
                elem: parent.ty.elem.clone(),
                ports: parent.ty.ports,
                dims,
            },
            origin: RtOrigin::View {
                parent: Box::new(parent.clone()),
                op,
            },
        })
    }

    /// Resolve an access to (root memory, flat address, flat bank id).
    fn resolve(
        &mut self,
        rt: &MemRt,
        phys_bank: Option<&Expr>,
        idxs: &[Expr],
        span: Span,
    ) -> Result<(Id, u64, u64), Error> {
        // Evaluate logical per-dimension indices.
        let logical = if let Some(b) = phys_bank {
            let bank = self.eval(b)?.as_i64();
            let off = self
                .eval(
                    idxs.first()
                        .ok_or_else(|| Error::interp("physical access needs an offset", span))?,
                )?
                .as_i64();
            physical_to_logical(&rt.ty, bank, off, span)?
        } else {
            if idxs.len() != rt.ty.dims.len() {
                return Err(Error::interp(
                    format!(
                        "access has {} indices but the memory has {} dimensions",
                        idxs.len(),
                        rt.ty.dims.len()
                    ),
                    span,
                ));
            }
            let mut v = Vec::with_capacity(idxs.len());
            for e in idxs {
                v.push(self.eval(e)?.as_i64());
            }
            v
        };
        self.resolve_logical(rt, &logical, span)
    }

    /// Translate logical per-dimension indices through the view chain.
    fn resolve_logical(
        &self,
        rt: &MemRt,
        logical: &[i64],
        span: Span,
    ) -> Result<(Id, u64, u64), Error> {
        for (i, (&ix, d)) in logical.iter().zip(&rt.ty.dims).enumerate() {
            if ix < 0 || ix as u64 >= d.size {
                return Err(Error::interp(
                    format!(
                        "index {ix} out of bounds in dimension {i} (size {})",
                        d.size
                    ),
                    span,
                ));
            }
        }
        match &rt.origin {
            RtOrigin::Direct(name) => {
                let dims = &rt.ty.dims;
                let mut addr = 0u64;
                let mut bank = 0u64;
                for (&ix, d) in logical.iter().zip(dims) {
                    addr = addr * d.size + ix as u64;
                    bank = bank * d.banks + (ix as u64 % d.banks);
                }
                Ok((*name, addr, bank))
            }
            RtOrigin::View { parent, op } => {
                let plogical: Vec<i64> = match op {
                    RtView::Shrink => logical.to_vec(),
                    RtView::Offset(offs) => {
                        logical.iter().zip(offs).map(|(&i, &o)| i + o).collect()
                    }
                    RtView::Split { factor } => {
                        // sp[i][j] → parent index (j div b)·B + i·b + (j mod b)
                        // where B is the parent bank count and b = B / factor.
                        let pb = parent.ty.dims[0].banks.max(1);
                        let b = (pb / factor).max(1) as i64;
                        let (i, j) = (logical[0], logical[1]);
                        vec![(j / b) * pb as i64 + i * b + (j % b)]
                    }
                };
                self.resolve_logical(parent, &plogical, span)
            }
        }
    }

    fn load_raw(&self, root: Id, addr: u64, span: Span) -> Result<Value, Error> {
        let m = self
            .mems
            .get(&root)
            .ok_or_else(|| Error::interp(format!("unknown memory `{root}`"), span))?;
        m.data.get(addr as usize).copied().ok_or_else(|| {
            Error::interp(format!("address {addr} out of bounds for `{root}`"), span)
        })
    }

    fn store_raw(&mut self, root: Id, addr: u64, v: Value, span: Span) -> Result<(), Error> {
        let m = self
            .mems
            .get_mut(&root)
            .ok_or_else(|| Error::interp(format!("unknown memory `{root}`"), span))?;
        let elem = match *m.ty.elem {
            Type::Float | Type::Double => Value::Float(v.as_f64()),
            Type::Bool => Value::Bool(matches!(v, Value::Bool(true)) || v.as_i64() != 0),
            _ => Value::Int(v.as_i64()),
        };
        match m.data.get_mut(addr as usize) {
            Some(slot) => {
                *slot = elem;
                Ok(())
            }
            None => Err(Error::interp(
                format!("address {addr} out of bounds for `{root}`"),
                span,
            )),
        }
    }

    // ------------------------------------------------------- expressions

    fn eval(&mut self, e: &Expr) -> Result<Value, Error> {
        match e {
            Expr::LitInt { val, .. } => Ok(Value::Int(*val)),
            Expr::LitFloat { val, .. } => Ok(Value::Float(*val)),
            Expr::LitBool { val, .. } => Ok(Value::Bool(*val)),
            Expr::Var { name, span } => match self.lookup(*name) {
                Some(Slot::Val(v)) => Ok(*v),
                Some(Slot::Iter(v)) => Ok(Value::Int(*v)),
                Some(Slot::Combine(vs)) => {
                    let c = self.combine_copy.ok_or_else(|| {
                        Error::interp(
                            format!("combine register `{name}` used outside a reducer"),
                            *span,
                        )
                    })?;
                    vs.get(c).copied().ok_or_else(|| {
                        Error::interp(format!("combine register `{name}` has no copy {c}"), *span)
                    })
                }
                Some(Slot::Mem(_)) => Err(Error::interp(
                    format!("memory `{name}` used as a value"),
                    *span,
                )),
                None => Err(Error::interp(format!("unbound variable `{name}`"), *span)),
            },
            Expr::Bin { op, lhs, rhs, span } => {
                let l = self.eval(lhs)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And if l == Value::Bool(false) => return Ok(Value::Bool(false)),
                    BinOp::Or if l == Value::Bool(true) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = self.eval(rhs)?;
                binop(*op, l, r, *span)
            }
            Expr::Un { op, arg, span } => {
                let v = self.eval(arg)?;
                match op {
                    UnOp::Not => match v {
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(Error::interp(format!("`!` on non-bool {other:?}"), *span)),
                    },
                    UnOp::Neg => Ok(match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Bool(_) => {
                            return Err(Error::interp("`-` on bool", *span));
                        }
                    }),
                }
            }
            Expr::Access {
                mem,
                phys_bank,
                idxs,
                span,
            } => {
                let rt = self.mem_rt(*mem, *span)?;
                let (root, addr, bank) = self.resolve(&rt, phys_bank.as_deref(), idxs, *span)?;
                self.monitor.read(root, addr, bank, *span)?;
                self.load_raw(root, addr, *span)
            }
            Expr::Call { func, span, .. } => Err(Error::interp(
                format!("procedure `{func}` called in expression position"),
                *span,
            )),
        }
    }
}

/// Convert a physical (bank, in-bank offset) pair to logical per-dimension
/// indices.
fn physical_to_logical(ty: &MemType, bank: i64, off: i64, span: Span) -> Result<Vec<i64>, Error> {
    let total = ty.total_banks();
    if bank < 0 || bank as u64 >= total {
        return Err(Error::interp(
            format!("bank {bank} out of range ({total} banks)"),
            span,
        ));
    }
    // Unflatten the bank id per dimension (row-major).
    let mut rem = bank as u64;
    let mut bank_coord = vec![0u64; ty.dims.len()];
    for (i, d) in ty.dims.iter().enumerate().rev() {
        bank_coord[i] = rem % d.banks;
        rem /= d.banks;
    }
    // Unflatten the offset over the within-bank extents.
    let mut rem = off as u64;
    let mut sub = vec![0u64; ty.dims.len()];
    for (i, d) in ty.dims.iter().enumerate().rev() {
        let within = d.size / d.banks;
        sub[i] = rem % within;
        rem /= within;
    }
    if rem != 0 {
        return Err(Error::interp(
            format!("offset {off} out of range for bank {bank}"),
            span,
        ));
    }
    Ok(ty
        .dims
        .iter()
        .enumerate()
        .map(|(i, d)| (sub[i] * d.banks + bank_coord[i]) as i64)
        .collect())
}

/// Apply a binary operator with numeric promotion.
fn binop(op: BinOp, l: Value, r: Value, span: Span) -> Result<Value, Error> {
    use BinOp::*;
    use Value::*;
    let both_int = matches!((l, r), (Int(_), Int(_)));
    match op {
        And | Or => match (l, r) {
            (Bool(a), Bool(b)) => Ok(Bool(if op == And { a && b } else { a || b })),
            _ => Err(Error::interp("logical operator on non-bools", span)),
        },
        Eq | Neq | Lt | Gt | Lte | Gte => {
            let res = match (l, r) {
                (Bool(a), Bool(b)) => match op {
                    Eq => a == b,
                    Neq => a != b,
                    _ => return Err(Error::interp("ordering on bools", span)),
                },
                _ => {
                    let (a, b) = (l.as_f64(), r.as_f64());
                    match op {
                        Eq => a == b,
                        Neq => a != b,
                        Lt => a < b,
                        Gt => a > b,
                        Lte => a <= b,
                        Gte => a >= b,
                        _ => unreachable!(),
                    }
                }
            };
            Ok(Bool(res))
        }
        Add | Sub | Mul | Div | Mod => {
            if both_int {
                let (a, b) = (l.as_i64(), r.as_i64());
                if matches!(op, Div | Mod) && b == 0 {
                    return Err(Error::interp("integer division by zero", span));
                }
                Ok(Int(match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => a / b,
                    Mod => a % b,
                    _ => unreachable!(),
                }))
            } else {
                let (a, b) = (l.as_f64(), r.as_f64());
                Ok(Float(match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                    _ => unreachable!(),
                }))
            }
        }
    }
}

/// Coerce a value to a declared scalar type.
fn coerce(v: Value, ty: Option<&Type>) -> Value {
    match ty {
        Some(Type::Float | Type::Double) => Value::Float(v.as_f64()),
        Some(Type::Bit(_) | Type::UBit(_)) => Value::Int(v.as_i64()),
        _ => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Outcome {
        let p = parse(src).unwrap();
        interpret(&p).unwrap_or_else(|e| panic!("interp error: {e}\n{src}"))
    }

    fn run_unchecked(src: &str) -> Outcome {
        let p = parse(src).unwrap();
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        interpret_with(&p, &opts, &HashMap::new()).unwrap()
    }

    #[test]
    fn scalar_arithmetic() {
        let o = run("let x = 2; let y = x * 3 + 1; let z = y % 4;");
        assert_eq!(o.vars["y"], Value::Int(7));
        assert_eq!(o.vars["z"], Value::Int(3));
    }

    #[test]
    fn memory_store_load() {
        let o = run("let A: bit<32>[4]; A[2] := 7 --- let x = A[2];");
        assert_eq!(o.vars["x"], Value::Int(7));
        assert_eq!(o.mems["A"][2], Value::Int(7));
    }

    #[test]
    fn ordered_composition_frames() {
        // Checked mode accepts ordered reuse of a memory (two ports let the
        // final step read both addresses at once).
        let o = run("let A: bit<32>{2}[4]; A[0] := 1 --- A[1] := 2 --- let s = A[0] + A[1];");
        assert_eq!(o.vars["s"], Value::Int(3));
    }

    #[test]
    fn monitor_catches_conflicts() {
        let p = parse("let A: bit<32>[4]; A[0] := 1; A[1] := 2;").unwrap();
        let err = interpret(&p).unwrap_err();
        assert!(err.to_string().contains("capability"), "{err}");
        // Unchecked mode runs it fine.
        let o = run_unchecked("let A: bit<32>[4]; A[0] := 1; A[1] := 2;");
        assert_eq!(o.mems["A"][1], Value::Int(2));
    }

    #[test]
    fn monitor_allows_identical_reads() {
        run("let A: bit<32>[4]; let x = A[0]; let y = A[0];");
    }

    #[test]
    fn unrolled_loop_runs_all_copies() {
        let o = run("let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := i; }
             ---
             let x = A[5];");
        assert_eq!(o.vars["x"], Value::Int(5));
        assert_eq!(o.mems["A"], (0..8).map(Value::Int).collect::<Vec<_>>());
    }

    #[test]
    fn lockstep_monitor_catches_bank_conflicts() {
        // Two parallel copies into one bank: the monitor must object.
        let p = parse(
            "let A: bit<32>[8];
             for (let i = 0..8) unroll 2 { A[i] := i; }",
        )
        .unwrap();
        assert!(interpret(&p).is_err());
    }

    #[test]
    fn combine_reduces_over_copies() {
        let o = run("let A: bit<32>[8 bank 4]; let B: bit<32>[8 bank 4];
             for (let i = 0..8) unroll 4 { A[i] := i; B[i] := 2; }
             ---
             let dot = 0;
             for (let i = 0..8) unroll 4 {
               let v = A[i] * B[i];
             } combine {
               dot += v;
             }");
        // dot = Σ 2i for i in 0..8 = 56.
        assert_eq!(o.vars["dot"], Value::Int(56));
    }

    #[test]
    fn memory_reduce_target() {
        let o = run("let acc: bit<32>[2];
             for (let g = 0..4) {
               for (let i = 0..4) unroll 2 {
                 let v = 1;
               } combine {
                 acc[0] += v;
               }
             }");
        // 4 outer × 2 inner groups × 2 copies = 16.
        assert_eq!(o.mems["acc"][0], Value::Int(16));
    }

    #[test]
    fn shrink_view_access() {
        let o = run("let A: bit<32>[8 bank 4];
             for (let i = 0..8) unroll 4 { A[i] := i * 10; }
             ---
             view sh = shrink A[by 2];
             for (let i = 0..8) unroll 2 { let x = sh[i]; }
             ---
             let y = sh[3];");
        assert_eq!(o.vars["y"], Value::Int(30));
    }

    #[test]
    fn suffix_view_offsets() {
        let o = run("let A: bit<32>[8 bank 2];
             for (let i = 0..8) unroll 2 { A[i] := i; }
             ---
             view s2 = suffix A[by 2*3];
             let z = s2[1];");
        // s2[1] = A[7].
        assert_eq!(o.vars["z"], Value::Int(7));
    }

    #[test]
    fn split_view_translation() {
        // A[12 bank 4] split by 2: row 0 = {0,1,4,5,8,9}, row 1 = {2,3,6,7,10,11}.
        let o = run("let A: bit<32>[12 bank 4];
             for (let i = 0..12) { A[i] := i; }
             ---
             view sp = split A[by 2];
             let a = sp[0][2]; let b = sp[1][3];");
        // sp[0][2] = A[4], sp[1][3] = A[7] — different banks, so one step.
        assert_eq!(o.vars["a"], Value::Int(4));
        assert_eq!(o.vars["b"], Value::Int(7));
    }

    #[test]
    fn physical_access_roundtrip() {
        let o = run("let A: bit<32>[8 bank 2];
             A{0}[1] := 42; A{1}[0] := 7;
             ---
             let x = A[2]; let y = A[1];");
        // Bank 0 offset 1 = element 2; bank 1 offset 0 = element 1.
        assert_eq!(o.vars["x"], Value::Int(42));
        assert_eq!(o.vars["y"], Value::Int(7));
    }

    #[test]
    fn physical_multidim() {
        // M{3}[0] is logically M[1][1] under 2×2 banking.
        let o = run("let M: bit<32>[4 bank 2][4 bank 2];
             M{3}[0] := 9;
             ---
             let x = M[1][1];");
        assert_eq!(o.vars["x"], Value::Int(9));
    }

    #[test]
    fn if_else_and_while() {
        let o = run("let x = 0; let n = 0;
             while (n < 5) { n := n + 1; if (n % 2 == 0) { x := x + 10; } else { x := x + 1; } }");
        assert_eq!(o.vars["x"], Value::Int(23));
    }

    #[test]
    fn function_call_writes_through() {
        let o = run("def set1(M: bit<32>[4], v: bit<32>) { M[0] := v; }
             let A: bit<32>[4];
             set1(A, 13);");
        assert_eq!(o.mems["A"][0], Value::Int(13));
    }

    #[test]
    fn decl_inputs_feed_in() {
        let p = parse("decl A: bit<32>{4}[4]; let s = A[0] + A[1] + A[2] + A[3];").unwrap();
        let inputs = HashMap::from([(
            "A".to_string(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        )]);
        let o = interpret_with(&p, &InterpOptions::default(), &inputs).unwrap();
        assert_eq!(o.vars["s"], Value::Int(10));
    }

    #[test]
    fn fuel_guards_infinite_loops() {
        let p = parse("let t = true; while (t) { let x = 1; }").unwrap();
        let opts = InterpOptions {
            check_capabilities: false,
            max_steps: 10_000,
        };
        let err = interpret_with(&p, &opts, &HashMap::new()).unwrap_err();
        assert!(err.to_string().contains("fuel"), "{err}");
    }

    #[test]
    fn division_by_zero_reported() {
        let p = parse("let x = 1 / 0;").unwrap();
        assert!(interpret(&p).is_err());
    }

    #[test]
    fn stencil_end_to_end() {
        // 1-D 3-tap stencil with a shift view; three reads per step need
        // three ports on the single bank.
        let o = run("let inp: bit<32>{3}[8];
             let out: bit<32>[8];
             for (let i = 0..8) { inp[i] := i * i; }
             ---
             for (let r = 0..6) {
               view w = shift inp[by r];
               out[r] := w[0] + w[1] + w[2];
             }");
        // out[r] = r² + (r+1)² + (r+2)².
        for r in 0..6i64 {
            assert_eq!(
                o.mems["out"][r as usize],
                Value::Int(r * r + (r + 1) * (r + 1) + (r + 2) * (r + 2))
            );
        }
    }
}
