//! Hand-written lexer for the Dahlia surface language.

use crate::error::Error;
use crate::intern::Symbol;
use crate::span::Span;

/// The tokens of the Dahlia surface language.
///
/// Identifiers carry an interned [`Symbol`], so `Tok` is `Copy` and the
/// lexer allocates nothing per token: after the first sighting of a
/// name, lexing it again is a hash probe, not a `String`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Ident(Symbol),
    // Keywords.
    Let,
    View,
    If,
    Else,
    While,
    For,
    Unroll,
    Combine,
    Def,
    Decl,
    True,
    False,
    By,
    Shrink,
    Suffix,
    Shift,
    Split,
    BoolTy,
    FloatTy,
    DoubleTy,
    BitTy,
    UBitTy,
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    DotDot,
    /// `---` — ordered composition.
    SeqComp,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// `+=` `-=` `*=` `/=` — built-in reducers.
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl Tok {
    /// Keyword lookup for an identifier-shaped lexeme.
    fn keyword(s: &str) -> Option<Tok> {
        Some(match s {
            "let" => Tok::Let,
            "view" => Tok::View,
            "if" => Tok::If,
            "else" => Tok::Else,
            "while" => Tok::While,
            "for" => Tok::For,
            "unroll" => Tok::Unroll,
            "combine" => Tok::Combine,
            "def" => Tok::Def,
            "decl" => Tok::Decl,
            "true" => Tok::True,
            "false" => Tok::False,
            "by" => Tok::By,
            "shrink" => Tok::Shrink,
            "suffix" => Tok::Suffix,
            "shift" => Tok::Shift,
            "split" => Tok::Split,
            "bool" => Tok::BoolTy,
            "float" => Tok::FloatTy,
            "double" => Tok::DoubleTy,
            "bit" => Tok::BitTy,
            "ubit" => Tok::UBitTy,
            _ => return None,
        })
    }
}

/// A token paired with its source span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it came from.
    pub span: Span,
}

/// Tokenize a full Dahlia source file.
///
/// # Errors
///
/// Returns [`Error::Lex`] on an unexpected character or malformed numeric
/// literal.
pub fn lex(src: &str) -> Result<Vec<Token>, Error> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            // Dahlia source averages well under 6 bytes per token;
            // reserving up front keeps the token vector from reallocating
            // during the lex.
            out: Vec::with_capacity(src.len() / 5 + 8),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn push(&mut self, tok: Tok, start: (usize, u32, u32)) {
        self.out.push(Token {
            tok,
            span: Span::new(start.0, self.pos, start.1, start.2),
        });
    }

    fn err(&self, msg: impl Into<String>, start: (usize, u32, u32)) -> Error {
        Error::Lex {
            msg: msg.into(),
            span: Span::new(start.0, self.pos.max(start.0 + 1), start.1, start.2),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Error> {
        while let Some(b) = self.peek() {
            let start = self.here();
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment", start)),
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                _ => self.punct(start)?,
            }
        }
        let start = self.here();
        self.push(Tok::Eof, start);
        Ok(self.out)
    }

    fn number(&mut self, start: (usize, u32, u32)) -> Result<(), Error> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // A `..` after digits is a range, not a float.
        let mut is_float = false;
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        let text = &self.src[start.0..self.pos];
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal `{text}`"), start))?;
            self.push(Tok::Float(v), start);
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad int literal `{text}`"), start))?;
            self.push(Tok::Int(v), start);
        }
        Ok(())
    }

    fn ident(&mut self, start: (usize, u32, u32)) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = &self.src[start.0..self.pos];
        // Keywords match on the borrowed slice; identifiers intern it —
        // zero per-token allocation either way (interning allocates only
        // the first time a distinct name is ever seen, process-wide).
        let tok = Tok::keyword(text).unwrap_or_else(|| Tok::Ident(Symbol::intern(text)));
        self.push(tok, start);
    }

    fn punct(&mut self, start: (usize, u32, u32)) -> Result<(), Error> {
        let b = self.bump().expect("peeked");
        let tok = match b {
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b';' => Tok::Semi,
            b',' => Tok::Comma,
            b'%' => Tok::Percent,
            b':' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Assign
                } else {
                    Tok::Colon
                }
            }
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    Tok::DotDot
                } else {
                    return Err(self.err("unexpected `.`", start));
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') && self.peek2() == Some(b'-') {
                    self.bump();
                    self.bump();
                    Tok::SeqComp
                } else if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::MinusEq
                } else {
                    Tok::Minus
                }
            }
            b'+' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::PlusEq
                } else {
                    Tok::Plus
                }
            }
            b'*' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::StarEq
                } else {
                    Tok::Star
                }
            }
            b'/' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::SlashEq
                } else {
                    Tok::Slash
                }
            }
            b'<' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Le
                } else {
                    Tok::Lt
                }
            }
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else {
                    Tok::Eq
                }
            }
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Ne
                } else {
                    Tok::Bang
                }
            }
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    Tok::AndAnd
                } else {
                    return Err(self.err("expected `&&`", start));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Tok::OrOr
                } else {
                    return Err(self.err("expected `||`", start));
                }
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char), start))
            }
        };
        self.push(tok, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_memory_decl() {
        assert_eq!(
            toks("let A: float[8 bank 4];"),
            vec![
                Tok::Let,
                Tok::Ident("A".into()),
                Tok::Colon,
                Tok::FloatTy,
                Tok::LBracket,
                Tok::Int(8),
                Tok::Ident("bank".into()),
                Tok::Int(4),
                Tok::RBracket,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_ordered_composition() {
        assert_eq!(
            toks("x --- y"),
            vec![
                Tok::Ident("x".into()),
                Tok::SeqComp,
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn minus_vs_seqcomp_vs_minus_eq() {
        assert_eq!(
            toks("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(toks("a -= b")[1], Tok::MinusEq);
    }

    #[test]
    fn range_is_not_float() {
        assert_eq!(
            toks("0..10"),
            vec![Tok::Int(0), Tok::DotDot, Tok::Int(10), Tok::Eof]
        );
        assert_eq!(toks("4.2"), vec![Tok::Float(4.2), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // hi\ny /* bye\nbye */ z"),
            vec![
                Tok::Ident("x".into()),
                Tok::Ident("y".into()),
                Tok::Ident("z".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn assign_vs_colon() {
        assert_eq!(toks("A[1] := 1")[4], Tok::Assign);
        assert_eq!(toks("x : bool")[1], Tok::Colon);
    }

    #[test]
    fn spans_track_lines() {
        let ts = lex("x\n  y").unwrap();
        assert_eq!(ts[0].span.line, 1);
        assert_eq!(ts[1].span.line, 2);
        assert_eq!(ts[1].span.col, 3);
    }

    #[test]
    fn error_on_stray_char() {
        assert!(lex("let x = #").is_err());
        assert!(lex("a & b").is_err());
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn reducer_tokens() {
        assert_eq!(toks("d += v")[1], Tok::PlusEq);
        assert_eq!(toks("d *= v")[1], Tok::StarEq);
        assert_eq!(toks("d /= v")[1], Tok::SlashEq);
    }
}
