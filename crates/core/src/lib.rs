//! # dahlia-core
//!
//! The Dahlia language from *“Predictable Accelerator Design with
//! Time-Sensitive Affine Types”* (PLDI 2020), reimplemented in Rust:
//! lexer, parser, the time-sensitive affine type checker, memory views,
//! a checked interpreter, and the desugarings of §4.5.
//!
//! Dahlia models consumable hardware resources — memory banks and their
//! ports — with an affine type system extended with *time sensitivity*:
//! repeated uses of the same hardware are safe as long as they are
//! separated by ordered composition (`---`).
//!
//! ```
//! use dahlia_core::{parse, typecheck};
//!
//! // Reading A twice in one logical time step needs two ports…
//! let bad = parse("let A: float[10]; let x = A[0]; A[1] := 1;").unwrap();
//! assert!(typecheck(&bad).is_err());
//!
//! // …but ordered composition restores the capability.
//! let good = parse("let A: float[10]; let x = A[0] --- A[1] := 1;").unwrap();
//! assert!(typecheck(&good).is_ok());
//! ```

pub mod ast;
pub mod check;
pub mod desugar;
pub mod diag;
pub mod error;
pub mod intern;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;

pub use ast::{Cmd, Decl, Dim, Expr, FuncDef, Id, MemType, Program, Type, ViewKind};
pub use check::{typecheck, CheckReport};
pub use diag::{Diagnostic, Phase};
pub use error::{Error, TypeError, TypeErrorKind};
pub use intern::{InternStats, Symbol, SymbolMap, SymbolSet};
pub use interp::{interpret, InterpOptions, Value};
pub use parser::{parse, parse_expr};
pub use span::{Span, Spanned};
