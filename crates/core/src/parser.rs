//! Recursive-descent parser for the Dahlia surface language.
//!
//! Composition is parsed per the paper: within a block, `---` separates
//! logical time steps (ordered composition, low precedence) and `;`
//! composes commands within a step (unordered composition, high
//! precedence). So `a; b --- c` is `Par([Seq([a, b]), c])`.

use std::sync::Arc;

use crate::ast::*;
use crate::error::Error;
use crate::lexer::{lex, Tok, Token};
use crate::span::Span;

/// Parse a complete Dahlia program.
///
/// # Errors
///
/// Returns [`Error::Lex`] or [`Error::Parse`] on malformed input.
pub fn parse(src: &str) -> Result<Program, Error> {
    let tokens = lex(src)?;
    Parser {
        toks: tokens,
        pos: 0,
    }
    .program()
}

/// Parse a single expression (used by tests and tools).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, Error> {
    let tokens = lex(src)?;
    let mut p = Parser {
        toks: tokens,
        pos: 0,
    };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok;
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<Span, Error> {
        if self.peek() == t {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(Error::parse(
                format!("expected {t:?}, found {:?}", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(Id, Span), Error> {
        match *self.peek() {
            Tok::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => Err(Error::parse(
                format!("expected identifier, found {other:?}"),
                self.span(),
            )),
        }
    }

    fn int(&mut self) -> Result<i64, Error> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(Error::parse(
                format!("expected integer, found {other:?}"),
                self.span(),
            )),
        }
    }

    // ---------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, Error> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Decl => {
                    let d = self.decl()?;
                    prog.decls.push(d);
                }
                Tok::Def => {
                    let f = self.func_def()?;
                    prog.defs.push(f);
                }
                _ => break,
            }
        }
        prog.body = self.cmd_sequence(&Tok::Eof)?;
        self.expect(&Tok::Eof)?;
        Ok(prog)
    }

    fn decl(&mut self) -> Result<Decl, Error> {
        let start = self.expect(&Tok::Decl)?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::Colon)?;
        let ty = self.ty()?;
        let span = start.merge(self.prev_span());
        self.expect(&Tok::Semi)?;
        match ty {
            Type::Mem(m) => Ok(Decl { name, ty: m, span }),
            other => Err(Error::parse(
                format!("`decl` requires a memory type, found `{other}`"),
                span,
            )),
        }
    }

    fn func_def(&mut self) -> Result<FuncDef, Error> {
        let start = self.expect(&Tok::Def)?;
        let (name, _) = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (pname, _) = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let body = self.block()?;
        let span = start.merge(self.prev_span());
        Ok(FuncDef {
            name,
            params,
            body,
            span,
        })
    }

    // ------------------------------------------------------------- types

    fn ty(&mut self) -> Result<Type, Error> {
        let scalar = match self.bump() {
            Tok::BoolTy => Type::Bool,
            Tok::FloatTy => Type::Float,
            Tok::DoubleTy => Type::Double,
            Tok::BitTy => {
                self.expect(&Tok::Lt)?;
                let n = self.int()?;
                self.expect(&Tok::Gt)?;
                Type::Bit(n as u32)
            }
            Tok::UBitTy => {
                self.expect(&Tok::Lt)?;
                let n = self.int()?;
                self.expect(&Tok::Gt)?;
                Type::UBit(n as u32)
            }
            other => {
                return Err(Error::parse(
                    format!("expected a type, found {other:?}"),
                    self.prev_span(),
                ))
            }
        };
        // Optional port annotation `{k}` and dimension list `[n bank m]…`.
        let mut ports = 1u32;
        if *self.peek() == Tok::LBrace {
            self.bump();
            ports = self.int()? as u32;
            self.expect(&Tok::RBrace)?;
        }
        let mut dims = Vec::new();
        while self.eat(&Tok::LBracket) {
            let size = self.int()? as u64;
            let mut banks = 1u64;
            if let Tok::Ident(w) = self.peek() {
                if *w == "bank" {
                    self.bump();
                    banks = self.int()? as u64;
                }
            }
            self.expect(&Tok::RBracket)?;
            dims.push(Dim { size, banks });
        }
        if dims.is_empty() {
            if ports != 1 {
                return Err(Error::parse(
                    "port annotation requires a memory type",
                    self.prev_span(),
                ));
            }
            Ok(scalar)
        } else {
            Ok(Type::Mem(MemType {
                elem: Arc::new(scalar),
                ports,
                dims,
            }))
        }
    }

    // ---------------------------------------------------------- commands

    /// Parse commands up to (not consuming) `end`, honoring `;` vs `---`.
    fn cmd_sequence(&mut self, end: &Tok) -> Result<Cmd, Error> {
        let mut steps: Vec<Vec<Cmd>> = vec![Vec::new()];
        loop {
            // Skip stray semicolons.
            while self.eat(&Tok::Semi) {}
            if self.peek() == end {
                break;
            }
            if self.eat(&Tok::SeqComp) {
                steps.push(Vec::new());
                continue;
            }
            let c = self.cmd()?;
            steps.last_mut().expect("nonempty").push(c);
            // Separator: `;` continues the step, `---` begins a new one.
            match self.peek() {
                Tok::Semi => {
                    self.bump();
                    if self.eat(&Tok::SeqComp) {
                        steps.push(Vec::new());
                    }
                }
                Tok::SeqComp => {
                    self.bump();
                    steps.push(Vec::new());
                }
                _ => {}
            }
        }
        let mut groups: Vec<Cmd> = steps
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|mut g| {
                if g.len() == 1 {
                    g.pop().expect("len 1")
                } else {
                    Cmd::Seq(g)
                }
            })
            .collect();
        Ok(match groups.len() {
            0 => Cmd::Skip,
            1 => groups.pop().expect("len 1"),
            _ => Cmd::Par(groups),
        })
    }

    fn block(&mut self) -> Result<Cmd, Error> {
        self.expect(&Tok::LBrace)?;
        let c = self.cmd_sequence(&Tok::RBrace)?;
        self.expect(&Tok::RBrace)?;
        Ok(c)
    }

    fn cmd(&mut self) -> Result<Cmd, Error> {
        match self.peek() {
            Tok::Let => self.let_cmd(),
            Tok::View => self.view_cmd(),
            Tok::If => self.if_cmd(),
            Tok::While => self.while_cmd(),
            Tok::For => self.for_cmd(),
            Tok::LBrace => self.block(),
            Tok::Ident(_) => self.stmt_starting_with_ident(),
            other => Err(Error::parse(
                format!("expected a command, found {other:?}"),
                self.span(),
            )),
        }
    }

    fn let_cmd(&mut self) -> Result<Cmd, Error> {
        let start = self.expect(&Tok::Let)?;
        let (name, _) = self.ident()?;
        let ty = if self.eat(&Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        let init = if self.eat(&Tok::Eq) {
            Some(self.expr()?)
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Ok(Cmd::Let {
            name,
            ty,
            init,
            span,
        })
    }

    fn view_cmd(&mut self) -> Result<Cmd, Error> {
        let start = self.expect(&Tok::View)?;
        let mut names = vec![self.ident()?.0];
        while self.eat(&Tok::Comma) {
            names.push(self.ident()?.0);
        }
        self.expect(&Tok::Eq)?;
        let kind_tok = self.bump();
        let mut cmds = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let (mem, _) = self.ident()?;
            let kind = self.view_args(&kind_tok)?;
            let span = start.merge(self.prev_span());
            cmds.push(Cmd::View {
                name: *name,
                mem,
                kind,
                span,
            });
            let more = self.eat(&Tok::Comma);
            if more != (i + 1 < names.len()) {
                return Err(Error::parse(
                    "view name list and view expression list have different lengths",
                    self.span(),
                ));
            }
        }
        Ok(if cmds.len() == 1 {
            cmds.pop().expect("len 1")
        } else {
            Cmd::Seq(cmds)
        })
    }

    /// Parse `[by …]…` according to the view kind keyword.
    fn view_args(&mut self, kind: &Tok) -> Result<ViewKind, Error> {
        let mut offsets = Vec::new();
        while self.eat(&Tok::LBracket) {
            self.expect(&Tok::By)?;
            offsets.push(self.expr()?);
            self.expect(&Tok::RBracket)?;
        }
        if offsets.is_empty() {
            return Err(Error::parse(
                "view requires at least one `[by …]`",
                self.span(),
            ));
        }
        let const_factors = |offsets: &[Expr]| -> Result<Vec<u64>, Error> {
            offsets
                .iter()
                .map(|e| match e {
                    Expr::LitInt { val, .. } if *val > 0 => Ok(*val as u64),
                    other => Err(Error::parse(
                        "this view requires positive integer factors",
                        other.span(),
                    )),
                })
                .collect()
        };
        match kind {
            Tok::Shrink => Ok(ViewKind::Shrink {
                factors: const_factors(&offsets)?,
            }),
            Tok::Suffix => Ok(ViewKind::Suffix { offsets }),
            Tok::Shift => Ok(ViewKind::Shift { offsets }),
            Tok::Split => {
                let fs = const_factors(&offsets)?;
                if fs.len() != 1 {
                    return Err(Error::parse(
                        "`split` takes exactly one factor",
                        self.span(),
                    ));
                }
                Ok(ViewKind::Split { factor: fs[0] })
            }
            other => Err(Error::parse(
                format!("expected a view kind, found {other:?}"),
                self.prev_span(),
            )),
        }
    }

    fn if_cmd(&mut self) -> Result<Cmd, Error> {
        let start = self.expect(&Tok::If)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_branch = Arc::new(self.block()?);
        let else_branch = if self.eat(&Tok::Else) {
            Some(Arc::new(if *self.peek() == Tok::If {
                self.if_cmd()?
            } else {
                self.block()?
            }))
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Ok(Cmd::If {
            cond,
            then_branch,
            else_branch,
            span,
        })
    }

    fn while_cmd(&mut self) -> Result<Cmd, Error> {
        let start = self.expect(&Tok::While)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = Arc::new(self.block()?);
        let span = start.merge(self.prev_span());
        Ok(Cmd::While { cond, body, span })
    }

    fn for_cmd(&mut self) -> Result<Cmd, Error> {
        let start = self.expect(&Tok::For)?;
        self.expect(&Tok::LParen)?;
        self.expect(&Tok::Let)?;
        let (var, _) = self.ident()?;
        self.expect(&Tok::Eq)?;
        let lo = self.int()?;
        self.expect(&Tok::DotDot)?;
        let hi = self.int()?;
        self.expect(&Tok::RParen)?;
        let unroll = if self.eat(&Tok::Unroll) {
            self.int()? as u64
        } else {
            1
        };
        if unroll == 0 {
            return Err(Error::parse(
                "unroll factor must be positive",
                self.prev_span(),
            ));
        }
        let body = Arc::new(self.block()?);
        let combine = if self.eat(&Tok::Combine) {
            Some(Arc::new(self.block()?))
        } else {
            None
        };
        let span = start.merge(self.prev_span());
        Ok(Cmd::For {
            var,
            lo,
            hi,
            unroll,
            body,
            combine,
            span,
        })
    }

    /// Statements beginning with an identifier: assignment, store, reducer,
    /// or a bare expression (e.g. a call).
    fn stmt_starting_with_ident(&mut self) -> Result<Cmd, Error> {
        let (name, start) = self.ident()?;

        // Physical bank `A{b}` and/or indices `A[i]…`.
        let mut phys_bank = None;
        if *self.peek() == Tok::LBrace {
            self.bump();
            phys_bank = Some(Arc::new(self.expr()?));
            self.expect(&Tok::RBrace)?;
        }
        let mut idxs = Vec::new();
        while self.eat(&Tok::LBracket) {
            idxs.push(self.expr()?);
            self.expect(&Tok::RBracket)?;
        }

        let reducer = match self.peek() {
            Tok::PlusEq => Some(Reducer::AddAssign),
            Tok::MinusEq => Some(Reducer::SubAssign),
            Tok::StarEq => Some(Reducer::MulAssign),
            Tok::SlashEq => Some(Reducer::DivAssign),
            _ => None,
        };
        if let Some(op) = reducer {
            if phys_bank.is_some() {
                return Err(Error::parse(
                    "reducers cannot target a physical bank",
                    self.span(),
                ));
            }
            self.bump();
            let rhs = self.expr()?;
            let span = start.merge(self.prev_span());
            return Ok(Cmd::Reduce {
                target: name,
                target_idxs: idxs,
                op,
                rhs,
                span,
            });
        }

        if self.eat(&Tok::Assign) {
            let rhs = self.expr()?;
            let span = start.merge(self.prev_span());
            return if idxs.is_empty() && phys_bank.is_none() {
                Ok(Cmd::Assign { name, rhs, span })
            } else {
                Ok(Cmd::Store {
                    mem: name,
                    phys_bank,
                    idxs,
                    rhs,
                    span,
                })
            };
        }

        // Otherwise it is an expression statement; re-wrap what we parsed.
        let base = if idxs.is_empty() && phys_bank.is_none() {
            if *self.peek() == Tok::LParen {
                return self.call_stmt(name, start);
            }
            Expr::Var { name, span: start }
        } else {
            Expr::Access {
                mem: name,
                phys_bank,
                idxs,
                span: start.merge(self.prev_span()),
            }
        };
        let e = self.binop_rhs(base, 0)?;
        Ok(Cmd::Expr(e))
    }

    fn call_stmt(&mut self, func: Id, start: Span) -> Result<Cmd, Error> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let span = start.merge(self.prev_span());
        Ok(Cmd::Expr(Expr::Call { func, args, span }))
    }

    // ------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, Error> {
        let lhs = self.unary()?;
        self.binop_rhs(lhs, 0)
    }

    fn binop_prec(t: &Tok) -> Option<(BinOp, u8)> {
        Some(match t {
            Tok::OrOr => (BinOp::Or, 1),
            Tok::AndAnd => (BinOp::And, 2),
            Tok::EqEq => (BinOp::Eq, 3),
            Tok::Ne => (BinOp::Neq, 3),
            Tok::Lt => (BinOp::Lt, 4),
            Tok::Gt => (BinOp::Gt, 4),
            Tok::Le => (BinOp::Lte, 4),
            Tok::Ge => (BinOp::Gte, 4),
            Tok::Plus => (BinOp::Add, 5),
            Tok::Minus => (BinOp::Sub, 5),
            Tok::Star => (BinOp::Mul, 6),
            Tok::Slash => (BinOp::Div, 6),
            Tok::Percent => (BinOp::Mod, 6),
            _ => return None,
        })
    }

    /// Precedence-climbing loop.
    fn binop_rhs(&mut self, mut lhs: Expr, min_prec: u8) -> Result<Expr, Error> {
        while let Some((op, prec)) = Self::binop_prec(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let mut rhs = self.unary()?;
            while let Some((_, next_prec)) = Self::binop_prec(self.peek()) {
                if next_prec > prec {
                    rhs = self.binop_rhs(rhs, next_prec)?;
                } else {
                    break;
                }
            }
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Bin {
                op,
                lhs: Arc::new(lhs),
                rhs: Arc::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, Error> {
        match self.peek() {
            Tok::Bang => {
                let sp = self.span();
                self.bump();
                let arg = self.unary()?;
                let span = sp.merge(arg.span());
                Ok(Expr::Un {
                    op: UnOp::Not,
                    arg: Arc::new(arg),
                    span,
                })
            }
            Tok::Minus => {
                let sp = self.span();
                self.bump();
                let arg = self.unary()?;
                let span = sp.merge(arg.span());
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    arg: Arc::new(arg),
                    span,
                })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, Error> {
        let sp = self.span();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::LitInt { val: v, span: sp }),
            Tok::Float(v) => Ok(Expr::LitFloat { val: v, span: sp }),
            Tok::True => Ok(Expr::LitBool {
                val: true,
                span: sp,
            }),
            Tok::False => Ok(Expr::LitBool {
                val: false,
                span: sp,
            }),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // Call?
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    return Ok(Expr::Call {
                        func: name,
                        args,
                        span: sp.merge(self.prev_span()),
                    });
                }
                // Physical bank and/or indices?
                let mut phys_bank = None;
                if *self.peek() == Tok::LBrace && !self.brace_is_block() {
                    self.bump();
                    phys_bank = Some(Arc::new(self.expr()?));
                    self.expect(&Tok::RBrace)?;
                }
                let mut idxs = Vec::new();
                while *self.peek() == Tok::LBracket {
                    self.bump();
                    idxs.push(self.expr()?);
                    self.expect(&Tok::RBracket)?;
                }
                if idxs.is_empty() && phys_bank.is_none() {
                    Ok(Expr::Var { name, span: sp })
                } else {
                    Ok(Expr::Access {
                        mem: name,
                        phys_bank,
                        idxs,
                        span: sp.merge(self.prev_span()),
                    })
                }
            }
            other => Err(Error::parse(
                format!("expected an expression, found {other:?}"),
                sp,
            )),
        }
    }

    /// Disambiguate `x {`: in expression position a `{` could only be a
    /// physical-bank selector, which must contain an expression followed by
    /// `}` and then `[`. A block would start a new statement — but blocks
    /// never directly follow an expression, so we treat `{` as a selector
    /// when the token two ahead keeps the selector shape.
    fn brace_is_block(&self) -> bool {
        // `A{0}[…]` — selector always has `Int`/`Ident` right after `{`.
        !matches!(self.peek2(), Tok::Int(_) | Tok::Ident(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(src: &str) -> Cmd {
        parse(src).unwrap().body
    }

    #[test]
    fn parses_memory_let() {
        let c = body("let A: float[8 bank 4];");
        match c {
            Cmd::Let {
                name,
                ty: Some(Type::Mem(m)),
                init: None,
                ..
            } => {
                assert_eq!(name, "A");
                assert_eq!(m.dims, vec![Dim::banked(8, 4)]);
                assert_eq!(m.ports, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_multiported() {
        let c = body("let A: float{2}[10];");
        match c {
            Cmd::Let {
                ty: Some(Type::Mem(m)),
                ..
            } => {
                assert_eq!(m.ports, 2);
                assert_eq!(m.dims, vec![Dim::flat(10)]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn semi_vs_seqcomp_precedence() {
        // a; b --- c  ==>  Par([Seq([a,b]), c])
        let c = body("x := 1; y := 2 --- z := 3");
        match c {
            Cmd::Par(steps) => {
                assert_eq!(steps.len(), 2);
                assert!(matches!(steps[0], Cmd::Seq(ref v) if v.len() == 2));
                assert!(matches!(steps[1], Cmd::Assign { .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn paper_ordered_block_example() {
        let c = body(
            "let A: float[10]; let B: float[10];
             {
               let x = A[0] + 1
               ---
               B[1] := A[1] + x
             };
             let y = B[0];",
        );
        match c {
            Cmd::Seq(v) => {
                assert_eq!(v.len(), 4);
                assert!(matches!(v[2], Cmd::Par(ref steps) if steps.len() == 2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_for_unroll_combine() {
        let c = body(
            "for (let i = 0..10) unroll 2 {
               let v = A[i] * B[i];
             } combine {
               dot += v;
             }",
        );
        match c {
            Cmd::For {
                var,
                lo,
                hi,
                unroll,
                combine,
                ..
            } => {
                assert_eq!(var, "i");
                assert_eq!((lo, hi), (0, 10));
                assert_eq!(unroll, 2);
                let comb = combine.expect("combine block");
                assert!(matches!(
                    *comb,
                    Cmd::Reduce {
                        op: Reducer::AddAssign,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_views() {
        let c = body("view sh = shrink A[by 2];");
        assert!(
            matches!(c, Cmd::View { ref kind, .. } if *kind == ViewKind::Shrink { factors: vec![2] })
        );
        let c = body("view w = shift orig[by row][by col];");
        match c {
            Cmd::View {
                kind: ViewKind::Shift { offsets },
                mem,
                ..
            } => {
                assert_eq!(mem, "orig");
                assert_eq!(offsets.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let c = body("view sp = split A[by 2];");
        assert!(matches!(
            c,
            Cmd::View {
                kind: ViewKind::Split { factor: 2 },
                ..
            }
        ));
    }

    #[test]
    fn parses_multi_view() {
        let c = body("view vA, vB = suffix shA[by 2*i], shB[by 2*i];");
        match c {
            Cmd::Seq(v) => {
                assert_eq!(v.len(), 2);
                assert!(matches!(
                    v[0],
                    Cmd::View {
                        kind: ViewKind::Suffix { .. },
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn mismatched_multi_view_errors() {
        assert!(parse("view a, b = shrink A[by 2];").is_err());
    }

    #[test]
    fn parses_physical_access() {
        let c = body("A{0}[0] := 1;");
        match c {
            Cmd::Store {
                mem,
                phys_bank,
                idxs,
                ..
            } => {
                assert_eq!(mem, "A");
                assert!(phys_bank.is_some());
                assert_eq!(idxs.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let e = parse_expr("M{3}[0]").unwrap();
        assert!(matches!(
            e,
            Expr::Access {
                phys_bank: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_decl_and_def() {
        let p = parse(
            "decl A: float[512 bank 2][512];
             def f(x: bit<32>, M: float[8 bank 4]) { M[x] := 1; }
             f(3, A);",
        )
        .unwrap();
        assert_eq!(p.decls.len(), 1);
        assert_eq!(p.decls[0].ty.dims.len(), 2);
        assert_eq!(p.defs.len(), 1);
        assert_eq!(p.defs[0].params.len(), 2);
        assert!(matches!(p.body, Cmd::Expr(Expr::Call { .. })));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let e = parse_expr("a < b && c < d").unwrap();
        assert!(matches!(e, Expr::Bin { op: BinOp::And, .. }));
    }

    #[test]
    fn if_else_chain() {
        let c = body("if (x < 1) { y := 0; } else if (x < 2) { y := 1; } else { y := 2; }");
        match c {
            Cmd::If {
                else_branch: Some(e),
                ..
            } => assert!(matches!(*e, Cmd::If { .. })),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn memory_reducer_target() {
        let c = body("prod[i][j] += mul;");
        match c {
            Cmd::Reduce {
                target,
                target_idxs,
                op: Reducer::AddAssign,
                ..
            } => {
                assert_eq!(target, "prod");
                assert_eq!(target_idxs.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("let = 4;").is_err());
        assert!(parse("for (let i = 0..10) unroll 0 { }").is_err());
        assert!(parse("view v = chunk A[by 2];").is_err());
        assert!(parse("decl x: bit<32>;").is_err());
    }

    #[test]
    fn while_loop() {
        let c = body("while (i < 10) { i := i + 1; }");
        assert!(matches!(c, Cmd::While { .. }));
    }
}
