//! Pretty-printer: turn an AST back into Dahlia surface syntax.
//!
//! Round-tripping (`parse(pretty(p)) == structurally p`) is exercised by
//! tests; the printer is also used by `dahliac --emit dahlia` and by the
//! desugarer's debug output.

use std::fmt::Write as _;

use crate::ast::*;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        let _ = writeln!(out, "decl {}: {};", d.name, d.ty);
    }
    for f in &p.defs {
        let params = f
            .params
            .iter()
            .map(|p| format!("{}: {}", p.name, p.ty))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "def {}({}) {{", f.name, params);
        cmd_into(&f.body, 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    cmd_into(&p.body, 0, &mut out);
    out
}

/// Render a command.
pub fn cmd(c: &Cmd) -> String {
    let mut out = String::new();
    cmd_into(c, 0, &mut out);
    out
}

/// Render an expression.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::LitInt { val, .. } => val.to_string(),
        Expr::LitFloat { val, .. } => {
            let s = val.to_string();
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::LitBool { val, .. } => val.to_string(),
        Expr::Var { name, .. } => name.to_string(),
        Expr::Bin { op, lhs, rhs, .. } => format!("({} {} {})", expr(lhs), op, expr(rhs)),
        Expr::Un { op, arg, .. } => {
            let s = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            };
            format!("{s}{}", expr(arg))
        }
        Expr::Access {
            mem,
            phys_bank,
            idxs,
            ..
        } => {
            let mut s = mem.to_string();
            if let Some(b) = phys_bank {
                let _ = write!(s, "{{{}}}", expr(b));
            }
            for i in idxs {
                let _ = write!(s, "[{}]", expr(i));
            }
            s
        }
        Expr::Call { func, args, .. } => {
            format!(
                "{func}({})",
                args.iter().map(expr).collect::<Vec<_>>().join(", ")
            )
        }
    }
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn cmd_into(c: &Cmd, depth: usize, out: &mut String) {
    match c {
        Cmd::Skip => {}
        Cmd::Seq(cs) => {
            for c in cs {
                cmd_into(c, depth, out);
            }
        }
        Cmd::Par(steps) => {
            for (i, s) in steps.iter().enumerate() {
                if i > 0 {
                    indent(depth, out);
                    out.push_str("---\n");
                }
                cmd_into(s, depth, out);
            }
        }
        Cmd::Let { name, ty, init, .. } => {
            indent(depth, out);
            let _ = write!(out, "let {name}");
            if let Some(t) = ty {
                let _ = write!(out, ": {t}");
            }
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Cmd::View {
            name, mem, kind, ..
        } => {
            indent(depth, out);
            let args = |offsets: &[Expr]| {
                offsets
                    .iter()
                    .map(|o| format!("[by {}]", expr(o)))
                    .collect::<String>()
            };
            let body = match kind {
                ViewKind::Shrink { factors } => format!(
                    "shrink {mem}{}",
                    factors
                        .iter()
                        .map(|f| format!("[by {f}]"))
                        .collect::<String>()
                ),
                ViewKind::Suffix { offsets } => format!("suffix {mem}{}", args(offsets)),
                ViewKind::Shift { offsets } => format!("shift {mem}{}", args(offsets)),
                ViewKind::Split { factor } => format!("split {mem}[by {factor}]"),
            };
            let _ = writeln!(out, "view {name} = {body};");
        }
        Cmd::Assign { name, rhs, .. } => {
            indent(depth, out);
            let _ = writeln!(out, "{name} := {};", expr(rhs));
        }
        Cmd::Store {
            mem,
            phys_bank,
            idxs,
            rhs,
            ..
        } => {
            indent(depth, out);
            let mut s = mem.to_string();
            if let Some(b) = phys_bank {
                let _ = write!(s, "{{{}}}", expr(b));
            }
            for i in idxs {
                let _ = write!(s, "[{}]", expr(i));
            }
            let _ = writeln!(out, "{s} := {};", expr(rhs));
        }
        Cmd::Reduce {
            target,
            target_idxs,
            op,
            rhs,
            ..
        } => {
            indent(depth, out);
            let mut s = target.to_string();
            for i in target_idxs {
                let _ = write!(s, "[{}]", expr(i));
            }
            let _ = writeln!(out, "{s} {op} {};", expr(rhs));
        }
        Cmd::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            indent(depth, out);
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            cmd_into(then_branch, depth + 1, out);
            indent(depth, out);
            if let Some(e) = else_branch {
                out.push_str("} else {\n");
                cmd_into(e, depth + 1, out);
                indent(depth, out);
            }
            out.push_str("}\n");
        }
        Cmd::While { cond, body, .. } => {
            indent(depth, out);
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            cmd_into(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Cmd::For {
            var,
            lo,
            hi,
            unroll,
            body,
            combine,
            ..
        } => {
            indent(depth, out);
            let _ = write!(out, "for (let {var} = {lo}..{hi})");
            if *unroll > 1 {
                let _ = write!(out, " unroll {unroll}");
            }
            out.push_str(" {\n");
            cmd_into(body, depth + 1, out);
            indent(depth, out);
            out.push('}');
            if let Some(c) = combine {
                out.push_str(" combine {\n");
                cmd_into(c, depth + 1, out);
                indent(depth, out);
                out.push('}');
            }
            out.push('\n');
        }
        Cmd::Expr(e) => {
            indent(depth, out);
            let _ = writeln!(out, "{};", expr(e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Normalize by stripping spans so round-trips compare structurally.
    fn reparse(src: &str) -> Program {
        let p = parse(src).unwrap();
        let printed = program(&p);
        parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"))
    }

    #[test]
    fn roundtrip_kitchen_sink() {
        let src = "decl A: float[16 bank 2];
             def f(x: bit<32>, M: float[16 bank 2]) { M[x] := 1.0; }
             let B: float{2}[8 bank 4][4];
             view sh = shrink B[by 2][by 1];
             let t = 0.0;
             for (let i = 0..16) unroll 2 {
               let v = A[i] * 2.0;
             } combine { t += v; }
             if (t > 0.5) { t := 0.0; } else { t := 1.0; }
             while (t < 4.0) { t := t + 1.0; }";
        let p1 = reparse(src);
        // Printing the re-parsed program again must be a fixpoint.
        let printed = program(&p1);
        let p2 = parse(&printed).unwrap();
        assert_eq!(program(&p2), printed);
    }

    #[test]
    fn roundtrip_views_and_physical() {
        let src = "let A: bit<32>[12 bank 4];
             view sp = split A[by 2];
             view su = suffix A[by 4*1];
             view shf = shift A[by 3];
             A{0}[0] := 1;";
        let p = reparse(src);
        assert_eq!(p.body, reparse(&program(&p)).body);
    }

    #[test]
    fn expr_precedence_survives() {
        let p1 = reparse("let x = 1 + 2 * 3 - 4 / 2;");
        match &p1.body {
            crate::ast::Cmd::Let { init: Some(e), .. } => {
                // (1 + (2*3)) - (4/2) = 5 under const-eval.
                assert_eq!(crate::check::const_eval(e), Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn float_literals_keep_dot() {
        assert_eq!(
            expr(&Expr::LitFloat {
                val: 2.0,
                span: crate::span::Span::synthetic()
            }),
            "2.0"
        );
    }
}
