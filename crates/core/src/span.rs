//! Source locations and spans for error reporting.

use std::fmt;

/// A half-open byte range into a source file, with 1-based line/column of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Create a span covering `start..end` at the given line/column.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width placeholder span (used by synthesized AST nodes).
    pub fn synthetic() -> Self {
        Span::default()
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// Line/column information is taken from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Spanned<T> {
    /// The wrapped value.
    pub node: T,
    /// Where it appeared in the source.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Wrap `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Spanned { node, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_on_extent() {
        let a = Span::new(0, 4, 1, 1);
        let b = Span::new(10, 12, 2, 3);
        let m1 = a.merge(b);
        let m2 = b.merge(a);
        assert_eq!((m1.start, m1.end), (0, 12));
        assert_eq!((m1.start, m1.end), (m2.start, m2.end));
        assert_eq!(m1.line, 1);
        assert_eq!(m2.line, 1);
    }

    #[test]
    fn display_shows_line_col() {
        let s = Span::new(5, 9, 3, 7);
        assert_eq!(s.to_string(), "3:7");
    }
}
