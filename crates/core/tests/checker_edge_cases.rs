//! Additional checker edge cases: view chains, multi-port interactions,
//! functions × memories, nested combine blocks, and physical accesses —
//! the corners the paper's prose implies but never spells out.

use dahlia_core::{parse, typecheck, Error, TypeErrorKind};

fn accepts(src: &str) {
    let p = parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    typecheck(&p).unwrap_or_else(|e| panic!("expected accept: {e}\n{src}"));
}

fn rejects(src: &str, kind: TypeErrorKind) {
    let p = parse(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    match typecheck(&p) {
        Err(Error::Type(t)) => assert_eq!(t.kind, kind, "{t}\n{src}"),
        Ok(_) => panic!("expected {kind:?}\n{src}"),
        Err(e) => panic!("unexpected error class {e}\n{src}"),
    }
}

// ------------------------------------------------------------ view chains

#[test]
fn shrink_of_shrink_composes() {
    accepts(
        "let A: float[16 bank 8];
         view s1 = shrink A[by 2];
         view s2 = shrink s1[by 2];
         for (let i = 0..16) unroll 2 { let x = s2[i]; }",
    );
}

#[test]
fn shrink_of_shrink_still_guards_the_root() {
    rejects(
        "let A: float[16 bank 8];
         view s1 = shrink A[by 2];
         view s2 = shrink s1[by 2];
         for (let i = 0..16) unroll 2 { let x = s2[i]; let y = A[0]; }",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn suffix_of_shrink() {
    accepts(
        "let A: float[16 bank 4];
         view sh = shrink A[by 2];
         for (let b = 0..8) {
           view sfx = suffix sh[by 2*b];
           let x = sfx[0];
         }",
    );
}

#[test]
fn shrink_of_shift_window() {
    accepts(
        "let A: float[16 bank 4];
         for (let r = 0..4) {
           view w = shift A[by r];
           view ws = shrink w[by 2];
           for (let i = 0..4) unroll 2 { let x = ws[i]; }
         }",
    );
}

#[test]
fn two_shift_views_conflict_on_the_same_root() {
    rejects(
        "let A: float[12 bank 4];
         view w1 = shift A[by 1];
         view w2 = shift A[by 2];
         let x = w1[0]; let y = w2[0];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn one_shift_view_allows_many_distinct_banks() {
    accepts(
        "let A: float[12 bank 4];
         view w = shift A[by 5];
         let a = w[0]; let b = w[1]; let c = w[2]; let d = w[3];",
    );
}

#[test]
fn shift_claim_plus_direct_access_needs_two_ports() {
    accepts(
        "let A: float{2}[12 bank 4];
         view w = shift A[by 5];
         let a = w[0]; let b = A[1];",
    );
    rejects(
        "let A: float[12 bank 4];
         view w = shift A[by 5];
         let a = w[0]; let b = A[1];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn split_of_shrink() {
    accepts(
        "let A: float[16 bank 8];
         view sh = shrink A[by 2];
         view sp = split sh[by 2];
         for (let i = 0..8) unroll 2 {
           for (let j = 0..2) unroll 2 {
             let v = sp[j][i];
           }
         }",
    );
}

// ----------------------------------------------------- ports × everything

#[test]
fn two_ports_allow_two_distinct_reads_per_bank() {
    accepts("let A: float{2}[10]; let x = A[0]; let y = A[1];");
    rejects(
        "let A: float{2}[10]; let x = A[0]; let y = A[1]; let z = A[2];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn ports_propagate_through_views() {
    accepts(
        "let A: float{2}[8 bank 4];
         view sh = shrink A[by 2];
         for (let i = 0..8) unroll 2 { let x = sh[i]; let y = sh[i] + 1.0; }",
    );
}

#[test]
fn identical_reads_share_even_across_ports() {
    // Three identical reads need only one port.
    accepts("let A: float[10]; let x = A[3]; let y = A[3]; let z = A[3];");
}

// ------------------------------------------------- functions × memories

#[test]
fn function_with_view_typed_memory_arg() {
    // A shrink view has a memory type and can be passed where it matches.
    accepts(
        "def f(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 4];
         view sh = shrink A[by 2];
         f(sh);",
    );
}

#[test]
fn call_consumes_view_root() {
    rejects(
        "def f(M: float[8 bank 2]) { M[0] := 1.0; }
         let A: float[8 bank 4];
         view sh = shrink A[by 2];
         f(sh); let x = A[0];",
        TypeErrorKind::AlreadyConsumed,
    );
}

#[test]
fn function_scalar_results_via_memory() {
    accepts(
        "def accum(M: float[4], v: float) { M[0] := v; }
         let out: float[4];
         let t = 2.0;
         accum(out, t * 3.0);",
    );
}

#[test]
fn functions_cannot_capture_outer_memories() {
    // Functions are closed: the body sees only its parameters, so a
    // reference to a top-level memory is unbound inside `f`.
    rejects(
        "def f(x: float) { A[0] := x; }
         decl A: float[4];
         f(1.0);",
        TypeErrorKind::Unbound,
    );
}

// ----------------------------------------------------- combine subtleties

#[test]
fn nested_combines_reduce_hierarchically() {
    accepts(
        "let A: float[4 bank 2][4 bank 2];
         let total = 0.0;
         for (let i = 0..4) unroll 2 {
           for (let j = 0..4) unroll 2 {
             let v = A[i][j];
           } combine {
             total += v;
           }
         }",
    );
}

#[test]
fn combine_cannot_read_memories_already_used_by_body() {
    // Body consumes A's banks in its (only) time step; the combine is a
    // separate step, so reading A there is fine.
    accepts(
        "let A: float[8 bank 2]; let s = 0.0;
         for (let i = 0..8) unroll 2 {
           let v = A[i];
         } combine {
           s += v + A[0];
         }",
    );
}

#[test]
fn combine_register_cannot_index() {
    rejects(
        "let A: float[8 bank 2]; let B: float[8]; let s = 0.0;
         for (let i = 0..8) unroll 2 {
           let v = A[i];
         } combine {
           s += B[v];
         }",
        TypeErrorKind::BadCombine,
    );
}

#[test]
fn reducers_outside_loops_are_plain_updates() {
    accepts("let x = 1.0; x += 2.0; x *= 3.0;");
}

// ------------------------------------------------------------- physical

#[test]
fn physical_bank_must_be_constant() {
    rejects(
        "let A: float[8 bank 2]; let b = 1; let x = A{b}[0];",
        TypeErrorKind::InvalidIndex,
    );
}

#[test]
fn physical_bank_out_of_range() {
    rejects(
        "let A: float[8 bank 2]; let x = A{2}[0];",
        TypeErrorKind::BadAccess,
    );
}

#[test]
fn physical_offset_may_be_dynamic() {
    accepts("let A: float[8 bank 2]; let o = 3; let x = A{0}[o];");
}

// ---------------------------------------------------------- odds & ends

#[test]
fn zero_sized_dims_rejected() {
    rejects("let A: float[0];", TypeErrorKind::UnevenBanking);
}

#[test]
fn iterator_shadowing() {
    // A nested loop may shadow an outer iterator (new scope)…
    accepts("for (let i = 0..4) { for (let i = 0..4) { let x = i; } }");
    // …but rebinding within the same body scope is rejected.
    rejects(
        "for (let i = 0..4) { let i = 1; }",
        TypeErrorKind::AlreadyDefined,
    );
}

#[test]
fn empty_range_rejected() {
    rejects("for (let i = 4..4) { let x = i; }", TypeErrorKind::Mismatch);
}

#[test]
fn bool_memories_work() {
    accepts("let F: bool[8 bank 2]; F[0] := true; F[1] := false;");
}

#[test]
fn while_then_for_capability_flow() {
    accepts(
        "let A: float[8]; let n = 0;
         while (n < 4) { A[n] := 1.0 --- n := n + 1; }
         ---
         for (let i = 0..8) { let x = A[i]; }",
    );
}
