//! Property test: desugaring preserves semantics.
//!
//! For generated programs with nested `unroll` loops, `combine` blocks,
//! and every view kind, `interp(desugar(p))` must agree with
//! `interp(p)` on all memory contents (the checked interpreter's
//! capability monitor is off — desugared output is meant for execution
//! and lowering, not re-type-checking). This is the guard rail for the
//! clone-free copy-on-write rewriter: a substitution bug that corrupted
//! or wrongly shared a subtree shows up as a state divergence here.

use std::collections::HashMap;

use proptest::prelude::*;

use dahlia_core::desugar::{desugar, inline_views};
use dahlia_core::interp::{interpret_with, InterpOptions};
use dahlia_core::parse;

/// Generator parameters: a memory geometry (size divisible by banks),
/// an unroll factor dividing the trip count, and a program shape.
fn params() -> impl Strategy<Value = (u64, u64, u64, i64, usize)> {
    (
        prop::sample::select(vec![8u64, 12, 16, 24]),
        prop::sample::select(vec![1u64, 2, 4]),
        prop::sample::select(vec![1u64, 2, 4]),
        1i64..6,
        0usize..7,
    )
}

/// Build one of seven program shapes from the parameters. Every shape
/// is valid under the unchecked interpreter by construction (indices in
/// bounds, geometry divisible).
fn source(n: u64, banks: u64, unroll: u64, c: i64, shape: usize) -> String {
    // Clamp to a legal geometry: banks | n and unroll | n.
    let banks = if n.is_multiple_of(banks) { banks } else { 1 };
    let unroll = if n.is_multiple_of(unroll) { unroll } else { 1 };
    match shape {
        // Plain banked write loop.
        0 => format!(
            "let A: bit<32>[{n} bank {banks}];
             for (let i = 0..{n}) unroll {unroll} {{ A[i] := i * {c}; }}"
        ),
        // Ordered body with a per-copy local.
        1 => format!(
            "let A: bit<32>[{n} bank {banks}]; let B: bit<32>[{n} bank {banks}];
             for (let i = 0..{n}) unroll {unroll} {{
               let x = i * {c}
               ---
               A[i] := x
               ---
               B[i] := A[i] + x;
             }}"
        ),
        // Reduction through a combine block.
        2 => format!(
            "let A: bit<32>[{n} bank {banks}]; let out: bit<32>[1];
             for (let i = 0..{n}) unroll {unroll} {{ A[i] := i + {c}; }}
             ---
             for (let i = 0..{n}) unroll {unroll} {{
               let v = A[i];
             }} combine {{
               out[0] += v;
             }}"
        ),
        // Shrink view re-read at a smaller parallelism.
        3 => {
            let shrink = if banks > 1 { 2 } else { 1 };
            let u2 = banks / shrink.min(banks);
            let u2 = if u2 == 0 || !n.is_multiple_of(u2) {
                1
            } else {
                u2
            };
            format!(
                "let A: bit<32>[{n} bank {banks}]; let B: bit<32>[{n} bank {banks}];
                 for (let i = 0..{n}) unroll {unroll} {{ A[i] := i * {c}; }}
                 ---
                 view sh = shrink A[by {shrink}];
                 for (let i = 0..{n}) unroll {u2} {{ B[i] := sh[i]; }}"
            )
        }
        // Suffix view with a dynamic aligned offset. The window stride
        // is at least 2 so `s[1]` stays in bounds on the last window.
        4 => {
            let stride = banks.max(2);
            let windows = n / stride;
            format!(
                "let A: bit<32>{{4}}[{n} bank {banks}]; let out: bit<32>[{windows}];
                 for (let i = 0..{n}) unroll {unroll} {{ A[i] := i * i + {c}; }}
                 ---
                 for (let g = 0..{windows}) {{
                   view s = suffix A[by {stride}*g];
                   out[g] := s[0] + s[1];
                 }}"
            )
        }
        // Split view under nested unrolled loops with a combine.
        5 => {
            let f = if banks.is_multiple_of(2) { 2 } else { 1 };
            let inner = n / f;
            let iu = if inner.is_multiple_of(2) { 2 } else { 1 };
            format!(
                "let A: bit<32>[{n} bank {banks}]; let out: bit<32>[{inner}];
                 for (let i = 0..{n}) {{ A[i] := i * {c}; }}
                 ---
                 view sp = split A[by {f}];
                 for (let i = 0..{inner}) unroll {iu} {{
                   for (let j = 0..{f}) unroll {f} {{
                     let v = sp[j][i];
                   }} combine {{
                     out[i] += v;
                   }}
                 }}"
            )
        }
        // Nested unrolled loops over a 2-D memory.
        _ => {
            let m = banks * 3;
            format!(
                "let M: bit<32>[{n} bank {banks}][{m} bank {banks}];
                 for (let i = 0..{n}) unroll {unroll} {{
                   for (let j = 0..{m}) unroll {banks} {{
                     M[i][j] := i * 10 + j + {c};
                   }}
                 }}"
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn desugaring_preserves_interpretation((n, banks, unroll, c, shape) in params()) {
        let src = source(n, banks, unroll, c, shape);
        let p = parse(&src).unwrap_or_else(|e| panic!("generated source must parse: {e}\n{src}"));
        let opts = InterpOptions {
            check_capabilities: false,
            ..Default::default()
        };
        let reference = interpret_with(&p, &opts, &HashMap::new())
            .unwrap_or_else(|e| panic!("surface program runs: {e}\n{src}"));

        let d = desugar(&p);
        let desugared = interpret_with(&d, &opts, &HashMap::new())
            .unwrap_or_else(|e| panic!("desugared program runs: {e}\n{src}"));
        prop_assert_eq!(
            &reference.mems,
            &desugared.mems,
            "desugar changed memory state for\n{}",
            src
        );

        // View inlining alone must also preserve semantics.
        let v = inline_views(&p);
        let inlined = interpret_with(&v, &opts, &HashMap::new())
            .unwrap_or_else(|e| panic!("view-inlined program runs: {e}\n{src}"));
        prop_assert_eq!(
            &reference.mems,
            &inlined.mems,
            "inline_views changed memory state for\n{}",
            src
        );

        // Desugaring is idempotent on its own output: a second pass over
        // an already-unrolled, view-free program is the identity modulo
        // interpretation.
        let dd = desugar(&d);
        let twice = interpret_with(&dd, &opts, &HashMap::new())
            .unwrap_or_else(|e| panic!("double-desugared program runs: {e}\n{src}"));
        prop_assert_eq!(&reference.mems, &twice.mems);
    }
}
