//! Allocation accounting for the lexer: identifier tokens must not heap
//! allocate once their names are interned.
//!
//! The pre-interning lexer built a `String` for every identifier-shaped
//! lexeme — even ones immediately discarded by parser lookahead. With
//! the global interner, lexing a warm source performs **no per-token
//! allocation**: this test pins that with a counting global allocator
//! (an integration test gets its own binary, so the allocator swap
//! cannot leak into other suites).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dahlia_core::lexer::{lex, Tok};

/// The allocation counter is process-global; libtest runs tests on
/// parallel threads by default, so each measuring test takes this lock
/// to keep the other test's allocations out of its window.
static MEASURE: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// A source with a dense identifier population: repeated names, names
/// that are *almost* keywords, and names only ever seen under parser
/// lookahead positions.
fn busy_source() -> String {
    let mut src = String::from("let unrolled = 1; let forever = 2; let banker = 3;\n");
    for i in 0..40 {
        src.push_str(&format!(
            "alpha_{m} := alpha_{m} + beta_{m} * banker + unrolled - forever;\n",
            m = i % 8
        ));
    }
    src
}

#[test]
fn warm_identifier_lexing_is_allocation_independent() {
    let _guard = MEASURE.lock().unwrap();
    let src = busy_source();

    // Pass 1 warms the interner (first sighting of each distinct name
    // allocates exactly once, process-wide).
    let first = lex(&src).expect("lexes");
    let idents = first
        .iter()
        .filter(|t| matches!(t.tok, Tok::Ident(_)))
        .count();
    assert!(idents > 200, "the source is identifier-dense: {idents}");

    // Pass 2: same source, warm interner. The only permitted
    // allocations are the token vector itself (pre-sized: one reserve)
    // and allocator noise — nothing proportional to the token count.
    let mut second = Vec::new();
    let allocs = allocs_during(|| {
        second = lex(&src).expect("lexes");
    });
    assert!(
        allocs <= 4,
        "warm lex of {idents} identifiers performed {allocs} allocations — \
         identifier lexing must not allocate per token"
    );

    // Token streams are equal, and equality is allocation-independent:
    // the same spelling yields the very same interned symbol.
    assert_eq!(first, second);
    for (a, b) in first.iter().zip(&second) {
        if let (Tok::Ident(x), Tok::Ident(y)) = (&a.tok, &b.tok) {
            assert_eq!(x, y);
            assert!(
                std::ptr::eq(x.as_str(), y.as_str()),
                "equal identifiers resolve to one interned allocation"
            );
        }
    }
}

#[test]
fn keyword_lookahead_discards_do_not_allocate() {
    // The PR-motivating case: `Tok::keyword` used to allocate a String
    // for every identifier even when the token was immediately discarded
    // by lookahead. Keywords themselves never allocate; identifiers
    // allocate at most once ever.
    let _guard = MEASURE.lock().unwrap();
    let src = "for while if else let view unroll combine def decl by true false";
    let _warm = lex(src).expect("lexes");
    let allocs = allocs_during(|| {
        let _ = lex(src).expect("lexes");
    });
    assert!(allocs <= 2, "keyword-only source allocated {allocs} times");
}
