//! Property tests for the front end: pretty-printing is a parser fixpoint,
//! the checker is deterministic and total, and desugaring agrees with
//! direct interpretation on generated programs.

use std::collections::HashMap;

use proptest::prelude::*;

use dahlia_core::desugar::desugar;
use dahlia_core::interp::{interpret_with, InterpOptions};
use dahlia_core::{parse, pretty, typecheck};

/// Generated surface programs over a compact grammar: memories with
/// assorted banking/ports, loops with assorted unrolls, views, combine
/// blocks, conditionals, and both composition operators.
fn src_strategy() -> impl Strategy<Value = String> {
    let decl = (
        prop::sample::select(vec![1u64, 2, 3, 4]),
        prop::sample::select(vec![1u32, 2]),
        prop::sample::select(vec!["float", "bit<32>"]),
    )
        .prop_map(|(b, p, t)| {
            let pp = if p > 1 {
                format!("{{{p}}}")
            } else {
                String::new()
            };
            format!("let A: {t}{pp}[12 bank {b}];\nlet B: {t}[12 bank {b}];\n")
        });
    let stmt = prop::sample::select(vec![
        "let x = A[0];".to_string(),
        "A[0] := 1.0 --- A[1] := 2.0;".to_string(),
        "for (let i = 0..12) { B[i] := 0.5; }".to_string(),
        "for (let i = 0..12) unroll 2 { let v = A[i]; }".to_string(),
        "for (let i = 0..12) unroll 3 { let v = A[i]; } combine { acc += v; }".to_string(),
        "view s = shrink A[by 2];\nfor (let i = 0..12) unroll 2 { let v = s[i]; }".to_string(),
        "view w = shift A[by 3];\nlet q = w[0];".to_string(),
        "view sp = split A[by 2];\nlet z = sp[0][1];".to_string(),
        "if (1 < 2) { B[0] := 1.0; } else { B[1] := 2.0; }".to_string(),
        "let n = 0;\nwhile (n < 3) { n := n + 1; }".to_string(),
    ]);
    (decl, prop::collection::vec(stmt, 1..4))
        .prop_map(|(d, stmts)| format!("{d}let acc = 0.0;\n{}", stmts.join("\n---\n")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `pretty ∘ parse` is a fixpoint: printing a parsed program and
    /// re-parsing yields a program that prints identically.
    #[test]
    fn pretty_print_is_a_parser_fixpoint(src in src_strategy()) {
        let Ok(p1) = parse(&src) else { return Ok(()) };
        let printed = pretty::program(&p1);
        let p2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed program fails to parse: {e}\n{printed}"));
        prop_assert_eq!(pretty::program(&p2), printed);
    }

    /// The checker gives the same verdict (and same rule) on repeat runs.
    #[test]
    fn checker_is_deterministic(src in src_strategy()) {
        let Ok(p) = parse(&src) else { return Ok(()) };
        let a = typecheck(&p).map_err(|e| format!("{e}"));
        let b = typecheck(&p).map_err(|e| format!("{e}"));
        prop_assert_eq!(a.is_ok(), b.is_ok());
        if let (Err(x), Err(y)) = (a, b) {
            prop_assert_eq!(x, y);
        }
    }

    /// Pretty-printing preserves the checker's verdict.
    #[test]
    fn printing_preserves_typability(src in src_strategy()) {
        let Ok(p1) = parse(&src) else { return Ok(()) };
        let Ok(p2) = parse(&pretty::program(&p1)) else {
            return Err(TestCaseError::fail("printed program must parse"));
        };
        prop_assert_eq!(typecheck(&p1).is_ok(), typecheck(&p2).is_ok());
    }

    /// Desugared programs (unrolled, views inlined) compute the same final
    /// memory state under the unchecked interpreter.
    #[test]
    fn desugaring_preserves_semantics(src in src_strategy()) {
        let Ok(p) = parse(&src) else { return Ok(()) };
        if typecheck(&p).is_err() {
            return Ok(());
        }
        let opts = InterpOptions { check_capabilities: false, ..Default::default() };
        let o1 = interpret_with(&p, &opts, &HashMap::new());
        let o2 = interpret_with(&desugar(&p), &opts, &HashMap::new());
        match (o1, o2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.mems, b.mems),
            (a, b) => prop_assert!(false, "divergent outcomes: {:?} vs {:?}", a.is_ok(), b.is_ok()),
        }
    }

    /// Accepted ⇒ the dynamic capability monitor stays quiet (surface
    /// soundness over this grammar too).
    #[test]
    fn accepted_programs_run_checked(src in src_strategy()) {
        let Ok(p) = parse(&src) else { return Ok(()) };
        if typecheck(&p).is_err() {
            return Ok(());
        }
        let r = interpret_with(&p, &InterpOptions::default(), &HashMap::new());
        prop_assert!(r.is_ok(), "monitor tripped: {}\n{}", r.unwrap_err(), src);
    }
}
