//! # dahlia-dse
//!
//! Design-space exploration for the Dahlia evaluation (§5): parameter
//! spaces, Dahlia-acceptance filtering, Pareto frontiers, and CSV reports.
//!
//! The workflow mirrors the paper's: enumerate a [`ParamSpace`], generate a
//! Dahlia program per configuration, record whether the type checker
//! accepts it, estimate every point with the HLS substrate, and compare the
//! accepted subset against the full frontier.
//!
//! ```
//! use dahlia_dse::{accepts, ParamSpace};
//!
//! let space = ParamSpace::new().param("bank", [1, 2, 4]).param("unroll", [1, 2, 4]);
//! let mut accepted = 0;
//! for cfg in &space {
//!     let src = format!(
//!         "let A: float[8 bank {b}];
//!          for (let i = 0..8) unroll {u} {{ A[i] := 1.0; }}",
//!         b = cfg["bank"], u = cfg["unroll"],
//!     );
//!     if accepts(&src) { accepted += 1; }
//! }
//! // Sequential loops (unroll 1) always pass; parallel ones only when the
//! // unroll factor matches the banking factor.
//! assert_eq!(accepted, 5);
//! ```

pub mod pareto;
pub mod point;
pub mod provider;
pub mod report;
pub mod rules;
pub mod space;
pub mod sweep;

pub use pareto::{dominates, pareto_indices, pareto_mask, FrontEntry, ParetoFront};
pub use point::{mark_pareto, DesignPoint};
pub use provider::{
    explore, explore_configs, DirectProvider, EstimateProvider, Exploration, PointOutcome,
    ProviderStats,
};
pub use report::{to_csv, Summary};
pub use space::{Config, ConfigIter, ParamSpace};
pub use sweep::{point_digest, render, SweepSpec};

/// Does the Dahlia type checker accept this source text?
///
/// Parse errors count as rejections (the DSE generators may produce
/// configurations that are not even syntactically pluggable).
pub fn accepts(src: &str) -> bool {
    match dahlia_core::parse(src) {
        Ok(p) => dahlia_core::typecheck(&p).is_ok(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_matches_checker() {
        assert!(accepts("let A: float[8 bank 2]; let x = A[0];"));
        assert!(!accepts("let A: float[8]; let x = A[0]; A[1] := 1.0;"));
        assert!(!accepts("syntax error ~~~"));
    }
}
