//! Multi-objective Pareto analysis.
//!
//! The paper identifies Pareto-optimal configurations "according to their
//! estimated cycle latency and number of lookup tables (LUTs), flip flops
//! (FFs), block RAMs (BRAMs), and arithmetic units (DSPs)" — five
//! minimization objectives. [`pareto_indices`] computes the non-dominated
//! subset with an incremental frontier (fast enough for the 32,000-point
//! gemm-blocked space); [`ParetoFront`] is the streaming form the cluster
//! `sweep` op folds shard results through: dominance-pruned insertion,
//! mergeable fronts, and a canonical serialization order so two sweeps
//! over the same point set emit byte-identical fronts regardless of
//! arrival order.

/// `a` dominates `b` iff `a` is no worse in every objective and strictly
/// better in at least one (all objectives minimized).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points among `objectives` (minimization).
///
/// Duplicate objective vectors are all retained (none dominates another).
pub fn pareto_indices(objectives: &[Vec<f64>]) -> Vec<usize> {
    let mut frontier: Vec<usize> = Vec::new();
    'points: for (i, obj) in objectives.iter().enumerate() {
        let mut keep = Vec::with_capacity(frontier.len() + 1);
        for &f in &frontier {
            if dominates(&objectives[f], obj) {
                // Already dominated; keep the frontier as it was.
                continue 'points;
            }
            if !dominates(obj, &objectives[f]) {
                keep.push(f);
            }
        }
        keep.push(i);
        frontier = keep;
    }
    frontier.sort_unstable();
    frontier
}

/// Convenience: Pareto-optimal flags, aligned with the input.
pub fn pareto_mask(objectives: &[Vec<f64>]) -> Vec<bool> {
    let mut mask = vec![false; objectives.len()];
    for i in pareto_indices(objectives) {
        mask[i] = true;
    }
    mask
}

/// One entry of a streaming [`ParetoFront`]: an opaque point key (the
/// sweep uses the rendered source digest) plus its objective vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEntry {
    /// Identifies the design point; never interpreted, only carried.
    pub key: String,
    /// Minimization objectives, all the same arity within one front.
    pub objectives: Vec<f64>,
}

/// An incremental Pareto front: points stream in via [`insert`], fronts
/// built on disjoint shards combine via [`merge`], and [`entries`]
/// returns a canonical order so serialized fronts are byte-identical for
/// equal point sets.
///
/// Two entries with equal objective vectors but distinct keys are both
/// retained (neither dominates the other), matching [`pareto_indices`].
/// Re-inserting an entry whose key is already present is a no-op, which
/// makes journal-replay resumption idempotent.
///
/// [`insert`]: ParetoFront::insert
/// [`merge`]: ParetoFront::merge
/// [`entries`]: ParetoFront::entries
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    entries: Vec<FrontEntry>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        ParetoFront::default()
    }

    /// Number of non-dominated entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry has survived insertion yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when some current entry dominates `objectives` — the early
    /// pruning test: a candidate that is already dominated cannot change
    /// the front, so its evaluation can be skipped entirely.
    pub fn dominates_point(&self, objectives: &[f64]) -> bool {
        self.entries
            .iter()
            .any(|e| dominates(&e.objectives, objectives))
    }

    /// Offer one point. Returns `true` when the point joined the front
    /// (evicting any entries it dominates), `false` when it was dominated
    /// by an existing entry or its key is already present.
    pub fn insert(&mut self, key: impl Into<String>, objectives: Vec<f64>) -> bool {
        let key = key.into();
        if self.entries.iter().any(|e| e.key == key) {
            return false;
        }
        if self.dominates_point(&objectives) {
            return false;
        }
        self.entries
            .retain(|e| !dominates(&objectives, &e.objectives));
        self.entries.push(FrontEntry { key, objectives });
        true
    }

    /// Fold another front in. Since a front is just a set of surviving
    /// points, merging is insertion of every entry; commutativity and
    /// idempotence follow from the set semantics (pinned by property
    /// tests).
    pub fn merge(&mut self, other: &ParetoFront) {
        for e in &other.entries {
            self.insert(e.key.clone(), e.objectives.clone());
        }
    }

    /// The surviving entries in canonical order: objectives compared
    /// lexicographically, ties broken by key. Serializing this order
    /// makes equal fronts byte-identical regardless of insertion order.
    pub fn entries(&self) -> Vec<FrontEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| {
            a.objectives
                .iter()
                .zip(&b.objectives)
                .find_map(|(x, y)| x.partial_cmp(y).filter(|o| o.is_ne()))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.key.cmp(&b.key))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 1.0]), "incomparable");
        assert!(
            !dominates(&[1.0, 1.0], &[1.0, 1.0]),
            "equal points do not dominate"
        );
    }

    #[test]
    fn simple_frontier() {
        let pts = vec![
            vec![1.0, 4.0], // frontier
            vec![2.0, 3.0], // frontier
            vec![3.0, 3.5], // dominated by (2,3)
            vec![4.0, 1.0], // frontier
            vec![4.0, 4.0], // dominated
        ];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_survive() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn frontier_axioms_hold_on_random_like_data() {
        // Deterministic pseudo-random points.
        let mut x = 0x1234_5678_u64;
        let mut pts = Vec::new();
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % 1000;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) % 1000;
            pts.push(vec![a as f64, b as f64]);
        }
        let mask = pareto_mask(&pts);
        // 1. No frontier point is dominated by any other point.
        for (i, m) in mask.iter().enumerate() {
            if *m {
                assert!(!pts.iter().any(|p| dominates(p, &pts[i])));
            }
        }
        // 2. Every non-frontier point is dominated by some frontier point.
        for (i, m) in mask.iter().enumerate() {
            if !*m {
                assert!(
                    pts.iter()
                        .enumerate()
                        .any(|(j, p)| mask[j] && dominates(p, &pts[i])),
                    "point {i} neither on frontier nor dominated"
                );
            }
        }
    }

    #[test]
    fn single_objective_is_min() {
        let pts = vec![vec![5.0], vec![2.0], vec![9.0], vec![2.0]];
        assert_eq!(pareto_indices(&pts), vec![1, 3]);
    }

    #[test]
    fn front_insertion_prunes_dominated_entries() {
        let mut f = ParetoFront::new();
        assert!(f.insert("a", vec![3.0, 3.0]));
        assert!(f.insert("b", vec![1.0, 4.0]));
        // Dominates "a": evicts it on the way in.
        assert!(f.insert("c", vec![2.0, 2.0]));
        assert_eq!(f.len(), 2);
        // Dominated on arrival: rejected without changing the front.
        assert!(!f.insert("d", vec![2.5, 2.5]));
        assert!(f.dominates_point(&[4.0, 4.0]));
        assert!(!f.dominates_point(&[0.5, 0.5]));
        let keys: Vec<String> = f.entries().into_iter().map(|e| e.key).collect();
        assert_eq!(keys, vec!["b", "c"]);
    }

    #[test]
    fn front_retains_equal_points_and_dedups_keys() {
        let mut f = ParetoFront::new();
        assert!(f.insert("x", vec![1.0, 1.0]));
        // Equal objectives, distinct key: neither dominates, both stay.
        assert!(f.insert("y", vec![1.0, 1.0]));
        // Same key again: idempotent no-op (journal replay relies on it).
        assert!(!f.insert("x", vec![1.0, 1.0]));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn front_matches_batch_indices_and_merge_agrees() {
        let pts: Vec<Vec<f64>> = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 3.5],
            vec![4.0, 1.0],
            vec![4.0, 4.0],
        ];
        let mut whole = ParetoFront::new();
        for (i, p) in pts.iter().enumerate() {
            whole.insert(format!("p{i}"), p.clone());
        }
        let survivors: Vec<String> = whole.entries().into_iter().map(|e| e.key).collect();
        let expect: Vec<String> = pareto_indices(&pts)
            .into_iter()
            .map(|i| format!("p{i}"))
            .collect();
        assert_eq!(survivors, expect);

        // Split the stream in half, front each part, merge: same result.
        let (mut left, mut right) = (ParetoFront::new(), ParetoFront::new());
        for (i, p) in pts.iter().enumerate() {
            let f = if i % 2 == 0 { &mut left } else { &mut right };
            f.insert(format!("p{i}"), p.clone());
        }
        left.merge(&right);
        let merged: Vec<String> = left.entries().into_iter().map(|e| e.key).collect();
        assert_eq!(merged, expect);
    }
}
