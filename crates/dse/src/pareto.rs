//! Multi-objective Pareto analysis.
//!
//! The paper identifies Pareto-optimal configurations "according to their
//! estimated cycle latency and number of lookup tables (LUTs), flip flops
//! (FFs), block RAMs (BRAMs), and arithmetic units (DSPs)" — five
//! minimization objectives. [`pareto_indices`] computes the non-dominated
//! subset with an incremental frontier (fast enough for the 32,000-point
//! gemm-blocked space).

/// `a` dominates `b` iff `a` is no worse in every objective and strictly
/// better in at least one (all objectives minimized).
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points among `objectives` (minimization).
///
/// Duplicate objective vectors are all retained (none dominates another).
pub fn pareto_indices(objectives: &[Vec<f64>]) -> Vec<usize> {
    let mut frontier: Vec<usize> = Vec::new();
    'points: for (i, obj) in objectives.iter().enumerate() {
        let mut keep = Vec::with_capacity(frontier.len() + 1);
        for &f in &frontier {
            if dominates(&objectives[f], obj) {
                // Already dominated; keep the frontier as it was.
                continue 'points;
            }
            if !dominates(obj, &objectives[f]) {
                keep.push(f);
            }
        }
        keep.push(i);
        frontier = keep;
    }
    frontier.sort_unstable();
    frontier
}

/// Convenience: Pareto-optimal flags, aligned with the input.
pub fn pareto_mask(objectives: &[Vec<f64>]) -> Vec<bool> {
    let mut mask = vec![false; objectives.len()];
    for i in pareto_indices(objectives) {
        mask[i] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 1.0]), "incomparable");
        assert!(
            !dominates(&[1.0, 1.0], &[1.0, 1.0]),
            "equal points do not dominate"
        );
    }

    #[test]
    fn simple_frontier() {
        let pts = vec![
            vec![1.0, 4.0], // frontier
            vec![2.0, 3.0], // frontier
            vec![3.0, 3.5], // dominated by (2,3)
            vec![4.0, 1.0], // frontier
            vec![4.0, 4.0], // dominated
        ];
        assert_eq!(pareto_indices(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_survive() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn frontier_axioms_hold_on_random_like_data() {
        // Deterministic pseudo-random points.
        let mut x = 0x1234_5678_u64;
        let mut pts = Vec::new();
        for _ in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) % 1000;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) % 1000;
            pts.push(vec![a as f64, b as f64]);
        }
        let mask = pareto_mask(&pts);
        // 1. No frontier point is dominated by any other point.
        for (i, m) in mask.iter().enumerate() {
            if *m {
                assert!(!pts.iter().any(|p| dominates(p, &pts[i])));
            }
        }
        // 2. Every non-frontier point is dominated by some frontier point.
        for (i, m) in mask.iter().enumerate() {
            if !*m {
                assert!(
                    pts.iter()
                        .enumerate()
                        .any(|(j, p)| mask[j] && dominates(p, &pts[i])),
                    "point {i} neither on frontier nor dominated"
                );
            }
        }
    }

    #[test]
    fn single_objective_is_min() {
        let pts = vec![vec![5.0], vec![2.0], vec![9.0], vec![2.0]];
        assert_eq!(pareto_indices(&pts), vec![1, 3]);
    }
}
