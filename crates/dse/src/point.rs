//! Evaluated design points.

use crate::pareto::pareto_mask;
use crate::space::Config;

/// One evaluated configuration of a design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The parameter assignment.
    pub config: Config,
    /// Estimated cycle latency.
    pub cycles: u64,
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block RAMs.
    pub brams: u64,
    /// LUTs used as memory.
    pub lut_mems: u64,
    /// Did the Dahlia type checker accept this configuration?
    pub accepted: bool,
    /// Did the (simulated) toolchain produce correct hardware?
    pub correct: bool,
    /// Is the point Pareto-optimal (filled in by [`mark_pareto`])?
    pub pareto: bool,
}

impl DesignPoint {
    /// The paper's five minimization objectives:
    /// latency, LUTs, FFs, BRAMs, DSPs.
    pub fn objectives(&self) -> Vec<f64> {
        vec![
            self.cycles as f64,
            self.luts as f64,
            self.ffs as f64,
            self.brams as f64,
            self.dsps as f64,
        ]
    }

    /// A checker-rejected point: never estimated, never on the frontier.
    pub fn rejected(config: Config) -> DesignPoint {
        DesignPoint {
            config,
            cycles: 0,
            luts: 0,
            ffs: 0,
            dsps: 0,
            brams: 0,
            lut_mems: 0,
            accepted: false,
            correct: false,
            pareto: false,
        }
    }

    /// Build a point from an `hls_sim` estimate.
    pub fn from_estimate(config: Config, e: &hls_sim::Estimate, accepted: bool) -> DesignPoint {
        DesignPoint {
            config,
            cycles: e.cycles,
            luts: e.luts,
            ffs: e.ffs,
            dsps: e.dsps,
            brams: e.brams,
            lut_mems: e.lut_mems,
            accepted,
            correct: e.correct,
            pareto: false,
        }
    }
}

/// Mark the Pareto-optimal points in place (five-objective minimization,
/// following §5.2). Incorrect-hardware points are excluded from the
/// frontier (the paper omits their runtimes).
pub fn mark_pareto(points: &mut [DesignPoint]) {
    let objectives: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            if p.correct {
                p.objectives()
            } else {
                vec![f64::INFINITY; 5]
            }
        })
        .collect();
    let mask = pareto_mask(&objectives);
    for (p, m) in points.iter_mut().zip(mask) {
        p.pareto = m && p.correct;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(cycles: u64, luts: u64, correct: bool) -> DesignPoint {
        DesignPoint {
            config: Config::new(),
            cycles,
            luts,
            ffs: luts,
            dsps: 0,
            brams: 0,
            lut_mems: 0,
            accepted: true,
            correct,
            pareto: false,
        }
    }

    #[test]
    fn pareto_marking() {
        let mut pts = vec![pt(10, 100, true), pt(20, 50, true), pt(20, 200, true)];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(pts[1].pareto);
        assert!(!pts[2].pareto);
    }

    #[test]
    fn incorrect_points_never_pareto() {
        let mut pts = vec![pt(1, 1, false), pt(10, 10, true)];
        mark_pareto(&mut pts);
        assert!(!pts[0].pareto, "miscompiled designs are excluded");
        assert!(pts[1].pareto);
    }
}
