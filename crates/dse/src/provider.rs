//! Estimation providers: how a design-space exploration turns one
//! configuration's Dahlia source into an acceptance verdict and a
//! hardware estimate.
//!
//! The paper's sweeps (Fig. 7/8) re-run nearly identical programs
//! thousands of times, so *where* the pipeline runs matters: inline
//! ([`DirectProvider`], the historical behaviour) or through a caching
//! compilation service (`dahlia_server::CachedProvider`), which
//! content-addresses every stage and dedups concurrent work. The
//! [`EstimateProvider`] trait abstracts over both; [`explore`] drives a
//! full checker-pruned sweep against any provider and reports cache
//! hit/miss/latency statistics alongside the classic acceptance summary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dahlia_core::diag::Diagnostic;

use crate::point::{mark_pareto, DesignPoint};
use crate::space::{Config, ParamSpace};

/// The outcome of evaluating one configuration's source program.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Did the Dahlia type checker accept the program?
    pub accepted: bool,
    /// HLS-substrate estimate of the lowered program (accepted points
    /// only — the checker is the pruner, as in the Fig. 8 workflow).
    pub estimate: Option<hls_sim::Estimate>,
    /// Why the program was rejected, when it was.
    pub diagnostic: Option<Diagnostic>,
}

/// Cumulative statistics a provider reports about its work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProviderStats {
    /// Evaluations requested.
    pub requests: u64,
    /// Pipeline stages answered from a cache.
    pub cache_hits: u64,
    /// Pipeline stages actually computed.
    pub cache_misses: u64,
    /// Total wall-clock time spent evaluating, in microseconds.
    pub latency_us: u64,
}

impl ProviderStats {
    /// Fraction of stage lookups served from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ProviderStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests, {} cache hits / {} misses ({:.1}% hit), {:.3} ms total",
            self.requests,
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_ratio(),
            self.latency_us as f64 / 1e3,
        )
    }
}

/// Anything that can evaluate a named Dahlia source for the DSE driver.
///
/// Implementations must be callable from multiple threads (`&self`): the
/// batch executors fan evaluations out across a pool.
pub trait EstimateProvider: Sync {
    /// Evaluate one configuration's source text.
    fn evaluate(&self, name: &str, source: &str) -> PointOutcome;

    /// Statistics accumulated so far.
    fn stats(&self) -> ProviderStats;
}

/// The inline provider: parse → typecheck → lower → estimate on the
/// calling thread, no caching. Every evaluation is a cache miss.
#[derive(Debug, Default)]
pub struct DirectProvider {
    requests: AtomicU64,
    misses: AtomicU64,
    latency_us: AtomicU64,
}

impl DirectProvider {
    /// A fresh provider.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EstimateProvider for DirectProvider {
    fn evaluate(&self, name: &str, source: &str) -> PointOutcome {
        let t0 = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Count only the stages that actually ran: 1 for a parse
        // failure, 2 when the checker rejects, 4 (parse + typecheck +
        // lower + estimate) for accepted programs.
        let (stages_run, out) = match dahlia_core::parse(source) {
            Err(e) => (
                1,
                PointOutcome {
                    accepted: false,
                    estimate: None,
                    diagnostic: Some(e.diagnostic()),
                },
            ),
            Ok(prog) => match dahlia_core::typecheck(&prog) {
                Err(e) => (
                    2,
                    PointOutcome {
                        accepted: false,
                        estimate: None,
                        diagnostic: Some(e.diagnostic()),
                    },
                ),
                Ok(_) => {
                    let est = hls_sim::estimate(&dahlia_backend::lower(&prog, name));
                    (
                        4,
                        PointOutcome {
                            accepted: true,
                            estimate: Some(est),
                            diagnostic: None,
                        },
                    )
                }
            },
        };
        self.misses.fetch_add(stages_run, Ordering::Relaxed);
        self.latency_us
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        out
    }

    fn stats(&self) -> ProviderStats {
        ProviderStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: self.misses.load(Ordering::Relaxed),
            latency_us: self.latency_us.load(Ordering::Relaxed),
        }
    }
}

/// The result of [`explore`]: evaluated points plus provider statistics.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every configuration in iteration order, Pareto-marked.
    pub points: Vec<DesignPoint>,
    /// Provider work accounting for this sweep (stats delta).
    pub stats: ProviderStats,
}

impl Exploration {
    /// The classic acceptance/Pareto summary.
    pub fn summary(&self) -> crate::report::Summary {
        crate::report::Summary::of(&self.points)
    }

    /// One-paragraph report: acceptance summary + provider stats.
    pub fn report(&self) -> String {
        format!("{}\nprovider: {}", self.summary(), self.stats)
    }
}

/// Drive a checker-pruned sweep over `space` through `provider`.
///
/// `source_of` renders one configuration into Dahlia source; `name` is
/// the kernel name used for lowering. Rejected configurations produce
/// zero-resource points with `accepted = false` (the checker prunes them
/// before estimation, as in the paper's Dahlia-directed workflow).
pub fn explore(
    space: &ParamSpace,
    name: &str,
    provider: &dyn EstimateProvider,
    source_of: impl Fn(&Config) -> String,
) -> Exploration {
    explore_configs(space.iter().collect(), name, provider, source_of)
}

/// [`explore`] over an explicit configuration list — the entry point for
/// subsampled (strided) sweeps, which the figure drivers reuse so that
/// repeated strides against one caching provider share every overlapping
/// evaluation. The returned points carry the *original* configurations.
pub fn explore_configs(
    configs: Vec<Config>,
    name: &str,
    provider: &dyn EstimateProvider,
    source_of: impl Fn(&Config) -> String,
) -> Exploration {
    let before = provider.stats();
    let mut points = Vec::new();
    for cfg in configs {
        let src = source_of(&cfg);
        let out = provider.evaluate(name, &src);
        points.push(match out.estimate {
            Some(est) => DesignPoint::from_estimate(cfg, &est, out.accepted),
            None => DesignPoint::rejected(cfg),
        });
    }
    mark_pareto(&mut points);
    let after = provider.stats();
    Exploration {
        points,
        stats: ProviderStats {
            requests: after.requests - before.requests,
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            latency_us: after.latency_us - before.latency_us,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_space() -> ParamSpace {
        ParamSpace::new()
            .param("bank", [1, 2, 4])
            .param("unroll", [1, 2, 4])
    }

    fn source_of(cfg: &Config) -> String {
        format!(
            "let A: float[8 bank {b}];\nfor (let i = 0..8) unroll {u} {{ A[i] := 1.0; }}",
            b = cfg["bank"],
            u = cfg["unroll"],
        )
    }

    #[test]
    fn direct_provider_matches_accepts() {
        let p = DirectProvider::new();
        for cfg in &tiny_space() {
            let src = source_of(&cfg);
            assert_eq!(
                p.evaluate("k", &src).accepted,
                crate::accepts(&src),
                "{src}"
            );
        }
    }

    #[test]
    fn explore_prunes_and_estimates() {
        let p = DirectProvider::new();
        let ex = explore(&tiny_space(), "k", &p, source_of);
        assert_eq!(ex.points.len(), 9);
        let s = ex.summary();
        // unroll 1 always accepted; otherwise unroll must match banking.
        assert_eq!(s.accepted, 5);
        for pt in &ex.points {
            assert_eq!(pt.accepted, pt.cycles > 0, "{:?}", pt.config);
        }
        assert_eq!(ex.stats.requests, 9);
        assert!(ex.stats.cache_misses > 0);
        assert!(ex.report().contains("provider: 9 requests"));
    }

    #[test]
    fn direct_provider_counts_only_stages_that_ran() {
        let p = DirectProvider::new();
        let _ = p.evaluate("k", "let = oops");
        assert_eq!(p.stats().cache_misses, 1, "parse failure runs one stage");
        let _ = p.evaluate("k", "let A: float[8]; let x = A[0]; A[1] := 1.0;");
        assert_eq!(p.stats().cache_misses, 3, "type failure adds parse + check");
        let _ = p.evaluate("k", "let A: float[8 bank 4];");
        assert_eq!(p.stats().cache_misses, 7, "accepted program adds all four");
    }

    #[test]
    fn rejected_points_have_diagnostics() {
        let p = DirectProvider::new();
        let out = p.evaluate(
            "k",
            "let A: float[8];\nfor (let i = 0..8) unroll 4 { A[i] := 1.0; }",
        );
        assert!(!out.accepted);
        let d = out.diagnostic.expect("diagnostic");
        assert_eq!(d.code, "type/insufficient-banks");
    }
}
