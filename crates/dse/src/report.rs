//! Plain-text reporting: CSV series and acceptance summaries, matching what
//! the paper's figures plot.

use std::fmt::Write as _;

use crate::point::DesignPoint;

/// Render design points as CSV with the given parameter columns.
pub fn to_csv(points: &[DesignPoint], params: &[&str]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", params.join(","));
    let _ = writeln!(
        out,
        ",cycles,luts,ffs,dsps,brams,lut_mems,accepted,pareto,correct"
    );
    for p in points {
        for name in params {
            let _ = write!(out, "{},", p.config.get(*name).copied().unwrap_or(0));
        }
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            p.cycles, p.luts, p.ffs, p.dsps, p.brams, p.lut_mems, p.accepted, p.pareto, p.correct
        );
    }
    out
}

/// The acceptance-and-Pareto summary the paper reports per benchmark
/// (e.g. "Dahlia accepts 354 configurations, or about 1.1% of the
/// unrestricted design space").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total points in the space.
    pub total: usize,
    /// Points Dahlia accepts.
    pub accepted: usize,
    /// Pareto-optimal points (within the evaluated set).
    pub pareto: usize,
    /// Accepted points that are Pareto-optimal.
    pub accepted_pareto: usize,
}

impl Summary {
    /// Compute the summary over evaluated points.
    pub fn of(points: &[DesignPoint]) -> Summary {
        Summary {
            total: points.len(),
            accepted: points.iter().filter(|p| p.accepted).count(),
            pareto: points.iter().filter(|p| p.pareto).count(),
            accepted_pareto: points.iter().filter(|p| p.accepted && p.pareto).count(),
        }
    }

    /// Fraction of the space Dahlia accepts.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.accepted as f64 / self.total as f64
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} accepted ({:.1}%), {} Pareto-optimal, {} accepted∩Pareto",
            self.accepted,
            self.total,
            100.0 * self.acceptance_ratio(),
            self.pareto,
            self.accepted_pareto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::DesignPoint;
    use crate::space::Config;

    fn pt(cycles: u64, luts: u64, accepted: bool) -> DesignPoint {
        DesignPoint {
            config: Config::new(),
            cycles,
            luts,
            ffs: 0,
            dsps: 0,
            brams: 0,
            lut_mems: 0,
            accepted,
            correct: true,
            pareto: false,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut p = pt(100, 5, true);
        p.config.insert("u".into(), 4);
        let csv = to_csv(&[p], &["u"]);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "u,cycles,luts,ffs,dsps,brams,lut_mems,accepted,pareto,correct"
        );
        assert!(lines.next().unwrap().starts_with("4,100,5,"));
    }

    #[test]
    fn summary_ratios() {
        let pts = vec![
            pt(1, 1, true),
            pt(2, 2, false),
            pt(3, 3, false),
            pt(4, 4, true),
        ];
        let s = Summary::of(&pts);
        assert_eq!(s.total, 4);
        assert_eq!(s.accepted, 2);
        assert!((s.acceptance_ratio() - 0.5).abs() < 1e-9);
        assert!(s.to_string().contains("50.0%"));
    }
}
