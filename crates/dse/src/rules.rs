//! The "unwritten rules" of HLS (§2.2), written down.
//!
//! The paper's §2 identifies two implicit rules a programmer must obey for
//! traditional HLS to behave:
//!
//! 1. *the unrolling factor must divide the banking factor*, and
//! 2. *the banking factor must divide the array size*.
//!
//! Dahlia's contribution is enforcing these **compositionally** through
//! types rather than as global syntactic checks. This module states the
//! rules explicitly as a symbolic acceptance predictor for simple
//! loop-over-array templates, which serves two purposes:
//!
//! * **cross-validation** — tests check that the type checker's verdict on
//!   generated programs coincides with the written-down rules on the
//!   template space (and the checker generalizes far beyond it);
//! * **fast pre-filtering** — a DSE can discard most of a parameter space
//!   without generating source text (the paper's §6 "polymorphism" future
//!   work imagines exactly this kind of parameter-level reasoning).

/// One parallel access pattern of a loop nest: a memory dimension swept by
/// a (possibly unrolled) iterator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweptAccess {
    /// Elements in the dimension.
    pub size: u64,
    /// Cyclic banking factor of the dimension.
    pub banks: u64,
    /// Trip count of the sweeping loop.
    pub trips: u64,
    /// Unroll factor of the sweeping loop.
    pub unroll: u64,
    /// Is a `shrink` view available to bridge unroll < banks?
    /// (The idiomatic Dahlia port always provides one.)
    pub shrinkable: bool,
}

/// Why a configuration violates the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleViolation {
    /// Banking does not divide the array size (Fig. 4c).
    BankingVsSize,
    /// Unroll does not divide the trip count (epilogue hardware).
    UnrollVsTrips,
    /// Unroll exceeds or does not divide the banking factor (Fig. 4b).
    UnrollVsBanking,
}

impl SweptAccess {
    /// Apply the unwritten rules to this access.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn check(&self) -> Result<(), RuleViolation> {
        if self.banks == 0 || !self.size.is_multiple_of(self.banks) {
            return Err(RuleViolation::BankingVsSize);
        }
        if self.unroll == 0 || !self.trips.is_multiple_of(self.unroll) {
            return Err(RuleViolation::UnrollVsTrips);
        }
        if self.unroll == 1 {
            return Ok(());
        }
        let matched = self.unroll == self.banks;
        let bridged =
            self.shrinkable && self.unroll < self.banks && self.banks.is_multiple_of(self.unroll);
        if matched || bridged {
            Ok(())
        } else {
            Err(RuleViolation::UnrollVsBanking)
        }
    }

    /// Convenience: does the configuration obey every rule?
    pub fn predict_accepted(&self) -> bool {
        self.check().is_ok()
    }
}

/// Predict acceptance for a whole template: every swept access must obey
/// the rules.
pub fn predict_accepted(accesses: &[SweptAccess]) -> bool {
    accesses.iter().all(SweptAccess::predict_accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(size: u64, banks: u64, trips: u64, unroll: u64) -> SweptAccess {
        SweptAccess {
            size,
            banks,
            trips,
            unroll,
            shrinkable: true,
        }
    }

    #[test]
    fn the_three_rules() {
        assert_eq!(acc(10, 3, 10, 1).check(), Err(RuleViolation::BankingVsSize));
        assert_eq!(acc(10, 2, 10, 3).check(), Err(RuleViolation::UnrollVsTrips));
        assert_eq!(
            acc(16, 2, 16, 4).check(),
            Err(RuleViolation::UnrollVsBanking)
        );
        assert_eq!(acc(16, 4, 16, 4).check(), Ok(()));
        assert_eq!(acc(16, 4, 16, 2).check(), Ok(()), "shrink bridges 2 | 4");
    }

    #[test]
    fn without_shrink_only_exact_matches() {
        let a = SweptAccess {
            shrinkable: false,
            ..acc(16, 4, 16, 2)
        };
        assert_eq!(a.check(), Err(RuleViolation::UnrollVsBanking));
    }

    #[test]
    fn sequential_loops_always_pass_banking() {
        for b in [1, 2, 4, 8] {
            assert!(acc(16, b, 16, 1).predict_accepted());
        }
    }

    #[test]
    fn whole_template_conjunction() {
        assert!(predict_accepted(&[acc(16, 2, 16, 2), acc(16, 4, 16, 4)]));
        assert!(!predict_accepted(&[acc(16, 2, 16, 2), acc(16, 3, 16, 1)]));
    }
}
