//! Parameter spaces for design-space exploration.
//!
//! A [`ParamSpace`] is a named cartesian product of integer parameter
//! values — banking factors and unroll factors in the paper's experiments.
//! Spaces iterate deterministically in row-major order.

use std::collections::BTreeMap;

/// A single configuration: parameter name → chosen value.
pub type Config = BTreeMap<String, u64>;

/// A cartesian product of named parameter ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParamSpace {
    params: Vec<(String, Vec<u64>)>,
}

impl ParamSpace {
    /// An empty space (one empty configuration).
    pub fn new() -> Self {
        ParamSpace::default()
    }

    /// Add a parameter with its candidate values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or the name repeats.
    pub fn param(mut self, name: impl Into<String>, values: impl IntoIterator<Item = u64>) -> Self {
        let name = name.into();
        assert!(
            self.params.iter().all(|(n, _)| *n != name),
            "duplicate parameter `{name}`"
        );
        let values: Vec<u64> = values.into_iter().collect();
        assert!(
            !values.is_empty(),
            "parameter `{name}` needs at least one value"
        );
        self.params.push((name, values));
        self
    }

    /// Number of configurations in the space.
    pub fn len(&self) -> u64 {
        self.params.iter().map(|(_, v)| v.len() as u64).product()
    }

    /// Is the space trivial?
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterate every configuration.
    pub fn iter(&self) -> ConfigIter<'_> {
        ConfigIter {
            space: self,
            next: Some(vec![0; self.params.len()]),
        }
    }

    /// Parameter names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl<'a> IntoIterator for &'a ParamSpace {
    type Item = Config;
    type IntoIter = ConfigIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the configurations of a [`ParamSpace`].
#[derive(Debug)]
pub struct ConfigIter<'a> {
    space: &'a ParamSpace,
    next: Option<Vec<usize>>,
}

impl Iterator for ConfigIter<'_> {
    type Item = Config;

    fn next(&mut self) -> Option<Config> {
        let idx = self.next.as_ref()?.clone();
        let cfg: Config = self
            .space
            .params
            .iter()
            .zip(&idx)
            .map(|((n, vs), &i)| (n.clone(), vs[i]))
            .collect();
        // Advance (last parameter fastest).
        let mut carry = true;
        let mut nxt = idx;
        for (slot, (_, vs)) in nxt.iter_mut().zip(&self.space.params).rev() {
            if carry {
                *slot += 1;
                if *slot == vs.len() {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        self.next = if carry { None } else { Some(nxt) };
        Some(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_product_size() {
        let s = ParamSpace::new().param("a", [1, 2, 3]).param("b", [10, 20]);
        assert_eq!(s.len(), 6);
        let cfgs: Vec<Config> = s.iter().collect();
        assert_eq!(cfgs.len(), 6);
        assert_eq!(cfgs[0]["a"], 1);
        assert_eq!(cfgs[0]["b"], 10);
        assert_eq!(cfgs[1]["b"], 20, "last parameter varies fastest");
        assert_eq!(cfgs[5]["a"], 3);
    }

    #[test]
    fn empty_space_has_one_config() {
        let s = ParamSpace::new();
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn paper_space_sizes() {
        // gemm-blocked (§5.2): four free banking parameters over {1..4} and
        // three unroll parameters over {1,2,4,6,8} = 32,000 points.
        let gemm = ParamSpace::new()
            .param("bank_m1_d1", 1..=4)
            .param("bank_m1_d2", 1..=4)
            .param("bank_m2_d1", 1..=4)
            .param("bank_m2_d2", 1..=4)
            .param("unroll1", [1, 2, 4, 6, 8])
            .param("unroll2", [1, 2, 4, 6, 8])
            .param("unroll3", [1, 2, 4, 6, 8]);
        assert_eq!(gemm.len(), 32_000);

        // md-knn (§5.3): four memories × banking {1..4}, two loops ×
        // unroll {1..8} = 16,384 points.
        let mdknn = ParamSpace::new()
            .param("b0", 1..=4)
            .param("b1", 1..=4)
            .param("b2", 1..=4)
            .param("b3", 1..=4)
            .param("u0", 1..=8)
            .param("u1", 1..=8);
        assert_eq!(mdknn.len(), 16_384);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter")]
    fn duplicate_names_panic() {
        let _ = ParamSpace::new().param("a", [1]).param("a", [2]);
    }
}
