//! Cluster sweep planning: the pure (JSON-free) half of the `sweep`
//! protocol op.
//!
//! A [`SweepSpec`] carries a *source template* plus the parameter space
//! to instantiate it over. [`render`] expands one configuration into
//! concrete Dahlia source; the gateway scatters the rendered points
//! across shards and folds the estimates through a
//! [`ParetoFront`](crate::ParetoFront). Everything here is
//! deterministic — same spec, same point order, same digests — which is
//! what makes the crash-safe sweep journal replayable: a resumed sweep
//! re-plans the identical point list and skips the digests already
//! journaled.
//!
//! # Template language
//!
//! Three `${...}` directive forms, everything else passed through
//! verbatim:
//!
//! * `${p}` — the decimal value of parameter `p` in the configuration
//!   (integer literals are also accepted where a parameter may appear).
//! * `${shrink:mem:b1,u1:b2,u2:...}` — emits a
//!   `  view mem_sh = shrink mem[by b/u]...;\n` line when every
//!   banking/unroll pair needs (and permits) a shrink view, or nothing
//!   otherwise — the same decision procedure as the kernel generators'
//!   `shrink_if_needed` helper.
//! * `${access:mem:b1,u1:b2,u2:...}` — emits `mem_sh` or `mem` to match
//!   whichever the paired `${shrink:...}` directive produced.

use crate::space::{Config, ParamSpace};
use hls_sim::Fnv;

/// A fully planned sweep: the template, the parameter space, and the
/// execution knobs carried by the wire op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// Kernel name forwarded to compile requests (cache-key relevant).
    pub name: String,
    /// Source template; see the module docs for the directive forms.
    pub template: String,
    /// Parameter names with their value lists, in insertion order. The
    /// last parameter varies fastest during enumeration.
    pub params: Vec<(String, Vec<u64>)>,
    /// Pipeline stage each point runs to (the sweep uses `est`).
    pub stage: String,
    /// Keep every `stride`-th point of the full space (1 = all).
    pub stride: u64,
}

impl SweepSpec {
    /// The parameter space this spec enumerates.
    ///
    /// Panics on duplicate or empty parameters, mirroring
    /// [`ParamSpace::param`]; wire-facing callers validate first via
    /// [`SweepSpec::validate`].
    pub fn space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        for (name, values) in &self.params {
            s = s.param(name, values.clone());
        }
        s
    }

    /// Check the spec without panicking: non-empty params with unique
    /// names and non-empty value lists, a non-zero stride, and a
    /// template whose directives all resolve against the declared
    /// parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.params.is_empty() {
            return Err("sweep needs at least one parameter".to_string());
        }
        for (i, (name, values)) in self.params.iter().enumerate() {
            if name.is_empty() {
                return Err("empty parameter name".to_string());
            }
            if values.is_empty() {
                return Err(format!("parameter `{name}` has no values"));
            }
            if self.params[..i].iter().any(|(n, _)| n == name) {
                return Err(format!("duplicate parameter `{name}`"));
            }
        }
        if self.stride == 0 {
            return Err("stride must be positive".to_string());
        }
        // Render against the first configuration to surface template
        // errors (unknown parameters, malformed directives) up front.
        let first = self
            .space()
            .iter()
            .next()
            .expect("non-empty params imply a non-empty space");
        render(&self.template, &first).map(|_| ())
    }

    /// The planned point list: every `stride`-th configuration of the
    /// space, in enumeration order (last parameter fastest — identical
    /// to `self.space().iter().step_by(stride)`).
    ///
    /// Kept indices are decoded directly from their mixed-radix
    /// representation, so planning a strided slice costs
    /// O(points × axes) rather than a walk over the whole space — at
    /// the paper's 32,000-point space with a coarse stride, the plan
    /// is what the sweep op pays before the first request leaves the
    /// gateway.
    pub fn points(&self) -> Vec<Config> {
        let total: u64 = self.params.iter().map(|(_, vs)| vs.len() as u64).product();
        let stride = self.stride.max(1);
        let mut out = Vec::with_capacity(total.div_ceil(stride) as usize);
        let mut idx = 0u64;
        while idx < total {
            let mut rem = idx;
            let mut cfg = Config::new();
            for (name, vs) in self.params.iter().rev() {
                let radix = vs.len() as u64;
                cfg.insert(name.clone(), vs[(rem % radix) as usize]);
                rem /= radix;
            }
            out.push(cfg);
            idx += stride;
        }
        out
    }

    /// Stable 128-bit identity of this sweep — the journal directory
    /// name, so a resumed sweep only ever replays its own checkpoints.
    pub fn digest(&self) -> u128 {
        let mut h = Fnv::new();
        h.str(&self.name).str(&self.template);
        h.u64(self.params.len() as u64);
        for (name, values) in &self.params {
            h.str(name).u64(values.len() as u64);
            for v in values {
                h.u64(*v);
            }
        }
        h.str(&self.stage).u64(self.stride);
        h.finish()
    }
}

/// Stable 128-bit digest of one rendered point source — the unit the
/// sweep journal checkpoints completion of.
pub fn point_digest(source: &str) -> u128 {
    let mut h = Fnv::new();
    h.str(source);
    h.finish()
}

/// Expand `template` against one configuration. Errors name the failing
/// directive.
pub fn render(template: &str, cfg: &Config) -> Result<String, String> {
    let mut out = String::new();
    let mut rest = template;
    while let Some(pos) = rest.find("${") {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 2..];
        let Some(end) = after.find('}') else {
            return Err("unterminated `${` in template".to_string());
        };
        expand(&after[..end], cfg, &mut out)?;
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// A directive token: a parameter reference or an integer literal.
fn resolve(token: &str, cfg: &Config) -> Result<u64, String> {
    if let Ok(n) = token.parse::<u64>() {
        return Ok(n);
    }
    cfg.get(token)
        .copied()
        .ok_or_else(|| format!("unknown parameter `{token}` in template"))
}

/// The banking/unroll pairs of a `shrink`/`access` directive, resolved.
fn resolve_pairs(parts: &[&str], cfg: &Config) -> Result<Vec<(u64, u64)>, String> {
    let mut pairs = Vec::with_capacity(parts.len());
    for part in parts {
        let Some((b, u)) = part.split_once(',') else {
            return Err(format!("malformed `bank,unroll` pair `{part}` in template"));
        };
        pairs.push((resolve(b.trim(), cfg)?, resolve(u.trim(), cfg)?));
    }
    Ok(pairs)
}

/// Whether a shrink view is needed (and legal) for these pairs — the
/// same decision as the kernel generators: direct access when every
/// unroll covers its banking (or banking is 1); no view when some
/// unroll does not divide its banking (the checker rejects that
/// configuration, which is part of the experiment).
fn needs_shrink(pairs: &[(u64, u64)]) -> bool {
    let direct = pairs.iter().all(|(b, u)| *b == (*u).min(*b) || *b == 1);
    let divisible = pairs.iter().all(|(b, u)| {
        let u = (*u).max(1);
        u <= *b && b % u == 0
    });
    !direct && divisible
}

fn expand(directive: &str, cfg: &Config, out: &mut String) -> Result<(), String> {
    let parts: Vec<&str> = directive.split(':').collect();
    match parts.as_slice() {
        [token] => {
            out.push_str(&resolve(token, cfg)?.to_string());
            Ok(())
        }
        [kind @ ("shrink" | "access"), mem, rest @ ..] if !rest.is_empty() => {
            let pairs = resolve_pairs(rest, cfg)?;
            let shrunk = needs_shrink(&pairs);
            if *kind == "access" {
                out.push_str(mem);
                if shrunk {
                    out.push_str("_sh");
                }
            } else if shrunk {
                let factors: String = pairs
                    .iter()
                    .map(|(b, u)| format!("[by {}]", b / (*u).max(1)))
                    .collect();
                out.push_str(&format!("  view {mem}_sh = shrink {mem}{factors};\n"));
            }
            Ok(())
        }
        _ => Err(format!("malformed template directive `${{{directive}}}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pairs: &[(&str, u64)]) -> Config {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn strided_plan_matches_the_odometer_walk() {
        for stride in [1, 2, 3, 7, 11, 100] {
            let spec = SweepSpec {
                name: "k".to_string(),
                template: "${a} ${b} ${c}".to_string(),
                params: vec![
                    ("a".to_string(), vec![1, 2, 3]),
                    ("b".to_string(), vec![10, 20]),
                    ("c".to_string(), vec![5, 6, 7, 8]),
                ],
                stage: "est".to_string(),
                stride,
            };
            let walked: Vec<Config> = spec
                .space()
                .iter()
                .step_by(stride.max(1) as usize)
                .collect();
            assert_eq!(spec.points(), walked, "stride {stride}");
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            name: "k".to_string(),
            template: "decl A: float[8 bank ${b}];\n${shrink:A:b,u}let x = \
                       ${access:A:b,u}[0];\n"
                .to_string(),
            params: vec![
                ("b".to_string(), vec![1, 2, 4]),
                ("u".to_string(), vec![1, 2]),
            ],
            stage: "est".to_string(),
            stride: 1,
        }
    }

    #[test]
    fn values_substitute_and_literals_pass() {
        let c = cfg(&[("b", 4), ("u", 4)]);
        assert_eq!(render("x${b}y${7}z", &c).unwrap(), "x4y7z");
    }

    #[test]
    fn shrink_directive_matches_generator_modes() {
        // Matched: direct access, no view.
        let c = cfg(&[("b", 4), ("u", 4)]);
        let src = render(&spec().template, &c).unwrap();
        assert!(!src.contains("shrink"));
        assert!(src.contains("let x = A[0]"));
        // Proper divisor: view + suffixed access.
        let c = cfg(&[("b", 4), ("u", 2)]);
        let src = render(&spec().template, &c).unwrap();
        assert!(src.contains("  view A_sh = shrink A[by 2];\n"));
        assert!(src.contains("let x = A_sh[0]"));
        // Non-divisor: leave the mismatch for the checker.
        let c = cfg(&[("b", 4), ("u", 3)]);
        let src = render(&spec().template, &c).unwrap();
        assert!(!src.contains("shrink"));
        assert!(src.contains("let x = A[0]"));
    }

    #[test]
    fn errors_name_the_directive() {
        let c = cfg(&[("b", 1)]);
        assert!(render("${missing}", &c).unwrap_err().contains("missing"));
        assert!(render("${x", &c).unwrap_err().contains("unterminated"));
        assert!(render("${shrink:A}", &c).unwrap_err().contains("shrink:A"));
        assert!(render("${shrink:A:b}", &c)
            .unwrap_err()
            .contains("bank,unroll"));
    }

    #[test]
    fn points_respect_stride_and_order() {
        let s = spec();
        assert_eq!(s.points().len(), 6);
        let strided = SweepSpec { stride: 2, ..s };
        let pts = strided.points();
        assert_eq!(pts.len(), 3);
        // Last param varies fastest; stride 2 keeps (1,1) (2,1) (4,1).
        assert_eq!(pts[0]["b"], 1);
        assert_eq!(pts[1]["b"], 2);
        assert_eq!(pts[2]["b"], 4);
        assert!(pts.iter().all(|p| p["u"] == 1));
    }

    #[test]
    fn digests_are_stable_and_sensitive() {
        let a = spec().digest();
        assert_eq!(a, spec().digest());
        let mut other = spec();
        other.stride = 2;
        assert_ne!(a, other.digest());
        assert_ne!(point_digest("x"), point_digest("y"));
    }

    #[test]
    fn validate_catches_bad_specs() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.params.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.stride = 0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.params.push(("b".to_string(), vec![1]));
        assert!(bad.validate().unwrap_err().contains("duplicate"));
        let mut bad = spec();
        bad.template = "${nope}".to_string();
        assert!(bad.validate().unwrap_err().contains("nope"));
    }
}
