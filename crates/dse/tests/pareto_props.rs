//! Property tests for the Pareto machinery: the incremental frontier
//! agrees with a naive O(n²) oracle, and frontier axioms hold on random
//! point clouds.

use proptest::prelude::*;

use dahlia_dse::{dominates, pareto_mask};

/// Naive quadratic oracle.
fn pareto_naive(objs: &[Vec<f64>]) -> Vec<bool> {
    objs.iter()
        .map(|p| !objs.iter().any(|q| dominates(q, p)))
        .collect()
}

fn cloud() -> impl Strategy<Value = Vec<Vec<f64>>> {
    let dims = 1usize..5;
    dims.prop_flat_map(|d| {
        prop::collection::vec(
            prop::collection::vec(0u32..50, d..=d)
                .prop_map(|row| row.into_iter().map(f64::from).collect::<Vec<f64>>()),
            0..60,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn incremental_matches_naive(objs in cloud()) {
        prop_assert_eq!(pareto_mask(&objs), pareto_naive(&objs));
    }

    #[test]
    fn frontier_points_are_mutually_incomparable(objs in cloud()) {
        let mask = pareto_mask(&objs);
        for (i, &mi) in mask.iter().enumerate() {
            for (j, &mj) in mask.iter().enumerate() {
                if mi && mj {
                    prop_assert!(!dominates(&objs[i], &objs[j]) || i == j);
                }
            }
        }
    }

    #[test]
    fn dominance_is_a_strict_partial_order(a in prop::collection::vec(0u32..50, 3),
                                           b in prop::collection::vec(0u32..50, 3),
                                           c in prop::collection::vec(0u32..50, 3)) {
        let f = |v: &[u32]| v.iter().map(|&x| x as f64).collect::<Vec<f64>>();
        let (a, b, c) = (f(&a), f(&b), f(&c));
        // Irreflexive.
        prop_assert!(!dominates(&a, &a));
        // Asymmetric.
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        // Transitive.
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    #[test]
    fn shuffling_does_not_change_the_frontier_set(objs in cloud()) {
        let mask = pareto_mask(&objs);
        let mut rev = objs.clone();
        rev.reverse();
        let mask_rev = pareto_mask(&rev);
        let fwd: Vec<&Vec<f64>> =
            objs.iter().zip(&mask).filter(|(_, m)| **m).map(|(p, _)| p).collect();
        let mut bwd: Vec<&Vec<f64>> =
            rev.iter().zip(&mask_rev).filter(|(_, m)| **m).map(|(p, _)| p).collect();
        bwd.reverse();
        let mut fwd_sorted = fwd.clone();
        fwd_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bwd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(fwd_sorted, bwd);
    }
}
