//! Property tests for the Pareto machinery: the incremental frontier
//! agrees with a naive O(n²) oracle, frontier axioms hold on random
//! point clouds, and the streaming [`ParetoFront`] the cluster sweep
//! folds shard results through is insertion-order independent with
//! commutative, idempotent merges. Failing cases are minimized by the
//! proptest shim's shrinking.

use proptest::prelude::*;

use dahlia_dse::{dominates, pareto_mask, ParetoFront};

/// Naive quadratic oracle.
fn pareto_naive(objs: &[Vec<f64>]) -> Vec<bool> {
    objs.iter()
        .map(|p| !objs.iter().any(|q| dominates(q, p)))
        .collect()
}

fn cloud() -> impl Strategy<Value = Vec<Vec<f64>>> {
    let dims = 1usize..5;
    dims.prop_flat_map(|d| {
        prop::collection::vec(
            prop::collection::vec(0u32..50, d..=d)
                .prop_map(|row| row.into_iter().map(f64::from).collect::<Vec<f64>>()),
            0..60,
        )
    })
}

/// Key each point by its objective values, so a generated list denotes a
/// *set* of labeled points (duplicate rows collapse onto one key — the
/// front's key-dedup makes re-insertion a no-op, like journal replay).
fn labeled(objs: &[Vec<f64>]) -> Vec<(String, Vec<f64>)> {
    objs.iter().map(|p| (format!("{p:?}"), p.clone())).collect()
}

/// Build a front by inserting the labeled points in the given order.
fn front_of(points: &[(String, Vec<f64>)]) -> ParetoFront {
    let mut f = ParetoFront::new();
    for (k, p) in points {
        f.insert(k.clone(), p.clone());
    }
    f
}

/// Canonical, comparable rendering of a front.
fn rendered(f: &ParetoFront) -> Vec<(String, Vec<f64>)> {
    f.entries()
        .into_iter()
        .map(|e| (e.key, e.objectives))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn incremental_matches_naive(objs in cloud()) {
        prop_assert_eq!(pareto_mask(&objs), pareto_naive(&objs));
    }

    #[test]
    fn frontier_points_are_mutually_incomparable(objs in cloud()) {
        let mask = pareto_mask(&objs);
        for (i, &mi) in mask.iter().enumerate() {
            for (j, &mj) in mask.iter().enumerate() {
                if mi && mj {
                    prop_assert!(!dominates(&objs[i], &objs[j]) || i == j);
                }
            }
        }
    }

    #[test]
    fn dominance_is_a_strict_partial_order(a in prop::collection::vec(0u32..50, 3),
                                           b in prop::collection::vec(0u32..50, 3),
                                           c in prop::collection::vec(0u32..50, 3)) {
        let f = |v: &[u32]| v.iter().map(|&x| x as f64).collect::<Vec<f64>>();
        let (a, b, c) = (f(&a), f(&b), f(&c));
        // Irreflexive.
        prop_assert!(!dominates(&a, &a));
        // Asymmetric.
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
        // Transitive.
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    #[test]
    fn shuffling_does_not_change_the_frontier_set(objs in cloud()) {
        let mask = pareto_mask(&objs);
        let mut rev = objs.clone();
        rev.reverse();
        let mask_rev = pareto_mask(&rev);
        let fwd: Vec<&Vec<f64>> =
            objs.iter().zip(&mask).filter(|(_, m)| **m).map(|(p, _)| p).collect();
        let mut bwd: Vec<&Vec<f64>> =
            rev.iter().zip(&mask_rev).filter(|(_, m)| **m).map(|(p, _)| p).collect();
        bwd.reverse();
        let mut fwd_sorted = fwd.clone();
        fwd_sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        bwd.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(fwd_sorted, bwd);
    }

    #[test]
    fn front_is_insertion_order_independent(objs in cloud()) {
        let pts = labeled(&objs);
        let fwd = front_of(&pts);
        let mut rev = pts;
        rev.reverse();
        prop_assert_eq!(rendered(&fwd), rendered(&front_of(&rev)));
    }

    #[test]
    fn front_never_retains_a_dominated_point(objs in cloud()) {
        let f = front_of(&labeled(&objs));
        for e in f.entries() {
            prop_assert!(
                !objs.iter().any(|p| dominates(p, &e.objectives)),
                "front kept dominated point {:?}",
                e.objectives
            );
        }
        // And it drops nothing it should keep: survivor count matches the
        // batch oracle over the deduplicated point set.
        let mut uniq = objs;
        uniq.sort_by(|a, b| a.partial_cmp(b).unwrap());
        uniq.dedup();
        let oracle = pareto_mask(&uniq).into_iter().filter(|m| *m).count();
        prop_assert_eq!(f.len(), oracle);
    }

    #[test]
    fn merge_is_commutative_and_idempotent(objs in cloud(), split in 0u32..64) {
        let pts = labeled(&objs);
        let cut = if pts.is_empty() { 0 } else { split as usize % (pts.len() + 1) };
        let (a, b) = (front_of(&pts[..cut]), front_of(&pts[cut..]));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(rendered(&ab), rendered(&ba));

        let mut twice = ab.clone();
        twice.merge(&b);
        twice.merge(&ab.clone());
        prop_assert_eq!(rendered(&twice), rendered(&ab));
    }

    #[test]
    fn front_of_union_is_union_of_fronts(objs in cloud(), split in 0u32..64) {
        // The load-bearing sweep property: folding per-shard fronts
        // together equals fronting the whole point stream, so shard
        // completion order cannot change the final front.
        let pts = labeled(&objs);
        let cut = if pts.is_empty() { 0 } else { split as usize % (pts.len() + 1) };
        let whole = front_of(&pts);
        let mut merged = front_of(&pts[..cut]);
        merged.merge(&front_of(&pts[cut..]));
        prop_assert_eq!(rendered(&whole), rendered(&merged));
    }
}
