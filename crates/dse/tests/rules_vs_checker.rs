//! Cross-validation: the explicit "unwritten rules" predictor agrees with
//! the real affine type checker on the loop-over-banked-array template —
//! Dahlia's types are exactly those rules, made compositional.

use dahlia_dse::rules::SweptAccess;
use dahlia_dse::{accepts, ParamSpace};

/// Generate the template program for one configuration, with the idiomatic
/// shrink view when the unroll factor properly divides the banking factor.
fn template(size: u64, banks: u64, unroll: u64) -> String {
    let (view, name) = if unroll > 1 && unroll < banks && banks.is_multiple_of(unroll) {
        (format!("view s = shrink a[by {}];\n", banks / unroll), "s")
    } else {
        (String::new(), "a")
    };
    format!(
        "let a: float[{size} bank {banks}];\nlet b: float[{size} bank {banks}];\n{view}\
         for (let i = 0..{size}) unroll {unroll} {{ b[i] := {name}[i]; }}"
    )
}

#[test]
fn predictor_matches_checker_exhaustively() {
    let space = ParamSpace::new()
        .param("size", [8, 12, 16, 18, 24])
        .param("banks", 1..=8)
        .param("unroll", 1..=8);
    let mut agreements = 0;
    for cfg in &space {
        let (size, banks, unroll) = (cfg["size"], cfg["banks"], cfg["unroll"]);
        let predicted = SweptAccess {
            size,
            banks,
            trips: size,
            unroll,
            shrinkable: true,
        }
        .predict_accepted();
        // The write side `b[i]` has no shrink view in the template: with
        // unroll < banks it would be rejected, so the template only
        // bridges the read. Model both accesses.
        let write_ok = SweptAccess {
            size,
            banks,
            trips: size,
            unroll,
            shrinkable: false,
        }
        .predict_accepted();
        let predicted = predicted && write_ok;
        let actual = accepts(&template(size, banks, unroll));
        assert_eq!(
            predicted, actual,
            "rules vs checker diverge at size={size} banks={banks} unroll={unroll}"
        );
        agreements += 1;
    }
    assert_eq!(agreements, space.len() as usize);
}

#[test]
fn predictor_is_a_sound_prefilter_on_gemm_like_spaces() {
    // On a gemm-like template, predicted-rejected ⇒ checker-rejected
    // (the predictor may be *more* permissive only where the template has
    // structure the simple rules don't see — here it must be exact on the
    // k-dimension access).
    for banks in 1..=4u64 {
        for unroll in [1u64, 2, 4, 6, 8] {
            let src = format!(
                "let m1: float[16][16 bank {banks}];
                 let s = 0.0;
                 for (let i = 0..16) {{
                   for (let k = 0..16) unroll {unroll} {{
                     let v = m1[i][k];
                   }} combine {{ s += v; }}
                 }}"
            );
            let predicted = SweptAccess {
                size: 16,
                banks,
                trips: 16,
                unroll,
                shrinkable: false,
            }
            .predict_accepted();
            if !predicted {
                assert!(
                    !accepts(&src),
                    "predictor said reject but checker accepted: banks={banks} unroll={unroll}"
                );
            }
        }
    }
}
