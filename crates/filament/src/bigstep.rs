//! The large-step *checked* operational semantics of §4.2 / Appendix A.
//!
//! The semantics explicitly tracks ρ — the set of memories accessed in the
//! current ordered epoch — and gets **stuck** when a command would require
//! two conflicting accesses. The type system's job (see
//! [`typecheck`](crate::typecheck)) is to rule these stuck states out.

use crate::syntax::{Cmd, Expr, Rho, Sigma, Val};

/// Why evaluation got stuck (or failed to terminate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stuck {
    /// `a ∈ ρ`: the memory was already consumed in this epoch.
    MemConsumed(String),
    /// Out-of-bounds memory index.
    OutOfBounds(String, i64),
    /// Unbound variable or memory.
    Unbound(String),
    /// A `bop` applied to incompatible values, a non-bool condition, or a
    /// non-numeric index.
    DynamicType,
    /// Execution fuel ran out (used to cut off diverging `while` loops).
    FuelExhausted,
}

/// Fuel-bounded big-step evaluation result.
pub type EvalResult<T> = Result<T, Stuck>;

/// Evaluate an expression: `σ₁, ρ₁, e ⇓ σ₂, ρ₂, v`.
///
/// # Errors
///
/// Returns [`Stuck`] exactly when no rule applies.
pub fn eval_expr(sigma: Sigma, rho: Rho, e: &Expr) -> EvalResult<(Sigma, Rho, Val)> {
    match e {
        Expr::Val(v) => Ok((sigma, rho, *v)),
        Expr::Var(x) => {
            let v = *sigma.vars.get(x).ok_or_else(|| Stuck::Unbound(x.clone()))?;
            Ok((sigma, rho, v))
        }
        Expr::Bop(op, e1, e2) => {
            let (s2, r2, v1) = eval_expr(sigma, rho, e1)?;
            let (s3, r3, v2) = eval_expr(s2, r2, e2)?;
            let v3 = op.apply(v1, v2).ok_or(Stuck::DynamicType)?;
            Ok((s3, r3, v3))
        }
        Expr::Read(a, idx) => {
            // a ∉ ρ₁   σ₁,ρ₁,e ⇓ σ₂,ρ₂,n   σ₂(a)(n) = v
            // ---------------------------------------------
            // σ₁,ρ₁,a[e] ⇓ σ₂, ρ₂ ∪ {a}, v
            if rho.contains(a) {
                return Err(Stuck::MemConsumed(a.clone()));
            }
            let (s2, mut r2, n) = eval_expr(sigma, rho, idx)?;
            let n = match n {
                Val::Num(n) => n,
                Val::Bool(_) => return Err(Stuck::DynamicType),
            };
            let mem = s2.mems.get(a).ok_or_else(|| Stuck::Unbound(a.clone()))?;
            let v = *mem
                .get(usize::try_from(n).map_err(|_| Stuck::OutOfBounds(a.clone(), n))?)
                .ok_or_else(|| Stuck::OutOfBounds(a.clone(), n))?;
            r2.insert(a.clone());
            Ok((s2, r2, v))
        }
    }
}

/// Execute a command: `σ₁, ρ₁, c ⇓ σ₂, ρ₂` (with fuel).
///
/// # Errors
///
/// Returns [`Stuck`] when no rule applies, or [`Stuck::FuelExhausted`] if
/// `fuel` command steps are not enough.
pub fn exec_cmd(sigma: Sigma, rho: Rho, c: &Cmd, fuel: &mut u64) -> EvalResult<(Sigma, Rho)> {
    if *fuel == 0 {
        return Err(Stuck::FuelExhausted);
    }
    *fuel -= 1;
    match c {
        Cmd::Skip => Ok((sigma, rho)),
        Cmd::Expr(e) => {
            let (s, r, _) = eval_expr(sigma, rho, e)?;
            Ok((s, r))
        }
        Cmd::Let(x, e) => {
            let (mut s, r, v) = eval_expr(sigma, rho, e)?;
            s.vars.insert(x.clone(), v);
            Ok((s, r))
        }
        Cmd::Assign(x, e) => {
            let (mut s, r, v) = eval_expr(sigma, rho, e)?;
            if !s.vars.contains_key(x) {
                return Err(Stuck::Unbound(x.clone()));
            }
            s.vars.insert(x.clone(), v);
            Ok((s, r))
        }
        Cmd::Write(a, e1, e2) => {
            // σ₁,ρ₁,e1 ⇓ σ₂,ρ₂,n   σ₂,ρ₂,e2 ⇓ σ₃,ρ₃,v   a ∉ ρ₃
            // → σ₃[a[n] ↦ v], ρ₃ ∪ {a}
            let (s2, r2, n) = eval_expr(sigma, rho, e1)?;
            let (mut s3, mut r3, v) = eval_expr(s2, r2, e2)?;
            let n = match n {
                Val::Num(n) => n,
                Val::Bool(_) => return Err(Stuck::DynamicType),
            };
            if r3.contains(a) {
                return Err(Stuck::MemConsumed(a.clone()));
            }
            let mem = s3
                .mems
                .get_mut(a)
                .ok_or_else(|| Stuck::Unbound(a.clone()))?;
            let slot = mem
                .get_mut(usize::try_from(n).map_err(|_| Stuck::OutOfBounds(a.clone(), n))?)
                .ok_or_else(|| Stuck::OutOfBounds(a.clone(), n))?;
            *slot = v;
            r3.insert(a.clone());
            Ok((s3, r3))
        }
        Cmd::Seq(c1, c2) => {
            // Unordered composition threads ρ.
            let (s2, r2) = exec_cmd(sigma, rho, c1, fuel)?;
            exec_cmd(s2, r2, c2, fuel)
        }
        Cmd::Ordered(c1, c2) => {
            // Both commands run under the entry ρ; results are unioned.
            let (s2, r2) = exec_cmd(sigma, rho.clone(), c1, fuel)?;
            let (s3, r3) = exec_cmd(s2, rho, c2, fuel)?;
            Ok((s3, r2.union(&r3).cloned().collect()))
        }
        Cmd::OrderedRho(c1, c2, captured) => {
            // σ₁,ρ₁,c1 ⇓ σ₂,ρ₂   σ₂,ρ,c2 ⇓ σ₃,ρ₃ → ρ₂ ∪ ρ₃
            let (s2, r2) = exec_cmd(sigma, rho, c1, fuel)?;
            let (s3, r3) = exec_cmd(s2, captured.clone(), c2, fuel)?;
            Ok((s3, r2.union(&r3).cloned().collect()))
        }
        Cmd::If(x, c1, c2) => {
            let v = *sigma.vars.get(x).ok_or_else(|| Stuck::Unbound(x.clone()))?;
            match v {
                Val::Bool(true) => exec_cmd(sigma, rho, c1, fuel),
                Val::Bool(false) => exec_cmd(sigma, rho, c2, fuel),
                Val::Num(_) => Err(Stuck::DynamicType),
            }
        }
        Cmd::While(x, body) => {
            // Each iteration is *ordered* with the rest of the loop
            // (`c  while x c`), so every body runs under the entry ρ and
            // the results are unioned. Unrolling that recursion into a
            // loop keeps deep iteration counts off the Rust stack.
            let mut sigma = sigma;
            let mut acc = rho.clone();
            loop {
                if *fuel == 0 {
                    return Err(Stuck::FuelExhausted);
                }
                *fuel -= 1;
                let v = *sigma.vars.get(x).ok_or_else(|| Stuck::Unbound(x.clone()))?;
                match v {
                    Val::Bool(true) => {
                        let (s2, rb) = exec_cmd(sigma, rho.clone(), body, fuel)?;
                        sigma = s2;
                        acc.extend(rb);
                    }
                    Val::Bool(false) => return Ok((sigma, acc)),
                    Val::Num(_) => return Err(Stuck::DynamicType),
                }
            }
        }
    }
}

/// Run a command from an initial state with empty ρ and default fuel.
///
/// # Errors
///
/// See [`exec_cmd`].
pub fn run(sigma: Sigma, c: &Cmd) -> EvalResult<(Sigma, Rho)> {
    let mut fuel = 1_000_000;
    exec_cmd(sigma, Rho::new(), c, &mut fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Bop;

    fn st() -> Sigma {
        Sigma::with_memories([("a", 4), ("b", 4)])
    }

    #[test]
    fn read_consumes_memory() {
        // let x = a[0] ; let y = a[1]  — second read gets stuck.
        let c = Cmd::seq(
            Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
            Cmd::Let("y".into(), Expr::read("a", Expr::num(1))),
        );
        assert_eq!(run(st(), &c), Err(Stuck::MemConsumed("a".into())));
    }

    #[test]
    fn ordered_restores_memory() {
        // let x = a[0] --- a[1] := 1
        let c = Cmd::ordered(
            Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
            Cmd::Write("a".into(), Expr::num(1), Expr::num(1)),
        );
        let (s, r) = run(st(), &c).unwrap();
        assert_eq!(s.mems["a"][1], Val::Num(1));
        assert!(r.contains("a"));
    }

    #[test]
    fn ordered_union_blocks_later_use() {
        // (a[0] := 1 --- b[0] := 1); let x = b[1]  — the union ρ₂ ∪ ρ₃
        // contains both memories, so the trailing read is stuck.
        let c = Cmd::seq(
            Cmd::ordered(
                Cmd::Write("a".into(), Expr::num(0), Expr::num(1)),
                Cmd::Write("b".into(), Expr::num(0), Expr::num(1)),
            ),
            Cmd::Let("x".into(), Expr::read("b", Expr::num(1))),
        );
        assert_eq!(run(st(), &c), Err(Stuck::MemConsumed("b".into())));
    }

    #[test]
    fn while_iterations_reset_rho() {
        // let i = 0; let t = true;
        // while t { a[0] := i ; i := i + 1 ; t := i < 3 } — each iteration
        // writes `a` once; iterations are ordered so this runs to i = 3.
        let lt3 = |e| Expr::Bop(Bop::Lt, Box::new(e), Box::new(Expr::num(3)));
        let c = Cmd::seq_all([
            Cmd::Let("i".into(), Expr::num(0)),
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::While(
                "t".into(),
                Box::new(Cmd::seq_all([
                    Cmd::Write("a".into(), Expr::num(0), Expr::var("i")),
                    Cmd::Assign(
                        "i".into(),
                        Expr::Bop(Bop::Add, Box::new(Expr::var("i")), Box::new(Expr::num(1))),
                    ),
                    Cmd::Assign("t".into(), lt3(Expr::var("i"))),
                ])),
            ),
        ]);
        let (s, _) = run(st(), &c).unwrap();
        assert_eq!(s.mems["a"][0], Val::Num(2));
        assert_eq!(s.vars["i"], Val::Num(3));
    }

    #[test]
    fn out_of_bounds_sticks() {
        let c = Cmd::Expr(Expr::read("a", Expr::num(9)));
        assert_eq!(run(st(), &c), Err(Stuck::OutOfBounds("a".into(), 9)));
    }

    #[test]
    fn unbound_sticks() {
        assert_eq!(
            run(st(), &Cmd::Expr(Expr::var("nope"))),
            Err(Stuck::Unbound("nope".into()))
        );
        assert_eq!(
            run(st(), &Cmd::Assign("nope".into(), Expr::num(1))),
            Err(Stuck::Unbound("nope".into()))
        );
    }

    #[test]
    fn dynamic_type_errors_stick() {
        let c = Cmd::Expr(Expr::Bop(
            Bop::And,
            Box::new(Expr::num(1)),
            Box::new(Expr::num(2)),
        ));
        assert_eq!(run(st(), &c), Err(Stuck::DynamicType));
        let c = Cmd::seq(
            Cmd::Let("x".into(), Expr::num(1)),
            Cmd::If("x".into(), Box::new(Cmd::Skip), Box::new(Cmd::Skip)),
        );
        assert_eq!(run(st(), &c), Err(Stuck::DynamicType));
    }

    #[test]
    fn diverging_while_exhausts_fuel() {
        let c = Cmd::seq(
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::While("t".into(), Box::new(Cmd::Skip)),
        );
        assert_eq!(run(st(), &c), Err(Stuck::FuelExhausted));
    }

    #[test]
    fn write_then_read_conflicts() {
        let c = Cmd::seq(
            Cmd::Write("a".into(), Expr::num(0), Expr::num(5)),
            Cmd::Expr(Expr::read("a", Expr::num(0))),
        );
        assert_eq!(run(st(), &c), Err(Stuck::MemConsumed("a".into())));
    }
}
