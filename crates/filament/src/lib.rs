//! # filament
//!
//! Filament, the core calculus of *“Predictable Accelerator Design with
//! Time-Sensitive Affine Types”* (§4): syntax, the checked big-step and
//! small-step operational semantics, and the time-sensitive affine type
//! system, together with an executable soundness harness.
//!
//! The paper proves syntactic type soundness (progress + preservation):
//! a well-typed command never gets stuck on a memory conflict. Here the
//! theorem is checked *empirically*: property tests generate thousands of
//! programs, filter the well-typed ones, and assert that iterating the
//! small-step relation ends in `skip` — and that big-step and small-step
//! agree.
//!
//! ```
//! use filament::{Checker, Cmd, Expr, Sigma};
//! use filament::bigstep::run;
//!
//! // let x = a[0]  ---  a[1] := x
//! let c = Cmd::ordered(
//!     Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
//!     Cmd::Write("a".into(), Expr::num(1), Expr::var("x")),
//! );
//! let ck = Checker::with_memories([("a", 4)]);
//! assert!(ck.check(&c).is_ok());
//! assert!(run(Sigma::with_memories([("a", 4)]), &c).is_ok());
//! ```

pub mod bigstep;
pub mod smallstep;
pub mod syntax;
pub mod typecheck;

pub use bigstep::{eval_expr, exec_cmd, run, Stuck};
pub use smallstep::{run_small, step_cmd, step_expr, RunOutcome, Step};
pub use syntax::{Bop, Cmd, Expr, Rho, Sigma, Store, Ty, Val, VarEnv};
pub use typecheck::{Checker, Delta, Gamma, TypeErr};
