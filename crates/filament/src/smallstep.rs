//! The small-step checked operational semantics of §4.4 / Appendix A.
//!
//! The interesting rules concern ordered composition: `c1 c2` first steps
//! to the intermediate form `c1 ~ρ~ c2`, capturing the current memory
//! context ρ; `c2` then executes under the captured context while `c1`'s
//! consumption accumulates in the outer one, and the final rule unions the
//! two — exactly the big-step `ρ₂ ∪ ρ₃`.

use crate::bigstep::Stuck;
use crate::syntax::{Cmd, Expr, Rho, Sigma, Val};

/// The result of attempting one small step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// `σ,ρ,c → σ',ρ',c'`.
    Stepped(Sigma, Rho, Cmd),
    /// `c = skip`: terminal configuration.
    Terminal,
    /// No rule applies: `σ,ρ,c ↛` with `c ≠ skip`.
    Stuck(Stuck),
}

/// One small step of an expression: `σ,ρ,e → σ',ρ',e'`.
/// `Ok(None)` means the expression is already a value.
///
/// # Errors
///
/// Returns [`Stuck`] when no rule applies.
pub fn step_expr(sigma: &Sigma, rho: &Rho, e: &Expr) -> Result<Option<(Rho, Expr)>, Stuck> {
    match e {
        Expr::Val(_) => Ok(None),
        Expr::Var(x) => {
            let v = *sigma.vars.get(x).ok_or_else(|| Stuck::Unbound(x.clone()))?;
            Ok(Some((rho.clone(), Expr::Val(v))))
        }
        Expr::Bop(op, e1, e2) => {
            if let Some((r, e1p)) = step_expr(sigma, rho, e1)? {
                return Ok(Some((r, Expr::Bop(*op, Box::new(e1p), e2.clone()))));
            }
            if let Some((r, e2p)) = step_expr(sigma, rho, e2)? {
                return Ok(Some((r, Expr::Bop(*op, e1.clone(), Box::new(e2p)))));
            }
            let (v1, v2) = (
                e1.as_val().expect("lhs value"),
                e2.as_val().expect("rhs value"),
            );
            let v = op.apply(v1, v2).ok_or(Stuck::DynamicType)?;
            Ok(Some((rho.clone(), Expr::Val(v))))
        }
        Expr::Read(a, idx) => {
            if let Some((r, ip)) = step_expr(sigma, rho, idx)? {
                return Ok(Some((r, Expr::Read(a.clone(), Box::new(ip)))));
            }
            if rho.contains(a) {
                return Err(Stuck::MemConsumed(a.clone()));
            }
            let n = match idx.as_val().expect("index value") {
                Val::Num(n) => n,
                Val::Bool(_) => return Err(Stuck::DynamicType),
            };
            let mem = sigma.mems.get(a).ok_or_else(|| Stuck::Unbound(a.clone()))?;
            let v = *usize::try_from(n)
                .ok()
                .and_then(|i| mem.get(i))
                .ok_or_else(|| Stuck::OutOfBounds(a.clone(), n))?;
            let mut r = rho.clone();
            r.insert(a.clone());
            Ok(Some((r, Expr::Val(v))))
        }
    }
}

/// One small step of a command.
pub fn step_cmd(sigma: &Sigma, rho: &Rho, c: &Cmd) -> Step {
    match step_cmd_inner(sigma, rho, c) {
        Ok(Some((s, r, c))) => Step::Stepped(s, r, c),
        Ok(None) => Step::Terminal,
        Err(e) => Step::Stuck(e),
    }
}

#[allow(clippy::type_complexity)]
fn step_cmd_inner(sigma: &Sigma, rho: &Rho, c: &Cmd) -> Result<Option<(Sigma, Rho, Cmd)>, Stuck> {
    match c {
        Cmd::Skip => Ok(None),
        Cmd::Expr(e) => match step_expr(sigma, rho, e)? {
            Some((r, ep)) => Ok(Some((sigma.clone(), r, Cmd::Expr(ep)))),
            None => Ok(Some((sigma.clone(), rho.clone(), Cmd::Skip))),
        },
        Cmd::Let(x, e) => match step_expr(sigma, rho, e)? {
            Some((r, ep)) => Ok(Some((sigma.clone(), r, Cmd::Let(x.clone(), ep)))),
            None => {
                let mut s = sigma.clone();
                s.vars.insert(x.clone(), e.as_val().expect("value"));
                Ok(Some((s, rho.clone(), Cmd::Skip)))
            }
        },
        Cmd::Assign(x, e) => match step_expr(sigma, rho, e)? {
            Some((r, ep)) => Ok(Some((sigma.clone(), r, Cmd::Assign(x.clone(), ep)))),
            None => {
                if !sigma.vars.contains_key(x) {
                    return Err(Stuck::Unbound(x.clone()));
                }
                let mut s = sigma.clone();
                s.vars.insert(x.clone(), e.as_val().expect("value"));
                Ok(Some((s, rho.clone(), Cmd::Skip)))
            }
        },
        Cmd::Write(a, e1, e2) => {
            if let Some((r, e1p)) = step_expr(sigma, rho, e1)? {
                return Ok(Some((
                    sigma.clone(),
                    r,
                    Cmd::Write(a.clone(), e1p, e2.clone()),
                )));
            }
            if let Some((r, e2p)) = step_expr(sigma, rho, e2)? {
                return Ok(Some((
                    sigma.clone(),
                    r,
                    Cmd::Write(a.clone(), e1.clone(), e2p),
                )));
            }
            if rho.contains(a) {
                return Err(Stuck::MemConsumed(a.clone()));
            }
            let n = match e1.as_val().expect("index value") {
                Val::Num(n) => n,
                Val::Bool(_) => return Err(Stuck::DynamicType),
            };
            let v = e2.as_val().expect("rhs value");
            let mut s = sigma.clone();
            let mem = s.mems.get_mut(a).ok_or_else(|| Stuck::Unbound(a.clone()))?;
            let slot = usize::try_from(n)
                .ok()
                .and_then(|i| mem.get_mut(i))
                .ok_or_else(|| Stuck::OutOfBounds(a.clone(), n))?;
            *slot = v;
            let mut r = rho.clone();
            r.insert(a.clone());
            Ok(Some((s, r, Cmd::Skip)))
        }
        Cmd::Seq(c1, c2) => {
            if **c1 == Cmd::Skip {
                return Ok(Some((sigma.clone(), rho.clone(), (**c2).clone())));
            }
            match step_cmd_inner(sigma, rho, c1)? {
                Some((s, r, c1p)) => Ok(Some((s, r, Cmd::Seq(Box::new(c1p), c2.clone())))),
                None => unreachable!("non-skip command either steps or sticks"),
            }
        }
        // σ,ρ, c1 c2 → σ,ρ, c1 ~ρ~ c2  (capture the entry context)
        Cmd::Ordered(c1, c2) => Ok(Some((
            sigma.clone(),
            rho.clone(),
            Cmd::OrderedRho(c1.clone(), c2.clone(), rho.clone()),
        ))),
        Cmd::OrderedRho(c1, c2, captured) => {
            if **c1 != Cmd::Skip {
                // c1 steps under the outer ρ.
                match step_cmd_inner(sigma, rho, c1)? {
                    Some((s, r, c1p)) => {
                        return Ok(Some((
                            s,
                            r,
                            Cmd::OrderedRho(Box::new(c1p), c2.clone(), captured.clone()),
                        )))
                    }
                    None => unreachable!("non-skip command either steps or sticks"),
                }
            }
            if **c2 != Cmd::Skip {
                // skip ~ρ''~ c2: c2 steps under the captured ρ''; the outer
                // ρ is left untouched while ρ'' advances in the annotation.
                match step_cmd_inner(sigma, captured, c2)? {
                    Some((s, rppp, c2p)) => {
                        return Ok(Some((
                            s,
                            rho.clone(),
                            Cmd::OrderedRho(c1.clone(), Box::new(c2p), rppp),
                        )))
                    }
                    None => unreachable!("non-skip command either steps or sticks"),
                }
            }
            // skip ~ρ''~ skip → σ, ρ ∪ ρ'', skip
            let union: Rho = rho.union(captured).cloned().collect();
            Ok(Some((sigma.clone(), union, Cmd::Skip)))
        }
        Cmd::If(x, c1, c2) => match sigma.vars.get(x) {
            Some(Val::Bool(true)) => Ok(Some((sigma.clone(), rho.clone(), (**c1).clone()))),
            Some(Val::Bool(false)) => Ok(Some((sigma.clone(), rho.clone(), (**c2).clone()))),
            Some(Val::Num(_)) => Err(Stuck::DynamicType),
            None => Err(Stuck::Unbound(x.clone())),
        },
        // while x c → if x (c  while x c) skip
        Cmd::While(x, body) => Ok(Some((
            sigma.clone(),
            rho.clone(),
            Cmd::If(
                x.clone(),
                Box::new(Cmd::ordered((**body).clone(), c.clone())),
                Box::new(Cmd::Skip),
            ),
        ))),
    }
}

/// Outcome of iterating the small-step relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached `skip`.
    Done(Sigma, Rho),
    /// Reached a configuration with no applicable rule.
    Stuck(Stuck, Cmd),
    /// Fuel exhausted (divergence).
    Diverged,
}

/// Iterate the small-step relation to completion (or fuel exhaustion).
pub fn run_small(sigma: Sigma, c: &Cmd, mut fuel: u64) -> RunOutcome {
    let mut state = (sigma, Rho::new(), c.clone());
    loop {
        if fuel == 0 {
            return RunOutcome::Diverged;
        }
        fuel -= 1;
        match step_cmd(&state.0, &state.1, &state.2) {
            Step::Stepped(s, r, c) => state = (s, r, c),
            Step::Terminal => return RunOutcome::Done(state.0, state.1),
            Step::Stuck(e) => return RunOutcome::Stuck(e, state.2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep;
    use crate::syntax::Bop;

    fn st() -> Sigma {
        Sigma::with_memories([("a", 4), ("b", 4)])
    }

    /// Big-step and iterated small-step agree on final state and ρ.
    fn agree(c: &Cmd) {
        let big = bigstep::run(st(), c);
        let small = run_small(st(), c, 100_000);
        match (big, small) {
            (Ok((s1, r1)), RunOutcome::Done(s2, r2)) => {
                assert_eq!(s1, s2, "states diverged for {c:?}");
                assert_eq!(r1, r2, "rhos diverged for {c:?}");
            }
            (Err(e1), RunOutcome::Stuck(e2, _)) => {
                assert_eq!(e1, e2, "stuck reasons diverged for {c:?}");
            }
            (b, s) => panic!("big {b:?} vs small {s:?} for {c:?}"),
        }
    }

    #[test]
    fn agreement_on_straightline() {
        agree(&Cmd::seq_all([
            Cmd::Let("x".into(), Expr::num(3)),
            Cmd::Write("a".into(), Expr::num(0), Expr::var("x")),
            Cmd::Let(
                "y".into(),
                Expr::Bop(Bop::Mul, Box::new(Expr::var("x")), Box::new(Expr::num(2))),
            ),
        ]));
    }

    #[test]
    fn agreement_on_ordered() {
        agree(&Cmd::ordered_all([
            Cmd::Write("a".into(), Expr::num(0), Expr::num(1)),
            Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
            Cmd::Write("a".into(), Expr::num(1), Expr::var("x")),
        ]));
    }

    #[test]
    fn agreement_on_stuck_conflict() {
        agree(&Cmd::seq(
            Cmd::Expr(Expr::read("a", Expr::num(0))),
            Cmd::Expr(Expr::read("a", Expr::num(1))),
        ));
    }

    #[test]
    fn agreement_on_while() {
        let lt = |e, n| Expr::Bop(Bop::Lt, Box::new(e), Box::new(Expr::num(n)));
        agree(&Cmd::seq_all([
            Cmd::Let("i".into(), Expr::num(0)),
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::While(
                "t".into(),
                Box::new(Cmd::seq_all([
                    Cmd::Write("a".into(), Expr::var("i"), Expr::var("i")),
                    Cmd::Assign(
                        "i".into(),
                        Expr::Bop(Bop::Add, Box::new(Expr::var("i")), Box::new(Expr::num(1))),
                    ),
                    Cmd::Assign("t".into(), lt(Expr::var("i"), 4)),
                ])),
            ),
        ]));
    }

    #[test]
    fn ordered_rho_threading_is_visible() {
        // a[0] := 1 --- a[1] := 2 ; the final ρ is the union {a}.
        let c = Cmd::ordered(
            Cmd::Write("a".into(), Expr::num(0), Expr::num(1)),
            Cmd::Write("a".into(), Expr::num(1), Expr::num(2)),
        );
        match run_small(st(), &c, 1000) {
            RunOutcome::Done(s, r) => {
                assert_eq!(s.mems["a"][0], Val::Num(1));
                assert_eq!(s.mems["a"][1], Val::Num(2));
                assert!(r.contains("a"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn intermediate_form_appears() {
        let c = Cmd::ordered(Cmd::Skip, Cmd::Skip);
        match step_cmd(&st(), &Rho::new(), &c) {
            Step::Stepped(_, _, Cmd::OrderedRho(..)) => {}
            other => panic!("expected OrderedRho, got {other:?}"),
        }
    }

    #[test]
    fn divergence_detected() {
        // Every iteration nests the configuration one `~ρ~` level deeper,
        // so keep the fuel (and thus the term depth) modest.
        let c = Cmd::seq(
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::While("t".into(), Box::new(Cmd::Skip)),
        );
        assert_eq!(run_small(st(), &c, 300), RunOutcome::Diverged);
    }
}
