//! Abstract syntax of Filament, the core calculus of §4 (Fig. 6 and the
//! appendix grammar).
//!
//! Filament strips Dahlia down to the essence of time-sensitive affinity:
//! memories `a` are a fixed set of single-banked stores, ordered composition
//! is command juxtaposition `c1 c2`, and unordered composition is `c1 ; c2`.
//! The runtime form `c1 ~ρ~ c2` threads the memory-consumption context
//! through a partially executed ordered composition.

use std::collections::BTreeMap;
use std::fmt;

/// Primitive values `v ::= n | b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    /// Numbers (`bit⟨n⟩` values; widths are erased at runtime).
    Num(i64),
    /// Booleans.
    Bool(bool),
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Num(n) => write!(f, "{n}"),
            Val::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Binary operators (the calculus leaves `bop` abstract; we provide the
/// usual arithmetic, comparison, and boolean operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bop {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Lt,
    And,
    Or,
}

impl Bop {
    /// Apply the operator, if the operands have the right shapes.
    /// Returns `None` on a dynamic type error or division by zero — the
    /// checked semantics treats this as stuckness.
    pub fn apply(self, l: Val, r: Val) -> Option<Val> {
        use Bop::*;
        use Val::*;
        Some(match (self, l, r) {
            (Add, Num(a), Num(b)) => Num(a.wrapping_add(b)),
            (Sub, Num(a), Num(b)) => Num(a.wrapping_sub(b)),
            (Mul, Num(a), Num(b)) => Num(a.wrapping_mul(b)),
            (Div, Num(a), Num(b)) if b != 0 => Num(a / b),
            (Eq, Num(a), Num(b)) => Bool(a == b),
            (Eq, Bool(a), Bool(b)) => Bool(a == b),
            (Lt, Num(a), Num(b)) => Bool(a < b),
            (And, Bool(a), Bool(b)) => Bool(a && b),
            (Or, Bool(a), Bool(b)) => Bool(a || b),
            _ => return None,
        })
    }
}

/// Expressions `e ::= v | bop e1 e2 | x | a[e]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A value.
    Val(Val),
    /// Binary operation.
    Bop(Bop, Box<Expr>, Box<Expr>),
    /// Variable read.
    Var(String),
    /// Memory read `a[e]` — consumes the affine resource `a`.
    Read(String, Box<Expr>),
}

impl Expr {
    /// Convenience: a number literal.
    pub fn num(n: i64) -> Expr {
        Expr::Val(Val::Num(n))
    }

    /// Convenience: a boolean literal.
    pub fn boolean(b: bool) -> Expr {
        Expr::Val(Val::Bool(b))
    }

    /// Convenience: a variable.
    pub fn var(x: impl Into<String>) -> Expr {
        Expr::Var(x.into())
    }

    /// Convenience: a memory read.
    pub fn read(a: impl Into<String>, e: Expr) -> Expr {
        Expr::Read(a.into(), Box::new(e))
    }

    /// Is this expression a value?
    pub fn as_val(&self) -> Option<Val> {
        match self {
            Expr::Val(v) => Some(*v),
            _ => None,
        }
    }
}

/// The set ρ of memories the program has accessed in the current ordered
/// epoch.
pub type Rho = std::collections::BTreeSet<String>;

/// Commands (Fig. 6, extended with the runtime form `c1 ~ρ~ c2`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Bare expression.
    Expr(Expr),
    /// `let x = e`.
    Let(String, Expr),
    /// Ordered composition `c1 c2` (juxtaposition in the paper).
    Ordered(Box<Cmd>, Box<Cmd>),
    /// The intermediate runtime form `c1 ~ρ~ c2`: `c2` executes under the
    /// captured context ρ.
    OrderedRho(Box<Cmd>, Box<Cmd>, Rho),
    /// Unordered composition `c1 ; c2`.
    Seq(Box<Cmd>, Box<Cmd>),
    /// `if x c1 c2` — the condition is a *variable* (Fig. 6): conditions
    /// never consume memories, which is essential for the soundness of the
    /// `while` unfolding.
    If(String, Box<Cmd>, Box<Cmd>),
    /// `while x c` — condition restricted to a variable, as above.
    While(String, Box<Cmd>),
    /// `x := e`.
    Assign(String, Expr),
    /// `a[e1] := e2`.
    Write(String, Expr, Expr),
    /// `skip`.
    Skip,
}

impl Cmd {
    /// Ordered composition constructor.
    pub fn ordered(c1: Cmd, c2: Cmd) -> Cmd {
        Cmd::Ordered(Box::new(c1), Box::new(c2))
    }

    /// Unordered composition constructor.
    pub fn seq(c1: Cmd, c2: Cmd) -> Cmd {
        Cmd::Seq(Box::new(c1), Box::new(c2))
    }

    /// Chain many commands with unordered composition.
    pub fn seq_all(cs: impl IntoIterator<Item = Cmd>) -> Cmd {
        let mut it = cs.into_iter();
        let first = it.next().unwrap_or(Cmd::Skip);
        it.fold(first, Cmd::seq)
    }

    /// Chain many commands with ordered composition.
    pub fn ordered_all(cs: impl IntoIterator<Item = Cmd>) -> Cmd {
        let mut it = cs.into_iter();
        let first = it.next().unwrap_or(Cmd::Skip);
        it.fold(first, Cmd::ordered)
    }
}

/// Types `τ ::= bit⟨n⟩ | float | bool | mem τ[n]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// Fixed-width integers (width tracked but not enforced at runtime).
    Bit(u32),
    /// Booleans.
    Bool,
    /// A single-banked memory of `n` elements.
    Mem(Box<Ty>, u64),
}

/// A memory store: each memory maps indices to values.
pub type Store = BTreeMap<String, Vec<Val>>;

/// A variable environment.
pub type VarEnv = BTreeMap<String, Val>;

/// The machine state σ: variables and memories.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sigma {
    /// Variable bindings.
    pub vars: VarEnv,
    /// Memory contents.
    pub mems: Store,
}

impl Sigma {
    /// A state with the given memories, all zero-initialized.
    pub fn with_memories<'a>(mems: impl IntoIterator<Item = (&'a str, u64)>) -> Sigma {
        Sigma {
            vars: VarEnv::new(),
            mems: mems
                .into_iter()
                .map(|(name, n)| (name.to_string(), vec![Val::Num(0); n as usize]))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bop_apply() {
        assert_eq!(Bop::Add.apply(Val::Num(2), Val::Num(3)), Some(Val::Num(5)));
        assert_eq!(
            Bop::Lt.apply(Val::Num(2), Val::Num(3)),
            Some(Val::Bool(true))
        );
        assert_eq!(Bop::And.apply(Val::Bool(true), Val::Num(1)), None);
        assert_eq!(Bop::Div.apply(Val::Num(1), Val::Num(0)), None);
    }

    #[test]
    fn constructors() {
        let c = Cmd::seq_all([Cmd::Skip, Cmd::Skip, Cmd::Skip]);
        assert!(matches!(c, Cmd::Seq(_, _)));
        assert_eq!(Cmd::ordered_all([]), Cmd::Skip);
    }

    #[test]
    fn sigma_with_memories() {
        let s = Sigma::with_memories([("a", 4), ("b", 2)]);
        assert_eq!(s.mems["a"].len(), 4);
        assert_eq!(s.mems["b"][1], Val::Num(0));
    }
}
