//! The affine type system of §4.3 / Appendix A.
//!
//! Judgments have the form `Γ₁, Δ₁ ⊢ c ⊣ Γ₂, Δ₂`: Γ is the standard typing
//! context for variables and Δ the *affine* context of memories still
//! available in the current ordered epoch. Reads and writes remove a memory
//! from Δ; ordered composition checks both commands under the entry Δ and
//! intersects the results.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{Bop, Cmd, Expr, Rho, Ty, Val};

/// The variable typing context Γ.
pub type Gamma = BTreeMap<String, Ty>;

/// The affine memory context Δ: memories still available, with their types.
pub type Delta = BTreeMap<String, Ty>;

/// Why a Filament program failed to type-check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErr {
    /// Variable or memory not in context.
    Unbound(String),
    /// Memory not available in Δ (consumed earlier in this epoch).
    Consumed(String),
    /// Operand or annotation mismatch.
    Mismatch(String),
    /// `let` rebinding an existing variable.
    Rebound(String),
}

/// The checker carries the full memory set Δ* for re-checking runtime
/// configurations (`c1 ~ρ~ c2` needs ρ̄ = Δ* \ ρ).
#[derive(Debug, Clone)]
pub struct Checker {
    /// Δ*: every memory the program runs with.
    pub delta_star: Delta,
}

impl Checker {
    /// Build a checker for programs over the given memories.
    pub fn new(delta_star: Delta) -> Self {
        Checker { delta_star }
    }

    /// Convenience constructor from (name, length) pairs of `bit<32>`
    /// memories.
    pub fn with_memories<'a>(mems: impl IntoIterator<Item = (&'a str, u64)>) -> Self {
        Checker {
            delta_star: mems
                .into_iter()
                .map(|(n, len)| (n.to_string(), Ty::Mem(Box::new(Ty::Bit(32)), len)))
                .collect(),
        }
    }

    /// ρ̄: the memories of Δ* not consumed in ρ.
    pub fn rho_bar(&self, rho: &Rho) -> Delta {
        self.delta_star
            .iter()
            .filter(|(a, _)| !rho.contains(*a))
            .map(|(a, t)| (a.clone(), t.clone()))
            .collect()
    }

    /// `Γ, Δ₁ ⊢ e : τ ⊣ Δ₂`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeErr`] when no rule applies.
    pub fn check_expr(
        &self,
        gamma: &Gamma,
        delta: Delta,
        e: &Expr,
    ) -> Result<(Ty, Delta), TypeErr> {
        match e {
            Expr::Val(Val::Num(_)) => Ok((Ty::Bit(32), delta)),
            Expr::Val(Val::Bool(_)) => Ok((Ty::Bool, delta)),
            Expr::Var(x) => {
                let t = gamma
                    .get(x)
                    .ok_or_else(|| TypeErr::Unbound(x.clone()))?
                    .clone();
                Ok((t, delta))
            }
            Expr::Bop(op, e1, e2) => {
                let (t1, d2) = self.check_expr(gamma, delta, e1)?;
                let (t2, d3) = self.check_expr(gamma, d2, e2)?;
                let t = bop_type(*op, &t1, &t2)
                    .ok_or_else(|| TypeErr::Mismatch(format!("{op:?} on {t1:?} and {t2:?}")))?;
                Ok((t, d3))
            }
            Expr::Read(a, idx) => {
                let (ti, mut d2) = self.check_expr(gamma, delta, idx)?;
                if !matches!(ti, Ty::Bit(_)) {
                    return Err(TypeErr::Mismatch("memory index must be an integer".into()));
                }
                match d2.remove(a) {
                    Some(Ty::Mem(elem, _)) => Ok(((*elem).clone(), d2)),
                    Some(_) => Err(TypeErr::Mismatch(format!("`{a}` is not a memory"))),
                    None => {
                        if self.delta_star.contains_key(a) {
                            Err(TypeErr::Consumed(a.clone()))
                        } else {
                            Err(TypeErr::Unbound(a.clone()))
                        }
                    }
                }
            }
        }
    }

    /// `Γ₁, Δ₁ ⊢ c ⊣ Γ₂, Δ₂`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeErr`] when no rule applies.
    pub fn check_cmd(
        &self,
        gamma: Gamma,
        delta: Delta,
        c: &Cmd,
    ) -> Result<(Gamma, Delta), TypeErr> {
        match c {
            Cmd::Skip => Ok((gamma, delta)),
            Cmd::Expr(e) => {
                let (_, d2) = self.check_expr(&gamma, delta, e)?;
                Ok((gamma, d2))
            }
            Cmd::Let(x, e) => {
                let (t, d2) = self.check_expr(&gamma, delta, e)?;
                if gamma.contains_key(x) {
                    return Err(TypeErr::Rebound(x.clone()));
                }
                let mut g2 = gamma;
                g2.insert(x.clone(), t);
                Ok((g2, d2))
            }
            Cmd::Assign(x, e) => {
                let (t, d2) = self.check_expr(&gamma, delta, e)?;
                let tx = gamma.get(x).ok_or_else(|| TypeErr::Unbound(x.clone()))?;
                if !ty_compatible(tx, &t) {
                    return Err(TypeErr::Mismatch(format!("assign {t:?} to {tx:?}")));
                }
                Ok((gamma, d2))
            }
            Cmd::Write(a, e1, e2) => {
                let (t1, d2) = self.check_expr(&gamma, delta, e1)?;
                if !matches!(t1, Ty::Bit(_)) {
                    return Err(TypeErr::Mismatch("memory index must be an integer".into()));
                }
                let (t2, mut d3) = self.check_expr(&gamma, d2, e2)?;
                match d3.remove(a) {
                    Some(Ty::Mem(elem, _)) => {
                        if !ty_compatible(&elem, &t2) {
                            return Err(TypeErr::Mismatch(format!("store {t2:?} into {elem:?}[]")));
                        }
                        Ok((gamma, d3))
                    }
                    Some(_) => Err(TypeErr::Mismatch(format!("`{a}` is not a memory"))),
                    None => {
                        if self.delta_star.contains_key(a) {
                            Err(TypeErr::Consumed(a.clone()))
                        } else {
                            Err(TypeErr::Unbound(a.clone()))
                        }
                    }
                }
            }
            Cmd::Seq(c1, c2) => {
                let (g2, d2) = self.check_cmd(gamma, delta, c1)?;
                self.check_cmd(g2, d2, c2)
            }
            Cmd::Ordered(c1, c2) => {
                let (g2, d2) = self.check_cmd(gamma, delta.clone(), c1)?;
                let (g3, d3) = self.check_cmd(g2, delta, c2)?;
                Ok((g3, intersect(&d2, &d3)))
            }
            Cmd::OrderedRho(c1, c2, rho) => {
                let (g2, d2) = self.check_cmd(gamma, delta, c1)?;
                let (g3, d3) = self.check_cmd(g2, self.rho_bar(rho), c2)?;
                Ok((g3, intersect(&d2, &d3)))
            }
            Cmd::If(x, c1, c2) => {
                match gamma.get(x) {
                    Some(Ty::Bool) => {}
                    Some(t) => {
                        return Err(TypeErr::Mismatch(format!("`if` condition has type {t:?}")))
                    }
                    None => return Err(TypeErr::Unbound(x.clone())),
                }
                let (_, d3) = self.check_cmd(gamma.clone(), delta.clone(), c1)?;
                let (_, d4) = self.check_cmd(gamma.clone(), delta.clone(), c2)?;
                Ok((gamma, intersect(&intersect(&delta, &d3), &d4)))
            }
            Cmd::While(x, body) => {
                match gamma.get(x) {
                    Some(Ty::Bool) => {}
                    Some(t) => {
                        return Err(TypeErr::Mismatch(format!(
                            "`while` condition has type {t:?}"
                        )))
                    }
                    None => return Err(TypeErr::Unbound(x.clone())),
                }
                let (_, d3) = self.check_cmd(gamma.clone(), delta.clone(), body)?;
                Ok((gamma, intersect(&d3, &delta)))
            }
        }
    }

    /// Check a whole program: `∅, Δ* ⊢ c ⊣ Γ₂, Δ₂`.
    ///
    /// # Errors
    ///
    /// Returns [`TypeErr`] when the program violates the affine discipline.
    pub fn check(&self, c: &Cmd) -> Result<(Gamma, Delta), TypeErr> {
        self.check_cmd(Gamma::new(), self.delta_star.clone(), c)
    }
}

/// Result type of a binary operator, if the operands fit.
fn bop_type(op: Bop, t1: &Ty, t2: &Ty) -> Option<Ty> {
    use Bop::*;
    match op {
        Add | Sub | Mul | Div => match (t1, t2) {
            (Ty::Bit(a), Ty::Bit(b)) => Some(Ty::Bit(*a.max(b))),
            _ => None,
        },
        Lt => match (t1, t2) {
            (Ty::Bit(_), Ty::Bit(_)) => Some(Ty::Bool),
            _ => None,
        },
        Eq => match (t1, t2) {
            (Ty::Bit(_), Ty::Bit(_)) | (Ty::Bool, Ty::Bool) => Some(Ty::Bool),
            _ => None,
        },
        And | Or => match (t1, t2) {
            (Ty::Bool, Ty::Bool) => Some(Ty::Bool),
            _ => None,
        },
    }
}

/// Widths are advisory in the calculus: `bit<a> ~ bit<b>`.
fn ty_compatible(a: &Ty, b: &Ty) -> bool {
    matches!((a, b), (Ty::Bit(_), Ty::Bit(_)) | (Ty::Bool, Ty::Bool))
}

/// Δ₂ ∩ Δ₃ — the resources consumed by *neither* side.
fn intersect(a: &Delta, b: &Delta) -> Delta {
    a.iter()
        .filter(|(k, _)| b.contains_key(*k))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

/// Names of all memories a command mentions (used by test generators).
pub fn mems_mentioned(c: &Cmd) -> BTreeSet<String> {
    fn expr(e: &Expr, out: &mut BTreeSet<String>) {
        match e {
            Expr::Read(a, i) => {
                out.insert(a.clone());
                expr(i, out);
            }
            Expr::Bop(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            _ => {}
        }
    }
    fn cmd(c: &Cmd, out: &mut BTreeSet<String>) {
        match c {
            Cmd::Expr(e) | Cmd::Let(_, e) | Cmd::Assign(_, e) => expr(e, out),
            Cmd::Write(a, e1, e2) => {
                out.insert(a.clone());
                expr(e1, out);
                expr(e2, out);
            }
            Cmd::Seq(a, b) | Cmd::Ordered(a, b) => {
                cmd(a, out);
                cmd(b, out);
            }
            Cmd::OrderedRho(a, b, _) => {
                cmd(a, out);
                cmd(b, out);
            }
            Cmd::If(_, a, b) => {
                cmd(a, out);
                cmd(b, out);
            }
            Cmd::While(_, b) => cmd(b, out),
            Cmd::Skip => {}
        }
    }
    let mut out = BTreeSet::new();
    cmd(c, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck() -> Checker {
        Checker::with_memories([("a", 4), ("b", 4)])
    }

    #[test]
    fn read_removes_from_delta() {
        let c = Cmd::Let("x".into(), Expr::read("a", Expr::num(0)));
        let (_, d) = ck().check(&c).unwrap();
        assert!(!d.contains_key("a"));
        assert!(d.contains_key("b"));
    }

    #[test]
    fn double_read_rejected() {
        let c = Cmd::seq(
            Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
            Cmd::Let("y".into(), Expr::read("a", Expr::num(1))),
        );
        assert_eq!(ck().check(&c), Err(TypeErr::Consumed("a".into())));
    }

    #[test]
    fn ordered_restores_and_intersects() {
        let c = Cmd::ordered(
            Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
            Cmd::Write("a".into(), Expr::num(1), Expr::num(1)),
        );
        let (_, d) = ck().check(&c).unwrap();
        // Both steps consumed `a`; the intersection lost it, `b` remains.
        assert!(!d.contains_key("a"));
        assert!(d.contains_key("b"));
    }

    #[test]
    fn if_intersects_branches() {
        let c = Cmd::seq(
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::If(
                "t".into(),
                Box::new(Cmd::Write("a".into(), Expr::num(0), Expr::num(1))),
                Box::new(Cmd::Write("b".into(), Expr::num(0), Expr::num(1))),
            ),
        );
        let (_, d) = ck().check(&c).unwrap();
        assert!(
            d.is_empty(),
            "both a and b are conservatively consumed: {d:?}"
        );
    }

    #[test]
    fn while_body_checked_affinely() {
        let c = Cmd::seq_all([
            Cmd::Let("t".into(), Expr::boolean(true)),
            Cmd::While(
                "t".into(),
                Box::new(Cmd::seq(
                    Cmd::Let("x".into(), Expr::read("a", Expr::num(0))),
                    Cmd::Write("a".into(), Expr::num(0), Expr::num(1)),
                )),
            ),
        ]);
        assert_eq!(ck().check(&c), Err(TypeErr::Consumed("a".into())));
    }

    #[test]
    fn non_bool_condition_rejected() {
        let c = Cmd::seq(
            Cmd::Let("n".into(), Expr::num(1)),
            Cmd::If("n".into(), Box::new(Cmd::Skip), Box::new(Cmd::Skip)),
        );
        assert!(matches!(ck().check(&c), Err(TypeErr::Mismatch(_))));
    }

    #[test]
    fn let_rebinding_rejected() {
        let c = Cmd::seq(
            Cmd::Let("x".into(), Expr::num(1)),
            Cmd::Let("x".into(), Expr::num(2)),
        );
        assert_eq!(ck().check(&c), Err(TypeErr::Rebound("x".into())));
    }

    #[test]
    fn ordered_rho_uses_rho_bar() {
        // skip ~{a}~ (read a) must fail: a is consumed in the captured ρ.
        let mut rho = Rho::new();
        rho.insert("a".into());
        let c = Cmd::OrderedRho(
            Box::new(Cmd::Skip),
            Box::new(Cmd::Expr(Expr::read("a", Expr::num(0)))),
            rho,
        );
        assert_eq!(ck().check(&c), Err(TypeErr::Consumed("a".into())));
    }

    #[test]
    fn mems_mentioned_walks_everything() {
        let c = Cmd::ordered(
            Cmd::Write("a".into(), Expr::num(0), Expr::read("b", Expr::num(1))),
            Cmd::Skip,
        );
        let m = mems_mentioned(&c);
        assert!(m.contains("a") && m.contains("b"));
    }
}
