//! Executable soundness for Filament (§4.6).
//!
//! The paper proves: if `∅, Δ* ⊢ c ⊣ Γ₂, Δ₂` and `∅,∅,c →* σ,ρ,c′` and
//! `σ,ρ,c′ ↛`, then `c′ = skip`. These property tests check the theorem
//! (and its progress/preservation structure, and big-step/small-step
//! agreement) on thousands of generated programs.

use proptest::prelude::*;

use filament::bigstep;
use filament::smallstep::{run_small, step_cmd, RunOutcome, Step};
use filament::syntax::{Bop, Cmd, Expr, Rho, Sigma, Ty, Val};
use filament::typecheck::{Checker, Delta, Gamma};

const MEMS: [&str; 3] = ["m0", "m1", "m2"];
const MEM_LEN: u64 = 4;
// Small-step configurations of diverging `while` loops nest `~ρ~` forms one
// level deeper per iteration; the fuel bound keeps those stacks shallow.
const FUEL: u64 = 600;

fn sigma0() -> Sigma {
    Sigma::with_memories(MEMS.iter().map(|m| (*m, MEM_LEN)))
}

fn checker() -> Checker {
    Checker::with_memories(MEMS.iter().map(|m| (*m, MEM_LEN)))
}

/// The generated programs start from a prelude binding two integers and two
/// booleans, so variable references usually resolve.
fn prelude() -> Cmd {
    Cmd::seq_all([
        Cmd::Let("v0".into(), Expr::num(0)),
        Cmd::Let("v1".into(), Expr::num(2)),
        Cmd::Let("b0".into(), Expr::boolean(false)),
        Cmd::Let("b1".into(), Expr::boolean(true)),
    ])
}

fn int_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0..MEM_LEN as i64).prop_map(Expr::num),
        Just(Expr::var("v0")),
        Just(Expr::var("v1")),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        int_leaf(),
        Just(Expr::boolean(true)),
        Just(Expr::var("b0")),
        Just(Expr::var("b1")),
        // Memory reads with in-range or out-of-range indices.
        (prop::sample::select(&MEMS[..]), -1..(MEM_LEN as i64 + 1))
            .prop_map(|(m, i)| Expr::read(m, Expr::num(i))),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        (
            prop::sample::select(vec![
                Bop::Add,
                Bop::Sub,
                Bop::Mul,
                Bop::Lt,
                Bop::Eq,
                Bop::And,
                Bop::Or,
            ]),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::Bop(op, Box::new(a), Box::new(b)))
    })
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    let leaf = prop_oneof![
        Just(Cmd::Skip),
        expr_strategy().prop_map(Cmd::Expr),
        ("[xyz][01]", expr_strategy()).prop_map(|(x, e)| Cmd::Let(x, e)),
        (prop::sample::select(vec!["v0", "v1"]), int_leaf())
            .prop_map(|(x, e)| Cmd::Assign(x.into(), e)),
        (prop::sample::select(&MEMS[..]), int_leaf(), expr_strategy())
            .prop_map(|(m, i, e)| Cmd::Write(m.into(), i, e)),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cmd::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Cmd::ordered(a, b)),
            (
                prop::sample::select(vec!["b0", "b1", "v0"]),
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(x, a, b)| Cmd::If(x.into(), Box::new(a), Box::new(b))),
            // Loops over `b0` (initially false) terminate immediately unless
            // the body flips it — fuel handles the rest.
            (prop::sample::select(vec!["b0", "b1"]), inner)
                .prop_map(|(x, b)| Cmd::While(x.into(), Box::new(b))),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Cmd> {
    cmd_strategy().prop_map(|c| Cmd::seq(prelude(), c))
}

/// Γ reconstructed from σ (the appendix's "construction" relation).
fn gamma_of(sigma: &Sigma) -> Gamma {
    sigma
        .vars
        .iter()
        .map(|(k, v)| {
            (
                k.clone(),
                match v {
                    Val::Num(_) => Ty::Bit(32),
                    Val::Bool(_) => Ty::Bool,
                },
            )
        })
        .collect()
}

/// Δ reconstructed from ρ: the unconsumed part of Δ*.
fn delta_of(ck: &Checker, rho: &Rho) -> Delta {
    ck.rho_bar(rho)
}

/// The theorem concerns *memory conflicts*: a well-typed program never gets
/// stuck because `a ∈ ρ`. Value-level stuckness (an out-of-bounds index or
/// a division by zero) is outside the affine type system's remit — indices
/// are plain `bit<32>` in the calculus — and the generators deliberately
/// produce such programs to exercise big/small-step agreement on them.
fn is_conflict_stuckness(s: &filament::Stuck) -> bool {
    matches!(
        s,
        filament::Stuck::MemConsumed(_) | filament::Stuck::Unbound(_)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// **Soundness**: well-typed programs never get stuck on a memory
    /// conflict (or an unbound name).
    #[test]
    fn well_typed_programs_never_stick(c in program_strategy()) {
        let ck = checker();
        if ck.check(&c).is_ok() {
            match run_small(sigma0(), &c, FUEL) {
                RunOutcome::Done(..) | RunOutcome::Diverged => {}
                RunOutcome::Stuck(reason, at) => {
                    prop_assert!(
                        !is_conflict_stuckness(&reason),
                        "well-typed program hit a conflict: {:?}\nat: {:?}\nprogram: {:?}",
                        reason, at, c
                    );
                }
            }
        }
    }

    /// **Agreement**: the big-step and iterated small-step semantics compute
    /// the same final state, consumption context, and stuckness — for *all*
    /// programs, well-typed or not.
    #[test]
    fn big_step_and_small_step_agree(c in program_strategy()) {
        let mut fuel = FUEL;
        let big = bigstep::exec_cmd(sigma0(), Rho::new(), &c, &mut fuel);
        let small = run_small(sigma0(), &c, FUEL);
        match (big, small) {
            (Ok((s1, r1)), RunOutcome::Done(s2, r2)) => {
                prop_assert_eq!(s1, s2);
                prop_assert_eq!(r1, r2);
            }
            (Err(bigstep::Stuck::FuelExhausted), _) | (_, RunOutcome::Diverged) => {
                // Divergence: nothing to compare.
            }
            (Err(e1), RunOutcome::Stuck(e2, _)) => prop_assert_eq!(e1, e2),
            (b, s) => prop_assert!(false, "semantics disagree: big {:?} vs small {:?}", b, s),
        }
    }

    /// **Progress + preservation**: every intermediate configuration of a
    /// well-typed program re-typechecks under the Γ/Δ reconstructed from
    /// the current σ/ρ (Lemma 2's statement, checked step by step).
    ///
    /// Two value-level allowances, mirroring the scoping of the theorem:
    /// a `let` re-executed by a later loop iteration re-binds its variable
    /// (the paper's rule would demand alpha-renaming), and value-level
    /// stuckness (bounds, div-by-zero) is not a progress violation.
    #[test]
    fn preservation_along_traces(c in program_strategy()) {
        let ck = checker();
        if ck.check(&c).is_err() {
            return Ok(());
        }
        let mut state = (sigma0(), Rho::new(), c);
        for _ in 0..FUEL {
            match step_cmd(&state.0, &state.1, &state.2) {
                Step::Stepped(s, r, c2) => {
                    let g = gamma_of(&s);
                    let d = delta_of(&ck, &r);
                    match ck.check_cmd(g, d, &c2) {
                        Ok(_) | Err(filament::TypeErr::Rebound(_)) => {}
                        Err(e) => prop_assert!(false, "preservation violated ({:?}) at {:?}", e, c2),
                    }
                    state = (s, r, c2);
                }
                Step::Terminal => return Ok(()),
                Step::Stuck(reason, ..) => {
                    prop_assert!(
                        !is_conflict_stuckness(&reason),
                        "progress violated: {:?} at {:?}", reason, state.2
                    );
                    return Ok(());
                }
            }
        }
    }

    /// Ill-typed programs that *do* run fine exist (the checker is
    /// conservative), but programs the checker accepts must also satisfy
    /// the big-step checked semantics up to value-level stuckness.
    #[test]
    fn well_typed_programs_run_big_step(c in program_strategy()) {
        let ck = checker();
        if ck.check(&c).is_ok() {
            let mut fuel = FUEL;
            match bigstep::exec_cmd(sigma0(), Rho::new(), &c, &mut fuel) {
                Ok(_) | Err(bigstep::Stuck::FuelExhausted) => {}
                Err(e) => prop_assert!(
                    !is_conflict_stuckness(&e),
                    "big-step hit a conflict on a well-typed program: {:?}", e
                ),
            }
        }
    }
}

/// The checker is *not* complete: this ill-typed program runs fine (both
/// branches read the same memory, so only one read happens dynamically) —
/// a direct illustration of the conservativity the paper accepts.
#[test]
fn incompleteness_witness() {
    let c = Cmd::seq_all([
        Cmd::Let("t".into(), Expr::boolean(true)),
        Cmd::If(
            "t".into(),
            Box::new(Cmd::Expr(Expr::read("m0", Expr::num(0)))),
            Box::new(Cmd::Expr(Expr::read("m0", Expr::num(1)))),
        ),
        // After the if, Δ has conservatively lost m0 although only one
        // branch ran; reading m0 again is dynamically... a real conflict.
        // So instead read m1 — fine both ways.
        Cmd::Expr(Expr::read("m1", Expr::num(0))),
    ]);
    assert!(checker().check(&c).is_ok());
    assert!(bigstep::run(sigma0(), &c).is_ok());

    // And a genuinely conservative rejection: branches touch *different*
    // memories, the checker intersects them away, dynamics would be fine.
    let c2 = Cmd::seq_all([
        Cmd::Let("t".into(), Expr::boolean(true)),
        Cmd::If(
            "t".into(),
            Box::new(Cmd::Expr(Expr::read("m0", Expr::num(0)))),
            Box::new(Cmd::Expr(Expr::read("m1", Expr::num(1)))),
        ),
        Cmd::Expr(Expr::read("m1", Expr::num(0))),
    ]);
    assert!(
        checker().check(&c2).is_err(),
        "conservative rejection expected"
    );
    assert!(
        bigstep::run(sigma0(), &c2).is_ok(),
        "but it runs fine dynamically"
    );
}

/// Canonical stuck witness: the type system is the only thing standing
/// between the program and this stuck state.
#[test]
fn ill_typed_programs_can_stick() {
    let c = Cmd::seq(
        Cmd::Expr(Expr::read("m0", Expr::num(0))),
        Cmd::Expr(Expr::read("m0", Expr::num(1))),
    );
    assert!(checker().check(&c).is_err());
    match run_small(sigma0(), &c, FUEL) {
        RunOutcome::Stuck(filament::Stuck::MemConsumed(m), _) => assert_eq!(m, "m0"),
        other => panic!("expected stuckness, got {other:?}"),
    }
}
