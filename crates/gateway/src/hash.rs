//! Rendezvous (highest-random-weight) hashing over shard addresses,
//! with optional per-shard **weights** for heterogeneous clusters.
//!
//! Every request key — the request's **source digest** — scores each
//! shard independently ([`score`]); the request belongs to the live
//! shard with the highest score. Two properties make this the right
//! shape for a compile cluster:
//!
//! * **cache locality** — a given source always lands on the same
//!   shard while that shard is alive, so its warm artifacts live in
//!   exactly one place instead of being recomputed everywhere;
//! * **minimal disruption** — when a shard dies, only the keys it
//!   owned move (each to its second-choice shard); every other key
//!   keeps its owner, so a failure invalidates one shard's worth of
//!   locality, never the whole cluster's. When the shard returns, the
//!   same keys move straight back.
//!
//! Raw scores are 128-bit FNV digests over `(shard address, key)`, the
//! same stable hash the content-addressed store uses — deterministic
//! across processes, so an operator can predict placement offline.
//!
//! ## Weighted rendezvous
//!
//! Heterogeneous shards (one box with twice the cores or twice the
//! cache disk) want a proportionally larger share of the key space.
//! [`weighted_score`] implements the standard **logarithmic-score**
//! method: the raw 128-bit hash is mapped to a uniform `u ∈ (0, 1)`
//! and the shard's score is `weight / -ln(u)`. Each score is an
//! exponential draw with rate `1/weight`, so shard *i* wins a key with
//! probability `wᵢ / Σw` — exactly weight-proportional — while keeping
//! every rendezvous property: changing one shard's weight moves keys
//! only **to** it (weight raised) or only **off** it (weight lowered);
//! all other pairwise orders are untouched. With equal weights the
//! ranking coincides with the unweighted one, because the map from
//! hash to score is monotone.

use hls_sim::digest::Fnv;

/// The raw (unweighted) rendezvous score of `shard` for `key` (higher
/// wins).
pub fn score(key: u128, shard: &str) -> u128 {
    let mut h = Fnv::new();
    h.tag(b'g').str(shard).bytes(&key.to_le_bytes());
    h.finish()
}

/// The weighted rendezvous score of `shard` for `key` (higher wins):
/// `weight / -ln(u)` where `u ∈ (0, 1)` is the raw score scaled down.
/// Deterministic — the same `(key, shard, weight)` always produces the
/// same score, on every machine.
pub fn weighted_score(key: u128, shard: &str, weight: f64) -> f64 {
    // Top 53 bits of the raw digest → a uniform double in (0, 1).
    // The +0.5 offset keeps u strictly inside the open interval, so
    // ln(u) is finite and nonzero.
    let bits = (score(key, shard) >> 75) as u64; // 53 bits
    let u = (bits as f64 + 0.5) / (1u64 << 53) as f64;
    weight.max(f64::MIN_POSITIVE) / -u.ln()
}

/// Shard indices in descending preference order for `key`: the first
/// entry is the owner, the second is where the key fails over, and so
/// on. Ties (astronomically unlikely) break toward the lower index.
pub fn rank(key: u128, shards: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(score(key, &shards[i])));
    order
}

/// The preferred shard for `key` among those `alive` — `rank`'s first
/// surviving entry, without building the whole permutation.
pub fn owner(key: u128, shards: &[String], alive: impl Fn(usize) -> bool) -> Option<usize> {
    (0..shards.len())
        .filter(|&i| alive(i))
        .max_by_key(|&i| score(key, &shards[i]))
}

/// [`rank`] with per-shard weights: indices in descending
/// [`weighted_score`] order. A shard with twice the weight owns twice
/// the keys in expectation. Ties break toward the lower index.
pub fn weighted_rank<S: AsRef<str>>(key: u128, shards: &[(S, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    // Sort descending by score; f64 comparison is total here because
    // weighted_score never produces NaN (u is in (0,1), weight > 0).
    order.sort_by(|&a, &b| {
        weighted_score(key, shards[b].0.as_ref(), shards[b].1)
            .partial_cmp(&weighted_score(key, shards[a].0.as_ref(), shards[a].1))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// The preferred shard for `key` among weighted `shards` where `alive`
/// holds — [`weighted_rank`]'s first surviving entry without building
/// the whole permutation.
pub fn weighted_owner<S: AsRef<str>>(
    key: u128,
    shards: &[(S, f64)],
    alive: impl Fn(usize) -> bool,
) -> Option<usize> {
    (0..shards.len()).filter(|&i| alive(i)).max_by(|&a, &b| {
        weighted_score(key, shards[a].0.as_ref(), shards[a].1)
            .partial_cmp(&weighted_score(key, shards[b].0.as_ref(), shards[b].1))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.cmp(&a))
    })
}

/// Parse one `--shards` entry: `addr` or `addr=weight`. Weights must be
/// finite and positive; a bare address weighs 1.
pub fn parse_weighted(entry: &str) -> Result<(String, f64), String> {
    match entry.rsplit_once('=') {
        None => Ok((entry.to_string(), 1.0)),
        Some((addr, w)) => {
            let weight: f64 = w
                .parse()
                .map_err(|_| format!("bad shard weight `{w}` in `{entry}`"))?;
            if !weight.is_finite() || weight <= 0.0 {
                return Err(format!(
                    "shard weight must be finite and positive, got `{w}` in `{entry}`"
                ));
            }
            if addr.is_empty() {
                return Err(format!("empty shard address in `{entry}`"));
            }
            Ok((addr.to_string(), weight))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4500")).collect()
    }

    fn weighted(n: usize, w: impl Fn(usize) -> f64) -> Vec<(String, f64)> {
        (0..n).map(|i| (format!("10.0.0.{i}:4500"), w(i))).collect()
    }

    /// A cheap deterministic key stream.
    fn keys(n: usize) -> impl Iterator<Item = u128> {
        (0..n as u128).map(|i| {
            let mut h = Fnv::new();
            h.tag(b'k').bytes(&i.to_le_bytes());
            h.finish()
        })
    }

    #[test]
    fn rank_is_a_permutation_and_owner_is_its_head() {
        let s = shards(5);
        for key in keys(200) {
            let mut r = rank(key, &s);
            assert_eq!(r[0], owner(key, &s, |_| true).unwrap());
            r.sort_unstable();
            assert_eq!(r, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let s = shards(4);
        let n = 4000;
        let mut counts = [0usize; 4];
        for key in keys(n) {
            counts[owner(key, &s, |_| true).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Expected 1000 per shard; FNV should stay well inside ±40%.
            assert!((600..=1400).contains(&c), "shard {i} got {c}/{n}");
        }
    }

    #[test]
    fn keys_move_only_off_the_dead_shard() {
        let s = shards(4);
        for dead in 0..4 {
            for key in keys(500) {
                let before = owner(key, &s, |_| true).unwrap();
                let after = owner(key, &s, |i| i != dead).unwrap();
                if before == dead {
                    // Displaced keys land on their second choice…
                    assert_eq!(after, rank(key, &s)[1]);
                } else {
                    // …and everyone else stays put.
                    assert_eq!(after, before);
                }
            }
        }
    }

    #[test]
    fn placement_is_stable_under_shard_list_extension() {
        // Adding a shard only *steals* keys for the new shard; it never
        // shuffles keys between existing shards.
        let four = shards(4);
        let five = shards(5);
        for key in keys(500) {
            let a = owner(key, &four, |_| true).unwrap();
            let b = owner(key, &five, |_| true).unwrap();
            assert!(b == a || b == 4, "key moved between old shards: {a}→{b}");
        }
    }

    #[test]
    fn equal_weights_agree_with_the_unweighted_ranking() {
        // The hash→score map is monotone, so weight-1 rendezvous must
        // reproduce the raw ordering exactly.
        let s = shards(5);
        let w = weighted(5, |_| 1.0);
        for key in keys(300) {
            assert_eq!(rank(key, &s), weighted_rank(key, &w));
            assert_eq!(owner(key, &s, |_| true), weighted_owner(key, &w, |_| true));
        }
    }

    #[test]
    fn double_weight_owns_roughly_double_the_keys() {
        // Weights 2:1:1 over 4000 keys: the heavy shard expects 1/2 of
        // what two light shards get combined — i.e. 2000 · (2/4).
        let w = weighted(3, |i| if i == 0 { 2.0 } else { 1.0 });
        let n = 4000;
        let mut counts = [0usize; 3];
        for key in keys(n) {
            counts[weighted_owner(key, &w, |_| true).unwrap()] += 1;
        }
        // Heavy shard expects 2000, light ones 1000 each; ±20%.
        assert!(
            (1600..=2400).contains(&counts[0]),
            "heavy shard got {counts:?}"
        );
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!((800..=1200).contains(&c), "light shard {i} got {counts:?}");
        }
    }

    #[test]
    fn parse_weighted_accepts_bare_and_weighted_entries() {
        assert_eq!(
            parse_weighted("10.0.0.1:4500").unwrap(),
            ("10.0.0.1:4500".to_string(), 1.0)
        );
        assert_eq!(
            parse_weighted("10.0.0.1:4500=2.5").unwrap(),
            ("10.0.0.1:4500".to_string(), 2.5)
        );
        assert!(parse_weighted("10.0.0.1:4500=zero").is_err());
        assert!(parse_weighted("10.0.0.1:4500=0").is_err());
        assert!(parse_weighted("10.0.0.1:4500=-1").is_err());
        assert!(parse_weighted("10.0.0.1:4500=inf").is_err());
        assert!(parse_weighted("=2").is_err());
    }
}
