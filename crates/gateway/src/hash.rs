//! Rendezvous (highest-random-weight) hashing over shard addresses.
//!
//! Every request key — the request's **source digest** — scores each
//! shard independently ([`score`]); the request belongs to the live
//! shard with the highest score. Two properties make this the right
//! shape for a compile cluster:
//!
//! * **cache locality** — a given source always lands on the same
//!   shard while that shard is alive, so its warm artifacts live in
//!   exactly one place instead of being recomputed everywhere;
//! * **minimal disruption** — when a shard dies, only the keys it
//!   owned move (each to its second-choice shard); every other key
//!   keeps its owner, so a failure invalidates one shard's worth of
//!   locality, never the whole cluster's. When the shard returns, the
//!   same keys move straight back.
//!
//! Scores are 128-bit FNV digests over `(shard address, key)`, the
//! same stable hash the content-addressed store uses — deterministic
//! across processes, so an operator can predict placement offline.

use hls_sim::digest::Fnv;

/// The rendezvous score of `shard` for `key` (higher wins).
pub fn score(key: u128, shard: &str) -> u128 {
    let mut h = Fnv::new();
    h.tag(b'g').str(shard).bytes(&key.to_le_bytes());
    h.finish()
}

/// Shard indices in descending preference order for `key`: the first
/// entry is the owner, the second is where the key fails over, and so
/// on. Ties (astronomically unlikely) break toward the lower index.
pub fn rank(key: u128, shards: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(score(key, &shards[i])));
    order
}

/// The preferred shard for `key` among those `alive` — `rank`'s first
/// surviving entry, without building the whole permutation.
pub fn owner(key: u128, shards: &[String], alive: impl Fn(usize) -> bool) -> Option<usize> {
    (0..shards.len())
        .filter(|&i| alive(i))
        .max_by_key(|&i| score(key, &shards[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4500")).collect()
    }

    /// A cheap deterministic key stream.
    fn keys(n: usize) -> impl Iterator<Item = u128> {
        (0..n as u128).map(|i| {
            let mut h = Fnv::new();
            h.tag(b'k').bytes(&i.to_le_bytes());
            h.finish()
        })
    }

    #[test]
    fn rank_is_a_permutation_and_owner_is_its_head() {
        let s = shards(5);
        for key in keys(200) {
            let mut r = rank(key, &s);
            assert_eq!(r[0], owner(key, &s, |_| true).unwrap());
            r.sort_unstable();
            assert_eq!(r, (0..5).collect::<Vec<_>>());
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let s = shards(4);
        let n = 4000;
        let mut counts = [0usize; 4];
        for key in keys(n) {
            counts[owner(key, &s, |_| true).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Expected 1000 per shard; FNV should stay well inside ±40%.
            assert!((600..=1400).contains(&c), "shard {i} got {c}/{n}");
        }
    }

    #[test]
    fn keys_move_only_off_the_dead_shard() {
        let s = shards(4);
        for dead in 0..4 {
            for key in keys(500) {
                let before = owner(key, &s, |_| true).unwrap();
                let after = owner(key, &s, |i| i != dead).unwrap();
                if before == dead {
                    // Displaced keys land on their second choice…
                    assert_eq!(after, rank(key, &s)[1]);
                } else {
                    // …and everyone else stays put.
                    assert_eq!(after, before);
                }
            }
        }
    }

    #[test]
    fn placement_is_stable_under_shard_list_extension() {
        // Adding a shard only *steals* keys for the new shard; it never
        // shuffles keys between existing shards.
        let four = shards(4);
        let five = shards(5);
        for key in keys(500) {
            let a = owner(key, &four, |_| true).unwrap();
            let b = owner(key, &five, |_| true).unwrap();
            assert!(b == a || b == 4, "key moved between old shards: {a}→{b}");
        }
    }
}
