//! Warm-key ledger persistence.
//!
//! The drain migrator walks an in-memory ledger of which sources this
//! gateway routed to which shard. That ledger dies with the process,
//! so a restarted gateway forgets the cluster's heat map: the next
//! drain has nothing to walk, and every key's first touch after the
//! restart may recompute on a shard whose replica was already warm.
//! With `--telemetry-dir` the ledger is checkpointed here on every
//! sampler tick (and at shutdown) and reloaded at build, so a gateway
//! restart keeps routing hot keys to warm shards.
//!
//! Format: a `{"ledger":1}` header line, then one JSON line per warm
//! key — `{"shard":addr,"req":{wire request}}` — written whole-file
//! atomic (temp file + rename), the same discipline as the artifact
//! store. Loads are best-effort by construction: a missing file, a
//! foreign header, or a line that no longer parses degrades to an
//! empty (or shorter) ledger, never an error — the cost is one
//! recompute per lost key, exactly the contract the in-memory ledger's
//! FIFO bound already set.

use std::io::Write;
use std::path::Path;

use dahlia_server::json::{obj, Json};
use dahlia_server::Request;

/// Ledger format version: files with any other header read as empty.
const LEDGER_VERSION: u64 = 1;

/// The checkpoint file name under the telemetry directory.
pub(crate) const LEDGER_FILE: &str = "warm-keys.jsonl";

/// Checkpoint `(shard addr, request)` pairs. Atomic: readers (and a
/// crash mid-write) see the previous complete file or the new one,
/// never a torn mix.
pub(crate) fn save(path: &Path, entries: &[(String, Request)]) -> std::io::Result<()> {
    let mut text = obj([("ledger", Json::Num(LEDGER_VERSION as f64))]).emit();
    text.push('\n');
    for (shard, req) in entries {
        text.push_str(&obj([("shard", Json::Str(shard.clone())), ("req", req.to_json())]).emit());
        text.push('\n');
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a checkpoint back. Never errors: anything unreadable —
/// missing file, version skew, a corrupt or truncated line — is
/// dropped and the survivors are returned.
pub(crate) fn load(path: &Path) -> Vec<(String, Request)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    let versioned = lines
        .next()
        .and_then(|header| Json::parse(header).ok())
        .and_then(|h| h.get("ledger").and_then(Json::as_u64))
        == Some(LEDGER_VERSION);
    if !versioned {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        let Ok(v) = Json::parse(line) else { continue };
        let Some(shard) = v.get("shard").and_then(Json::as_str) else {
            continue;
        };
        let Some(req) = v
            .get("req")
            .and_then(|r| Request::from_json(r, i as u64).ok())
        else {
            continue;
        };
        out.push((shard.to_string(), req));
    }
    out
}
