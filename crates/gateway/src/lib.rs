//! # dahlia-gateway
//!
//! A sharded, fault-tolerant, **highly available** cluster front-end
//! for the Dahlia compile service. The pipeline is a deterministic
//! function of the source text — which is what made content-addressed
//! caching and a persistent networked server possible, and it is also
//! exactly what makes the service *shardable*: any replica can answer
//! any request, so the only interesting question is where each
//! request's warm cache should live. The gateway answers it with
//! **weighted rendezvous hashing on the source digest** ([`hash`]):
//! every source is pinned to one shard while that shard is alive, so
//! sweeps and repeated traffic hit warm caches instead of recompiling
//! on whichever replica the load balancer picked.
//!
//! ## Architecture
//!
//! ```text
//!                    ┌────────────────────────┐   pooled, pipelined
//!  clients ──TCP──►  │  Gateway (SessionHost) │ ──TCP──► shard a1 (dahliac serve --listen)
//!  (dahliac batch)   │  · rendezvous router   │ ──TCP──► shard a2
//!                    │  · replication fan-out │ ──TCP──► shard a3
//!                    │  · drain/join admin    │
//!                    │  · health checker      │
//!                    │  · local fallback      │
//!                    └────────────────────────┘
//! ```
//!
//! * One [`PipelinedClient`] per shard multiplexes every in-flight
//!   request over a single TCP session, correlated by wire id.
//! * **Replication** ([`GatewayConfig::replication`], default 1):
//!   every newly computed artifact fans out to the top-N shards in
//!   rendezvous order, so killing the primary serves warm artifacts
//!   from the secondary without recomputing a single pipeline stage.
//! * **Draining** ([`Gateway::drain`], or the `{"op":"drain"}` wire
//!   op): a draining shard stops receiving new keys, finishes its
//!   in-flight work, and a background task walks its warm keys through
//!   the surviving replica set — a rolling restart costs zero failed
//!   requests. [`Gateway::undrain`] re-activates it, or **joins** an
//!   address the topology has never seen (live re-sharding).
//! * A background health checker pings live shards and re-dials dead
//!   ones; a failed request poisons its shard's client immediately, so
//!   in-flight *and* future requests re-route to the next shard in
//!   rendezvous order without waiting for the next health tick.
//! * When no shard is reachable the gateway compiles **locally** in an
//!   embedded [`Server`] — an empty cluster degrades to PR 2's single
//!   process, never to an outage.
//!
//! The gateway is itself a [`SessionHost`], so
//! [`dahlia_server::serve_sessions`] gives it the same TCP front end,
//! graceful shutdown, and pipelined session semantics as `dahliac
//! serve` — clients cannot tell a gateway from a server, which is the
//! point.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dahlia_gateway::GatewayConfig;
//! use dahlia_server::{Request, Stage};
//!
//! let gw = GatewayConfig::new(["10.0.0.1:4500", "10.0.0.2:4500"])
//!     .replication(2)
//!     .build();
//! let resp = gw.submit(&Request::new("r1", Stage::Estimate, "let x = 1;", "k"));
//! assert!(resp.get("id").is_some());
//! ```

#![warn(missing_docs)]

pub mod hash;
mod ledger;
mod sweep;

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use dahlia_obs::{
    AlertEngine, Clock, Journal, Sampler, SlowLog, Span, TraceEntry, Tsdb, WallClock, Window,
};
use dahlia_server::json::{obj, Json};
use dahlia_server::{
    obs_json, parse_alert_rules, source_digest, AdminOp, PipelinedClient, Pool, Request, Server,
    SessionHost, Stage, SweepOp, ALERT_JOURNAL_CAP, DEFAULT_SLOW_THRESHOLD_MS,
    DEFAULT_TELEMETRY_INTERVAL_MS, SLOWLOG_CAP, TRACE_JOURNAL_CAP,
};

/// Bound on the per-shard warm-key ledger the drain migrator walks.
/// Oldest entries fall off first; a dropped entry costs one recompute
/// after a drain, never a wrong answer.
const WARM_KEY_CAP: usize = 8192;

/// Byte bound on the sources retained in one shard's warm-key ledger
/// (the ledger clones each request, source text included).
const WARM_KEY_MAX_BYTES: usize = 64 << 20;

/// Default bound on the gateway's hot-source admission cache (entries).
pub const DEFAULT_ADMISSION_CACHE: usize = 2048;

/// Byte bound on the response bodies retained in the admission cache —
/// estimates are small, but lowered-artifact responses carry the full
/// lowered program text.
const ADMISSION_CACHE_MAX_BYTES: usize = 64 << 20;

/// Configuration for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    shards: Vec<(String, f64)>,
    replication: usize,
    threads: Option<usize>,
    health_interval: Duration,
    connect_timeout: Duration,
    io_timeout: Duration,
    trace_journal: usize,
    slow_threshold_ms: u64,
    telemetry_dir: Option<PathBuf>,
    telemetry_interval_ms: u64,
    alert_rules: Vec<String>,
    auto_drain_after: u64,
    wire_max: u32,
    admission_cache: usize,
}

impl GatewayConfig {
    /// A gateway over the given shard addresses (each a `dahliac serve
    /// --listen` endpoint), all with rendezvous weight 1. An empty
    /// list is legal: every request then falls back to local
    /// compilation.
    pub fn new<S: Into<String>>(shards: impl IntoIterator<Item = S>) -> GatewayConfig {
        GatewayConfig::new_weighted(shards.into_iter().map(|s| (s.into(), 1.0)))
    }

    /// A gateway over weighted shard addresses: a shard with twice the
    /// weight owns twice the key space in expectation (see
    /// [`hash::weighted_score`]). Weights must be finite and positive.
    pub fn new_weighted(shards: impl IntoIterator<Item = (String, f64)>) -> GatewayConfig {
        GatewayConfig {
            shards: shards.into_iter().collect(),
            replication: 1,
            threads: None,
            health_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(1000),
            io_timeout: Duration::from_secs(30),
            trace_journal: TRACE_JOURNAL_CAP,
            slow_threshold_ms: DEFAULT_SLOW_THRESHOLD_MS,
            telemetry_dir: None,
            telemetry_interval_ms: DEFAULT_TELEMETRY_INTERVAL_MS,
            alert_rules: Vec::new(),
            auto_drain_after: 0,
            wire_max: dahlia_server::wire::WIRE_VERSION as u32,
            admission_cache: DEFAULT_ADMISSION_CACHE,
        }
    }

    /// Replication factor (default 1): every newly computed artifact
    /// fans out to the first `n` live shards in rendezvous order, so
    /// any of them can serve the key warm when the primary dies.
    /// Clamped to at least 1; values beyond the shard count behave as
    /// "replicate everywhere".
    pub fn replication(mut self, n: usize) -> GatewayConfig {
        self.replication = n.max(1);
        self
    }

    /// Size of the gateway's dispatch pool (defaults to four slots per
    /// shard, clamped to 4..=32). Dispatch threads spend their lives
    /// blocked on shard I/O, so this bounds in-flight requests, not CPU.
    pub fn threads(mut self, n: usize) -> GatewayConfig {
        self.threads = Some(n.max(1));
        self
    }

    /// How often the health checker pings live shards and re-dials
    /// dead ones.
    pub fn health_interval(mut self, d: Duration) -> GatewayConfig {
        self.health_interval = d;
        self
    }

    /// Bound on each shard connection attempt.
    pub fn connect_timeout(mut self, d: Duration) -> GatewayConfig {
        self.connect_timeout = d;
        self
    }

    /// Retention of the gateway's own trace journal (the `{"op":
    /// "trace"}` ring buffer of combined gateway + shard span lists).
    /// Clamped to at least 1.
    pub fn trace_journal(mut self, cap: usize) -> GatewayConfig {
        self.trace_journal = cap.max(1);
        self
    }

    /// Slow-request capture threshold, milliseconds: a routed request
    /// whose gateway-observed wall latency exceeds this lands in the
    /// gateway's slow log with its span breakdown (shard attempts,
    /// fail-overs, local fallback — plus the shard's own stage spans
    /// when the request was traced). Zero captures everything
    /// measurable, which is what benches and tests want.
    pub fn slow_threshold_ms(mut self, ms: u64) -> GatewayConfig {
        self.slow_threshold_ms = ms;
        self
    }

    /// Bound on each in-flight shard call: a shard that stops
    /// answering (stopped process, silent partition — its TCP session
    /// stays up) is declared dead after this long, releasing its
    /// in-flight requests to re-route. Must exceed the slowest
    /// legitimate compile.
    pub fn io_timeout(mut self, d: Duration) -> GatewayConfig {
        self.io_timeout = d;
        self
    }

    /// Persist cluster telemetry under `dir` (created on demand): the
    /// crash-safe on-disk sample ring the `{"op":"history"}` control
    /// line answers from, plus the warm-key ledger checkpoint that
    /// lets a restarted gateway keep routing hot keys to warm shards.
    pub fn telemetry_dir(mut self, dir: impl Into<PathBuf>) -> GatewayConfig {
        self.telemetry_dir = Some(dir.into());
        self
    }

    /// Sample (and evaluate alert rules) every `ms` milliseconds
    /// instead of the default [`DEFAULT_TELEMETRY_INTERVAL_MS`].
    /// Clamped to at least 1ms.
    pub fn telemetry_interval_ms(mut self, ms: u64) -> GatewayConfig {
        self.telemetry_interval_ms = ms;
        self
    }

    /// Add a declarative alert rule (`gateway.shards_dead >= 1 for 5s
    /// -> drain`). Repeatable; bad grammar fails
    /// [`GatewayConfig::try_build`] with `InvalidInput`. A rule whose
    /// action is `drain` additionally triggers the auto-drain
    /// remediation when it fires.
    pub fn alert_rule(mut self, rule: impl Into<String>) -> GatewayConfig {
        self.alert_rules.push(rule.into());
        self
    }

    /// Auto-drain remediation: drain a shard after `n` consecutive
    /// health-check failures (0, the default, disables it). The last
    /// live shard is never drained, and each drain lands in the alert
    /// journal and the per-shard `auto_drained` counter.
    pub fn auto_drain_after(mut self, n: u64) -> GatewayConfig {
        self.auto_drain_after = n;
        self
    }

    /// Highest wire protocol version to negotiate on shard connections
    /// (default: the newest this build speaks). `0` pins the gateway →
    /// shard hop to the v0 JSON-lines protocol — the knob mixed-version
    /// rollouts and the bench baseline mode use.
    pub fn wire_max(mut self, v: u32) -> GatewayConfig {
        self.wire_max = v;
        self
    }

    /// Entry bound on the gateway's hot-source admission cache
    /// (default [`DEFAULT_ADMISSION_CACHE`]): successful, untraced
    /// responses are retained keyed by `(source, stage, options)`
    /// digest, and a repeat of a hot request is answered at the
    /// gateway without touching a shard. `0` disables the cache.
    pub fn admission_cache(mut self, entries: usize) -> GatewayConfig {
        self.admission_cache = entries;
        self
    }

    /// Build the gateway: dial every shard (concurrently, best-effort)
    /// and start the health checker.
    ///
    /// Panics if the telemetry directory cannot be opened or an alert
    /// rule does not parse — use [`GatewayConfig::try_build`] to
    /// surface those as errors (the CLI does).
    pub fn build(self) -> Gateway {
        self.try_build().expect("gateway telemetry configuration")
    }

    /// [`GatewayConfig::build`], with telemetry/alert configuration
    /// errors reported instead of panicking.
    pub fn try_build(self) -> std::io::Result<Gateway> {
        let rules = parse_alert_rules(&self.alert_rules)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let tsdb = match &self.telemetry_dir {
            Some(dir) => Some(Arc::new(Tsdb::open(dir)?)),
            None => None,
        };
        let ledger_path = self
            .telemetry_dir
            .as_ref()
            .map(|dir| dir.join(ledger::LEDGER_FILE));
        // Alert timestamps and on-disk sample timestamps share a wall
        // clock so history cursors stay meaningful across restarts.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let engine = Arc::new(AlertEngine::new(
            rules,
            Arc::clone(&clock),
            ALERT_JOURNAL_CAP,
        ));
        let threads = self
            .threads
            .unwrap_or_else(|| (self.shards.len() * 4).clamp(4, 32));
        let inner = Arc::new(GwInner {
            topology: RwLock::new(
                self.shards
                    .iter()
                    .map(|(addr, weight)| {
                        Arc::new(Shard::new(
                            addr.clone(),
                            *weight,
                            self.connect_timeout,
                            self.io_timeout,
                            self.wire_max,
                        ))
                    })
                    .collect(),
            ),
            replication: self.replication,
            connect_timeout: self.connect_timeout,
            io_timeout: self.io_timeout,
            wire_max: self.wire_max,
            admission: Mutex::new(AdmissionCache::new(self.admission_cache)),
            admission_hits: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            replica_writes: AtomicU64::new(0),
            replica_failures: AtomicU64::new(0),
            local_fallbacks: AtomicU64::new(0),
            journal: Journal::new(self.trace_journal),
            window: Window::with_default_clock(),
            in_flight: AtomicU64::new(0),
            slowlog: SlowLog::new(SLOWLOG_CAP),
            slow_threshold_us: self.slow_threshold_ms.saturating_mul(1_000),
            local: OnceLock::new(),
            pool: Pool::new(threads),
            tsdb,
            engine,
            clock,
            auto_drain_after: self.auto_drain_after,
            ledger_path,
            telemetry_dir: self.telemetry_dir.clone(),
            sweeps: sweep::SweepCounters::default(),
        });
        // Rehydrate the warm-key ledger from the last checkpoint (an
        // unreadable file reads as empty) so drains after a gateway
        // restart still know where the heat lives.
        if let Some(path) = &inner.ledger_path {
            for (addr, req) in ledger::load(path) {
                if let Some(shard) = inner.find(&addr) {
                    shard.record_warm(source_digest(&req.source), &req);
                }
            }
        }
        // Initial dial, in parallel: one dead address must not make
        // every other shard wait out its connect timeout.
        {
            let topo = inner.topology.read().unwrap();
            std::thread::scope(|s| {
                for shard in topo.iter() {
                    s.spawn(|| {
                        shard.connect();
                    });
                }
            });
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let t_inner = Arc::clone(&inner);
        let t_stop = Arc::clone(&stop);
        let interval = self.health_interval;
        let checker = std::thread::Builder::new()
            .name("dahlia-gateway-health".into())
            .spawn(move || loop {
                {
                    let (lock, cv) = &*t_stop;
                    let stopped = cv
                        .wait_timeout_while(lock.lock().unwrap(), interval, |stop| !*stop)
                        .unwrap()
                        .0;
                    if *stopped {
                        return;
                    }
                }
                t_inner.health_pass();
            })
            .ok();
        let sampler = (inner.tsdb.is_some() || inner.engine.rule_count() > 0).then(|| {
            let t_inner = Arc::clone(&inner);
            Sampler::spawn(self.telemetry_interval_ms.max(1), move || {
                t_inner.telemetry_tick()
            })
        });
        Ok(Gateway {
            inner,
            stop,
            checker,
            _sampler: sampler,
        })
    }
}

/// The warm-key ledger of one shard: every source this gateway routed
/// there, so a drain can re-home the shard's working set. Bounded FIFO
/// by entry count ([`WARM_KEY_CAP`]) *and* by retained source bytes
/// ([`WARM_KEY_MAX_BYTES`]) — large-program workloads must not turn
/// drain bookkeeping into a memory leak.
struct WarmKeys {
    map: HashMap<u128, Request>,
    order: VecDeque<u128>,
    bytes: usize,
}

impl WarmKeys {
    fn new() -> WarmKeys {
        WarmKeys {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
        }
    }

    fn record(&mut self, key: u128, req: &Request) {
        // Migration replays are bookkeeping, not client traffic: strip
        // the trace id so a drain walk doesn't flood shard journals.
        let mut stored = req.clone();
        stored.trace = None;
        if self.map.insert(key, stored).is_none() {
            self.order.push_back(key);
            self.bytes += req.source.len();
            while self.order.len() > WARM_KEY_CAP || self.bytes > WARM_KEY_MAX_BYTES {
                let Some(old) = self.order.pop_front() else {
                    break;
                };
                if let Some(dropped) = self.map.remove(&old) {
                    self.bytes -= dropped.source.len();
                }
            }
        }
    }

    fn take_all(&mut self) -> Vec<Request> {
        self.order.clear();
        self.bytes = 0;
        self.map.drain().map(|(_, req)| req).collect()
    }

    /// A snapshot of the retained requests in insertion order, for the
    /// on-disk ledger checkpoint.
    fn entries(&self) -> Vec<Request> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).cloned())
            .collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Whether a routed response may be retained by the admission cache:
/// success, or a deterministic front-end rejection — the same source
/// draws the same `lex`/`parse`/`check` verdict forever, and a design
/// sweep asks about the rejected bulk of its space over and over.
/// Infrastructure failures (`internal`, `protocol`, transport
/// fallbacks) must always re-route.
fn admission_cacheable(resp: &Json) -> bool {
    match resp.get("ok").and_then(Json::as_bool) {
        Some(true) => true,
        _ => matches!(
            resp.get("error")
                .and_then(|e| e.get("phase"))
                .and_then(Json::as_str),
            Some("lex" | "parse" | "check")
        ),
    }
}

/// The gateway's hot-source admission cache: successful (or
/// deterministically rejected — see [`admission_cacheable`]), untraced
/// responses keyed by the same `(source, stage, options)` digest
/// triple the shards' own stores use. Bounded FIFO by entry count and
/// by retained response bytes; a hit is re-stamped with the caller's
/// id and `cached: true`, the same shape a shard-side warm hit has.
struct AdmissionCache {
    cap: usize,
    map: HashMap<(u128, Stage, u128), (Json, usize)>,
    order: VecDeque<(u128, Stage, u128)>,
    bytes: usize,
}

impl AdmissionCache {
    fn new(cap: usize) -> AdmissionCache {
        AdmissionCache {
            cap,
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
        }
    }

    fn get(&self, key: &(u128, Stage, u128)) -> Option<Json> {
        self.map.get(key).map(|(resp, _)| resp.clone())
    }

    fn insert(&mut self, key: (u128, Stage, u128), resp: &Json) {
        if self.cap == 0 {
            return;
        }
        let size = resp.emit().len();
        match self.map.insert(key, (resp.clone(), size)) {
            None => {
                self.order.push_back(key);
                self.bytes += size;
                while self.order.len() > self.cap || self.bytes > ADMISSION_CACHE_MAX_BYTES {
                    let Some(old) = self.order.pop_front() else {
                        break;
                    };
                    if let Some((_, dropped)) = self.map.remove(&old) {
                        self.bytes -= dropped;
                    }
                }
            }
            // Same key re-inserted (two concurrent cold misses): keep
            // the order entry, swap the byte accounting.
            Some((_, old_size)) => self.bytes = self.bytes - old_size + size,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// One backend shard: its address, rendezvous weight, pooled
/// connection, drain state, and routing counters.
struct Shard {
    addr: String,
    /// Rendezvous weight, as f64 bits — atomic so `undrain` can
    /// re-weight a live shard without a topology write lock.
    weight: AtomicU64,
    connect_timeout: Duration,
    io_timeout: Duration,
    /// Highest wire version to offer when dialling (0 pins v0).
    wire_max: u32,
    client: Mutex<Option<Arc<PipelinedClient>>>,
    /// Draining shards receive no new keys; in-flight work completes.
    draining: AtomicBool,
    /// Requests dispatched to this shard (including ones that failed).
    routed: AtomicU64,
    /// Dispatches that failed here (connection died mid-call).
    failed: AtomicU64,
    /// Dispatches that landed here after failing on a preferred shard.
    retried: AtomicU64,
    /// Replication fan-out calls dispatched *to* this shard.
    replicated: AtomicU64,
    /// Warm keys migrated *off* this shard by drain ops.
    drained_keys: AtomicU64,
    /// Health-check failures since the last successful check. Reset to
    /// zero on every pass the shard answers; crossing
    /// `auto_drain_after` triggers the auto-drain remediation.
    consecutive_failures: AtomicU64,
    /// Times the auto-drain remediation drained this shard.
    auto_drained: AtomicU64,
    /// Sliding window over the gateway-observed round trips to this
    /// shard: dispatch rate, failure rate, and windowed round-trip
    /// latency percentiles as *this* gateway saw them (network
    /// included), beside the shard's own self-reported window.
    window: Window,
    /// Last stats object successfully polled from this shard; dead
    /// shards keep contributing their final snapshot to the aggregate.
    last_stats: Mutex<Option<Json>>,
    /// Sources this gateway routed here, for drain migration.
    warm_keys: Mutex<WarmKeys>,
}

impl Shard {
    fn new(
        addr: String,
        weight: f64,
        connect_timeout: Duration,
        io_timeout: Duration,
        wire_max: u32,
    ) -> Shard {
        Shard {
            addr,
            weight: AtomicU64::new(weight.to_bits()),
            connect_timeout,
            io_timeout,
            wire_max,
            client: Mutex::new(None),
            draining: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            replicated: AtomicU64::new(0),
            drained_keys: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            auto_drained: AtomicU64::new(0),
            window: Window::with_default_clock(),
            last_stats: Mutex::new(None),
            warm_keys: Mutex::new(WarmKeys::new()),
        }
    }

    fn weight(&self) -> f64 {
        f64::from_bits(self.weight.load(Ordering::Relaxed))
    }

    fn set_weight(&self, w: f64) {
        self.weight.store(w.to_bits(), Ordering::Relaxed);
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Record a warm key, unless the shard is draining. The check
    /// happens under the ledger lock and `drain` takes its snapshot
    /// under the same lock *after* raising the flag, so a key can
    /// never slip in behind the migration walk and strand there.
    fn record_warm(&self, key: u128, req: &Request) {
        let mut ledger = self.warm_keys.lock().unwrap();
        if !self.is_draining() {
            ledger.record(key, req);
        }
    }

    /// The live pooled client, if the shard is up.
    fn live(&self) -> Option<Arc<PipelinedClient>> {
        let guard = self.client.lock().unwrap();
        match &*guard {
            Some(c) if !c.is_dead() => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// (Re)dial unless already connected. Returns liveness.
    ///
    /// The dial happens *outside* the client mutex: a black-holed
    /// address makes each attempt last the full connect timeout, and
    /// holding the lock that long would stall every `live()` check —
    /// i.e. the router's ability to *skip* the dead shard — for the
    /// duration. Two concurrent dials are harmless (last one wins; the
    /// loser is dropped and poisoned).
    fn connect(&self) -> bool {
        if self.live().is_some() {
            return true;
        }
        match PipelinedClient::connect_timeout_wire(
            self.addr.as_str(),
            self.connect_timeout,
            self.wire_max,
        ) {
            Ok(c) => {
                let client = Arc::new(c.with_io_timeout(self.io_timeout));
                *self.client.lock().unwrap() = Some(client);
                true
            }
            Err(_) => {
                // Drop a poisoned handle so `live()` stays cheap.
                let mut guard = self.client.lock().unwrap();
                if matches!(&*guard, Some(c) if c.is_dead()) {
                    *guard = None;
                }
                false
            }
        }
    }

    /// Ping a live shard for stats, refreshing the snapshot. `None`
    /// when the shard is down (the failed call poisons the client).
    fn poll_stats(&self) -> Option<Json> {
        let client = self.live()?;
        match client.stats() {
            Ok(s) => {
                *self.last_stats.lock().unwrap() = Some(s.clone());
                Some(s)
            }
            Err(_) => None,
        }
    }
}

struct GwInner {
    /// The shard set, in configuration order. Guarded by a `RwLock` so
    /// `undrain` can **join** new shards while traffic flows; routing
    /// takes brief read locks and clones `Arc`s out.
    topology: RwLock<Vec<Arc<Shard>>>,
    /// Replication factor: newly computed artifacts fan out to this
    /// many shards in rendezvous order.
    replication: usize,
    connect_timeout: Duration,
    io_timeout: Duration,
    /// Highest wire version new shard connections offer (0 pins v0).
    wire_max: u32,
    /// Hot-source response cache checked before any shard dispatch.
    admission: Mutex<AdmissionCache>,
    /// Requests answered straight out of the admission cache.
    admission_hits: AtomicU64,
    requests: AtomicU64,
    /// Requests that failed on at least one shard and were re-routed.
    rerouted: AtomicU64,
    /// Replication fan-out calls dispatched (across all shards).
    replica_writes: AtomicU64,
    /// Replica fan-outs that could not be delivered (replica dead at
    /// dispatch, or the call failed): the key is singly-held until its
    /// next cold touch or a drain re-homes it.
    replica_failures: AtomicU64,
    /// Requests answered by the embedded local server.
    local_fallbacks: AtomicU64,
    /// Ring buffer of completed traced requests: gateway hops plus the
    /// shard-reported spans, dumped by `{"op":"trace"}`.
    journal: Journal,
    /// Sliding window over every routed request (client traffic and
    /// drain migrations alike): live cluster throughput, error rate,
    /// and windowed end-to-end latency as the gateway observed it.
    window: Window,
    /// Requests currently inside [`GwInner::route`].
    in_flight: AtomicU64,
    /// Slow-request captures: routed requests whose wall latency
    /// crossed [`GwInner::slow_threshold_us`], with span breakdowns.
    slowlog: SlowLog,
    slow_threshold_us: u64,
    local: OnceLock<Server>,
    /// Dispatch pool: session requests, stats polls, replication
    /// fan-out, and admin ops all run here, never on a session's read
    /// loop.
    pool: Pool,
    /// The on-disk telemetry ring (`--telemetry-dir`), fed by the
    /// sampler thread and read back by `{"op":"history"}`.
    tsdb: Option<Arc<Tsdb>>,
    /// The alert engine: rules evaluated on every sampler tick, plus
    /// the transition/event journal `{"op":"alerts"}` reads. Always
    /// present — with zero rules it is just the auto-drain journal.
    engine: Arc<AlertEngine>,
    /// Wall clock shared by the sample ring and the alert journal.
    clock: Arc<dyn Clock>,
    /// Consecutive health-check failures before a shard is auto-
    /// drained; 0 disables the remediation.
    auto_drain_after: u64,
    /// Warm-key ledger checkpoint path (under the telemetry dir).
    ledger_path: Option<PathBuf>,
    /// Root of durable state (`--telemetry-dir`); sweep journals live
    /// in per-sweep subdirectories here.
    telemetry_dir: Option<PathBuf>,
    /// Lifetime counters for the cluster `sweep` op.
    sweeps: sweep::SweepCounters,
}

impl GwInner {
    fn local(&self) -> &Server {
        // Lazy: a healthy cluster never pays for the fallback pool.
        self.local.get_or_init(Server::new)
    }

    /// A point-in-time copy of the shard set (configuration order).
    fn shards(&self) -> Vec<Arc<Shard>> {
        self.topology.read().unwrap().clone()
    }

    fn health_pass(self: &Arc<Self>) {
        for shard in self.shards() {
            let healthy = if shard.live().is_some() {
                shard.poll_stats().is_some()
            } else {
                shard.connect()
            };
            if healthy {
                shard.consecutive_failures.store(0, Ordering::Relaxed);
            } else {
                let fails = shard.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if self.auto_drain_after > 0 && fails == self.auto_drain_after {
                    self.auto_drain(&shard, "auto_drain", fails as f64);
                }
            }
        }
    }

    /// The auto-drain remediation: drain `shard`, journal the event
    /// under `rule`, and bump its `auto_drained` counter. Refuses to
    /// act when the shard is already draining or when no *other*
    /// non-draining shard is live — draining the last live shard would
    /// trade a degraded cluster for a local-fallback-only one.
    fn auto_drain(self: &Arc<Self>, shard: &Arc<Shard>, rule: &str, value: f64) {
        if shard.is_draining() {
            return;
        }
        let survivors = self
            .shards()
            .iter()
            .filter(|s| s.addr != shard.addr && !s.is_draining() && s.live().is_some())
            .count();
        if survivors == 0 {
            return;
        }
        shard.auto_drained.fetch_add(1, Ordering::Relaxed);
        self.engine
            .record_event(rule, "auto_drain", value, &shard.addr);
        self.drain(&shard.addr);
    }

    /// One sampler tick: snapshot the cluster stats into the on-disk
    /// ring, evaluate the alert rules against the same snapshot (a
    /// newly fired rule bound to the `drain` action drains the
    /// unhealthiest shard), and checkpoint the warm-key ledger.
    fn telemetry_tick(self: &Arc<Self>) {
        let stats = self.stats_json();
        if let Some(tsdb) = &self.tsdb {
            tsdb.append(self.clock.now_ms(), stats.emit().as_bytes());
        }
        let fired = self
            .engine
            .eval(&|path| obs_json::resolve_series(&stats, path).and_then(Json::as_f64));
        for rule in fired {
            if rule.action.as_deref() == Some("drain") {
                // The rule names a cluster condition, not a shard; aim
                // the remediation at the shard failing its health
                // checks the longest (config order breaks ties).
                let worst = self
                    .shards()
                    .into_iter()
                    .filter(|s| !s.is_draining())
                    .max_by_key(|s| s.consecutive_failures.load(Ordering::Relaxed));
                if let Some(shard) = worst {
                    let fails = shard.consecutive_failures.load(Ordering::Relaxed);
                    if fails > 0 {
                        self.auto_drain(&shard, &rule.text, fails as f64);
                    }
                }
            }
        }
        self.save_ledger();
    }

    /// Checkpoint every shard's warm-key ledger to disk, best-effort
    /// (a failed write costs recovery freshness, never traffic).
    fn save_ledger(&self) {
        let Some(path) = &self.ledger_path else {
            return;
        };
        let mut entries = Vec::new();
        for shard in self.shards() {
            for req in shard.warm_keys.lock().unwrap().entries() {
                entries.push((shard.addr.clone(), req));
            }
        }
        let _ = ledger::save(path, &entries);
    }

    /// The shard set in rendezvous preference order for `key`, with
    /// draining shards filtered out — the candidate list for routing
    /// and the domain of the replica set.
    fn candidates(&self, key: u128) -> Vec<Arc<Shard>> {
        let topo = self.topology.read().unwrap();
        let weighted: Vec<(&str, f64)> =
            topo.iter().map(|s| (s.addr.as_str(), s.weight())).collect();
        hash::weighted_rank(key, &weighted)
            .into_iter()
            .map(|i| Arc::clone(&topo[i]))
            .filter(|s| !s.is_draining())
            .collect()
    }

    fn submit(self: &Arc<Self>, req: &Request) -> Json {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let t_submit = Instant::now();
        let key = (source_digest(&req.source), req.stage, req.options.digest());
        // Admission control, stage one: answer hot repeats at the
        // gateway. Traced requests always route — the caller asked for
        // the span breakdown a cache hit cannot produce.
        if req.trace.is_none() {
            let hit = self.admission.lock().unwrap().get(&key);
            if let Some(mut resp) = hit {
                self.admission_hits.fetch_add(1, Ordering::Relaxed);
                set_field(&mut resp, "id", Json::Str(req.id.clone()));
                set_field(&mut resp, "cached", Json::Bool(true));
                self.window
                    .record((t_submit.elapsed().as_nanos() / 1_000) as u64, true);
                return resp;
            }
        }
        let resp = self.route(req, true);
        if req.trace.is_none() && admission_cacheable(&resp) {
            self.admission.lock().unwrap().insert(key, &resp);
        }
        resp
    }

    /// Route one request: try candidate shards in rendezvous order,
    /// skipping dead ones and poisoning/skipping any that fail
    /// mid-call; compile locally when nothing is reachable. With
    /// `fan_out`, a newly computed artifact is replicated to the rest
    /// of the top-N replica set in the background.
    ///
    /// Hop spans are recorded for *every* request (the bench suite
    /// pins the overhead at noise level): the traced path echoes them
    /// to the client, the slow log captures them retroactively when
    /// the request crosses the threshold, and the fast path simply
    /// drops them.
    fn route(self: &Arc<Self>, req: &Request, fan_out: bool) -> Json {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        let t_route = Instant::now();
        let mut gw_spans: Vec<Span> = Vec::new();
        let mut resp = self.route_attempts(req, fan_out, &mut gw_spans);
        let wall_us = (t_route.elapsed().as_nanos() / 1_000) as u64;
        let ok = resp.get("ok").and_then(Json::as_bool).unwrap_or(false);
        self.window.record(wall_us, ok);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        if req.trace.is_some() {
            self.finish_trace(req, &mut resp, gw_spans.clone(), t_route);
        }
        if wall_us > self.slow_threshold_us {
            // Traced responses carry the combined gateway + shard span
            // list by now — capture that; otherwise the gateway hops.
            let spans = match resp.get("trace").and_then(|t| t.get("spans")) {
                Some(Json::Arr(items)) => {
                    items.iter().filter_map(obs_json::span_from_json).collect()
                }
                _ => gw_spans,
            };
            self.slowlog.push(TraceEntry {
                trace: req.trace.clone().unwrap_or_default(),
                id: req.id.clone(),
                stage: req.stage.name().to_string(),
                ok,
                wall_us,
                spans,
            });
        }
        resp
    }

    /// The shard-attempt loop of [`GwInner::route`], appending one hop
    /// span per attempt to `gw_spans`.
    fn route_attempts(
        self: &Arc<Self>,
        req: &Request,
        fan_out: bool,
        gw_spans: &mut Vec<Span>,
    ) -> Json {
        let key = source_digest(&req.source);
        let candidates = self.candidates(key);
        let mut failed_before = false;
        for (i, shard) in candidates.iter().enumerate() {
            let Some(client) = shard.live() else { continue };
            shard.routed.fetch_add(1, Ordering::Relaxed);
            if failed_before {
                shard.retried.fetch_add(1, Ordering::Relaxed);
            }
            let t_attempt = Instant::now();
            match client.call(req) {
                Ok(resp) => {
                    let attempt_us = (t_attempt.elapsed().as_nanos() / 1_000) as u64;
                    shard.window.record(
                        attempt_us,
                        resp.get("ok").and_then(Json::as_bool) == Some(true),
                    );
                    if failed_before {
                        self.rerouted.fetch_add(1, Ordering::Relaxed);
                    }
                    shard.record_warm(key, req);
                    let fanned = if fan_out {
                        self.replicate(key, req, &candidates, i, &resp)
                    } else {
                        0
                    };
                    gw_spans.push(Span::with_detail(
                        format!("shard:{}", shard.addr),
                        attempt_us,
                        if failed_before { "rerouted" } else { "routed" },
                    ));
                    if fanned > 0 {
                        // Fire-and-forget: the span records the
                        // fan-out degree, not its (off-path) cost.
                        gw_spans.push(Span::with_detail(
                            "replicate",
                            0,
                            format!("fanout={fanned}"),
                        ));
                    }
                    return resp;
                }
                Err(_) => {
                    // The client poisoned itself; the next live shard
                    // in rendezvous order inherits this key (and every
                    // other key this shard owned).
                    let attempt_us = (t_attempt.elapsed().as_nanos() / 1_000) as u64;
                    shard.window.record(attempt_us, false);
                    shard.failed.fetch_add(1, Ordering::Relaxed);
                    failed_before = true;
                    gw_spans.push(Span::with_detail(
                        format!("shard:{}", shard.addr),
                        attempt_us,
                        "failed",
                    ));
                }
            }
        }
        self.local_fallbacks.fetch_add(1, Ordering::Relaxed);
        if failed_before {
            self.rerouted.fetch_add(1, Ordering::Relaxed);
        }
        let t_local = Instant::now();
        let resp = self.local().submit(req.clone()).to_json();
        gw_spans.push(Span::with_detail(
            "local",
            (t_local.elapsed().as_nanos() / 1_000) as u64,
            "fallback",
        ));
        resp
    }

    /// Stamp the gateway-side spans onto a traced response (in front of
    /// whatever the shard reported) and record the combined span list
    /// in the gateway's own journal.
    fn finish_trace(&self, req: &Request, resp: &mut Json, spans: Vec<Span>, t0: Instant) {
        let Some(trace_id) = &req.trace else { return };
        obs_json::prepend_trace_spans(resp, trace_id, &spans);
        let combined = match resp.get("trace").and_then(|t| t.get("spans")) {
            Some(Json::Arr(items)) => items.iter().filter_map(obs_json::span_from_json).collect(),
            _ => spans,
        };
        self.journal.push(TraceEntry {
            trace: trace_id.clone(),
            id: req.id.clone(),
            stage: req.stage.name().to_string(),
            ok: resp.get("ok").and_then(Json::as_bool).unwrap_or(false),
            wall_us: (t0.elapsed().as_nanos() / 1_000) as u64,
            spans: combined,
        });
    }

    /// Fan a **newly computed** artifact out to the remaining members
    /// of the key's replica set — the first `replication` candidates in
    /// rendezvous order, minus the shard that just answered. Fire and
    /// forget on the pool: replication is a cache warmer, and a slow or
    /// dying replica must never add latency to the caller's response.
    /// Warm hits (`cached: true`) skip the fan-out; their replica set
    /// was warmed when the artifact was first computed.
    ///
    /// Best-effort: a replica that is down (or whose call fails) is
    /// *not* retried — the key stays singly-held until the next cold
    /// touch or a drain re-homes it. `replica_failures` counts those
    /// misses so operators can see degraded redundancy.
    fn replicate(
        self: &Arc<Self>,
        key: u128,
        req: &Request,
        candidates: &[Arc<Shard>],
        answered: usize,
        resp: &Json,
    ) -> usize {
        if self.replication <= 1 {
            return 0;
        }
        if resp.get("cached").and_then(Json::as_bool) != Some(false) {
            return 0;
        }
        let mut dispatched = 0;
        for (i, shard) in candidates.iter().enumerate().take(self.replication) {
            if i == answered {
                continue;
            }
            let Some(client) = shard.live() else {
                self.replica_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            shard.replicated.fetch_add(1, Ordering::Relaxed);
            self.replica_writes.fetch_add(1, Ordering::Relaxed);
            dispatched += 1;
            let inner = Arc::clone(self);
            let shard = Arc::clone(shard);
            // Replica warms are cache writes, not client traffic: drop
            // the trace id so they don't show up in shard journals.
            let mut req = req.clone();
            req.trace = None;
            self.pool.execute(move || match client.call(&req) {
                Ok(_) => shard.record_warm(key, &req),
                Err(_) => {
                    inner.replica_failures.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        dispatched
    }

    /// Mark `addr` draining and kick off the background key walk. The
    /// ack reports how many warm keys were scheduled for migration;
    /// the per-shard `drained_keys` counter reports progress.
    fn drain(self: &Arc<Self>, addr: &str) -> Json {
        let Some(shard) = self.find(addr) else {
            return admin_error("drain", addr, format!("no shard `{addr}` in the topology"));
        };
        // Flag first, snapshot second, both ordered against
        // `record_warm`'s flag-check-under-the-ledger-lock: any route
        // completing after this point either landed its key in this
        // snapshot or saw the flag and skipped recording — nothing can
        // strand in a draining shard's ledger behind the walk.
        let already = shard.draining.swap(true, Ordering::SeqCst);
        let keys = shard.warm_keys.lock().unwrap().take_all();
        let scheduled = keys.len();
        if scheduled > 0 {
            let inner = Arc::clone(self);
            let t_shard = Arc::clone(&shard);
            let spawned = std::thread::Builder::new()
                .name("dahlia-gateway-drain".into())
                .spawn(move || {
                    for req in keys {
                        // Route without fan-out accounting as client
                        // traffic: migration is bookkeeping, and the
                        // draining shard is already out of the
                        // candidate set.
                        inner.route(&req, true);
                        t_shard.drained_keys.fetch_add(1, Ordering::Relaxed);
                    }
                });
            if spawned.is_err() {
                // Thread exhaustion: the keys are lost from the ledger
                // but not from the world — the new owners recompute on
                // first touch. Report zero scheduled.
                return drain_ack(addr, already, 0);
            }
        }
        drain_ack(addr, already, scheduled)
    }

    /// Re-activate a draining shard (optionally re-weighting it), or
    /// **join** `addr` as a brand-new shard (weight defaults to 1) —
    /// the live re-sharding path.
    fn undrain(&self, addr: &str, weight: Option<f64>) -> Json {
        if let Some(shard) = self.find(addr) {
            if let Some(w) = weight {
                shard.set_weight(w);
            }
            shard.draining.store(false, Ordering::SeqCst);
            let alive = shard.connect();
            return obj([
                ("ok", Json::Bool(true)),
                ("op", Json::Str("undrain".into())),
                ("shard", Json::Str(addr.into())),
                ("joined", Json::Bool(false)),
                ("alive", Json::Bool(alive)),
                ("weight", Json::Num(shard.weight())),
            ]);
        }
        let shard = {
            let mut topo = self.topology.write().unwrap();
            // Re-check under the write lock: two concurrent joins of
            // the same address must not double it.
            match topo.iter().find(|s| s.addr == addr) {
                Some(existing) => {
                    if let Some(w) = weight {
                        existing.set_weight(w);
                    }
                    existing.draining.store(false, Ordering::SeqCst);
                    Arc::clone(existing)
                }
                None => {
                    let shard = Arc::new(Shard::new(
                        addr.to_string(),
                        weight.unwrap_or(1.0),
                        self.connect_timeout,
                        self.io_timeout,
                        self.wire_max,
                    ));
                    topo.push(Arc::clone(&shard));
                    shard
                }
            }
        };
        let alive = shard.connect();
        obj([
            ("ok", Json::Bool(true)),
            ("op", Json::Str("undrain".into())),
            ("shard", Json::Str(addr.into())),
            ("joined", Json::Bool(true)),
            ("alive", Json::Bool(alive)),
            ("weight", Json::Num(shard.weight())),
        ])
    }

    fn find(&self, addr: &str) -> Option<Arc<Shard>> {
        self.topology
            .read()
            .unwrap()
            .iter()
            .find(|s| s.addr == addr)
            .cloned()
    }

    /// The cluster-wide stats object: the numeric sum of every shard's
    /// stats (live shards are polled; dead ones contribute their last
    /// snapshot) plus the embedded local server's, with a `gateway`
    /// section carrying routing state. Shaped like a single server's
    /// stats, so existing clients (`dahliac batch`) read it unchanged.
    fn stats_json(&self) -> Json {
        // Snapshot the admission cache up front: lock guards created
        // inside the big `obj([...])` below would live to the end of
        // the whole expression and deadlock against each other.
        let (adm_entries, adm_cap) = {
            let adm = self.admission.lock().unwrap();
            (adm.len(), adm.cap)
        };
        let mut agg = Json::Obj(Vec::new());
        let mut shard_objs = Vec::new();
        let mut live = 0u64;
        let mut draining = 0u64;
        let mut dead = 0u64;
        for shard in self.shards() {
            let polled = shard.poll_stats();
            let alive = polled.is_some();
            if alive {
                live += 1;
            }
            if shard.is_draining() {
                draining += 1;
            } else if !alive {
                dead += 1;
            }
            let snapshot = polled.or_else(|| shard.last_stats.lock().unwrap().clone());
            if let Some(s) = &snapshot {
                merge_sum(&mut agg, s);
            }
            let w = shard.window.snapshot();
            shard_objs.push(obj([
                ("addr", Json::Str(shard.addr.clone())),
                ("alive", Json::Bool(alive)),
                ("draining", Json::Bool(shard.is_draining())),
                ("weight", Json::Num(shard.weight())),
                (
                    "routed",
                    Json::Num(shard.routed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "failed",
                    Json::Num(shard.failed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "retried",
                    Json::Num(shard.retried.load(Ordering::Relaxed) as f64),
                ),
                (
                    "replicated",
                    Json::Num(shard.replicated.load(Ordering::Relaxed) as f64),
                ),
                (
                    "drained_keys",
                    Json::Num(shard.drained_keys.load(Ordering::Relaxed) as f64),
                ),
                (
                    "auto_drained",
                    Json::Num(shard.auto_drained.load(Ordering::Relaxed) as f64),
                ),
                (
                    "consecutive_failures",
                    Json::Num(shard.consecutive_failures.load(Ordering::Relaxed) as f64),
                ),
                (
                    "warm_keys",
                    Json::Num(shard.warm_keys.lock().unwrap().len() as f64),
                ),
                // Windowed round trips as this gateway observed them
                // (scalar fields only: the shards array renders as
                // per-shard labelled Prometheus gauges).
                ("window_routed", Json::Num(w.requests as f64)),
                ("window_rate", Json::Num(w.rate_per_s())),
                ("window_error_rate", Json::Num(w.error_rate_per_s())),
                ("window_p99_us", Json::Num(w.hist.quantile(0.99))),
                // The shard's own self-reported gauges, lifted out of
                // its last stats snapshot (zero when never polled) so
                // consoles see per-shard queue pressure, not just the
                // cluster-merged sums.
                (
                    "in_flight",
                    Json::Num(shard_window_gauge(&snapshot, "in_flight")),
                ),
                (
                    "queue_depth",
                    Json::Num(shard_window_gauge(&snapshot, "queue_depth")),
                ),
            ]));
        }
        if let Some(local) = self.local.get() {
            // The SessionHost form carries the `hist` section beside
            // the flat counters, same as a shard's stats line.
            merge_sum(&mut agg, &SessionHost::stats_json(local));
        }
        // Bucket counts summed correctly across shards; percentile
        // fields did not. Re-derive them from the merged buckets.
        obs_json::fix_percentiles(&mut agg);
        let gateway = obj([
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "rerouted",
                Json::Num(self.rerouted.load(Ordering::Relaxed) as f64),
            ),
            (
                "replica_writes",
                Json::Num(self.replica_writes.load(Ordering::Relaxed) as f64),
            ),
            (
                "replica_failures",
                Json::Num(self.replica_failures.load(Ordering::Relaxed) as f64),
            ),
            (
                "local_fallbacks",
                Json::Num(self.local_fallbacks.load(Ordering::Relaxed) as f64),
            ),
            ("replication", Json::Num(self.replication as f64)),
            (
                "admission_cache_hits",
                Json::Num(self.admission_hits.load(Ordering::Relaxed) as f64),
            ),
            ("admission_cache_entries", Json::Num(adm_entries as f64)),
            ("admission_cache_cap", Json::Num(adm_cap as f64)),
            ("wire_max", Json::Num(self.wire_max as f64)),
            ("shards_live", Json::Num(live as f64)),
            ("shards_draining", Json::Num(draining as f64)),
            ("shards_dead", Json::Num(dead as f64)),
            ("auto_drain_after", Json::Num(self.auto_drain_after as f64)),
            // The gateway's *own* live window — end-to-end latency as
            // clients saw it, fail-overs included — beside the
            // shard-merged `window` at the top level.
            (
                "window",
                obs_json::window_to_json(
                    &self.window.snapshot(),
                    self.in_flight.load(Ordering::Relaxed),
                    0,
                ),
            ),
            (
                "journals",
                obj([
                    ("trace_dropped", Json::Num(self.journal.dropped() as f64)),
                    ("slowlog_dropped", Json::Num(self.slowlog.dropped() as f64)),
                ]),
            ),
            ("sweeps", self.sweeps.to_json()),
            ("shards", Json::Arr(shard_objs)),
        ]);
        if let Json::Obj(fields) = &mut agg {
            // Shard-side telemetry sections would sum meaninglessly
            // across the cluster and collide with the gateway's own:
            // drop them, then attach the gateway's at the root (the
            // same layout a single server exposes, so the
            // `dahlia_alert_state{rule=...}` gauge family renders
            // identically from either).
            fields.retain(|(k, _)| k != "telemetry" && k != "alerts" && k != "alert_state");
            fields.push(("gateway".to_string(), gateway));
            if let Some(tsdb) = &self.tsdb {
                fields.push((
                    "telemetry".to_string(),
                    obs_json::tsdb_stats_to_json(&tsdb.stats()),
                ));
            }
            if self.engine.rule_count() > 0 {
                fields.push((
                    "alerts".to_string(),
                    obj([
                        ("rules", Json::Num(self.engine.rule_count() as f64)),
                        ("firing", Json::Num(self.engine.firing() as f64)),
                    ]),
                ));
                fields.push((
                    "alert_state".to_string(),
                    obs_json::alert_states_to_json(&self.engine.states()),
                ));
            }
        }
        agg
    }
}

/// Overwrite (or append) one field of a response object in place.
fn set_field(resp: &mut Json, key: &str, val: Json) {
    if let Json::Obj(fields) = resp {
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = val,
            None => fields.push((key.to_string(), val)),
        }
    }
}

/// A gauge from the `window` section of a shard's self-reported stats
/// snapshot, defaulting to 0 for never-polled (or pre-window) shards.
fn shard_window_gauge(snapshot: &Option<Json>, key: &str) -> f64 {
    snapshot
        .as_ref()
        .and_then(|s| s.get("window"))
        .and_then(|w| w.get(key))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn drain_ack(addr: &str, already: bool, scheduled: usize) -> Json {
    obj([
        ("ok", Json::Bool(true)),
        ("op", Json::Str("drain".into())),
        ("shard", Json::Str(addr.into())),
        ("already_draining", Json::Bool(already)),
        ("keys_scheduled", Json::Num(scheduled as f64)),
    ])
}

fn admin_error(op: &str, shard: &str, message: String) -> Json {
    obj([
        ("ok", Json::Bool(false)),
        ("op", Json::Str(op.into())),
        ("shard", Json::Str(shard.into())),
        (
            "error",
            obj([
                ("phase", Json::Str("protocol".into())),
                ("code", Json::Str("protocol/unknown-shard".into())),
                ("message", Json::Str(message)),
            ]),
        ),
    ])
}

/// Numeric deep-merge: numbers add, objects merge recursively (keys
/// the accumulator lacks are appended in the contributor's order), and
/// everything else keeps the accumulator's value. Summing per-shard
/// stats this way survives counter additions without a schema here.
fn merge_sum(acc: &mut Json, add: &Json) {
    match (acc, add) {
        (Json::Num(a), Json::Num(b)) => *a += *b,
        (Json::Obj(af), Json::Obj(bf)) => {
            for (k, v) in bf {
                match af.iter_mut().find(|(ak, _)| ak == k) {
                    Some((_, slot)) => merge_sum(slot, v),
                    None => af.push((k.clone(), v.clone())),
                }
            }
        }
        _ => {}
    }
}

/// A point-in-time view of one shard, for tests, benches, and the CLI
/// summary line.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The shard's address as configured.
    pub addr: String,
    /// Is the pooled connection up right now?
    pub alive: bool,
    /// Is the shard draining (routing skips it)?
    pub draining: bool,
    /// The shard's rendezvous weight.
    pub weight: f64,
    /// Requests dispatched to this shard.
    pub routed: u64,
    /// Dispatches that failed here.
    pub failed: u64,
    /// Dispatches that landed here after failing elsewhere.
    pub retried: u64,
    /// Replication fan-out calls dispatched to this shard.
    pub replicated: u64,
    /// Warm keys migrated off this shard by drain ops.
    pub drained_keys: u64,
    /// The shard server's own stats, as last successfully polled.
    pub stats: Option<Json>,
}

/// The cluster router. See the crate docs for the architecture.
pub struct Gateway {
    inner: Arc<GwInner>,
    stop: Arc<(Mutex<bool>, Condvar)>,
    checker: Option<std::thread::JoinHandle<()>>,
    /// The telemetry sampler thread; dropping it joins.
    _sampler: Option<Sampler>,
}

impl Gateway {
    /// Route one request and block for its response line (as JSON, with
    /// the caller's id). Never errors: a fully-dead cluster compiles
    /// locally.
    pub fn submit(&self, req: &Request) -> Json {
        self.inner.submit(req)
    }

    /// Run one synchronous health pass (what the background checker
    /// does every interval): poll live shards, re-dial dead ones.
    pub fn check_now(&self) {
        self.inner.health_pass();
    }

    /// Mark `addr` draining: new keys route past it, in-flight work
    /// completes, and a background task migrates its warm keys to the
    /// surviving replica set. Returns the ack object (`keys_scheduled`
    /// counts the migration backlog; per-shard `drained_keys` in the
    /// stats reports progress).
    pub fn drain(&self, addr: &str) -> Json {
        self.inner.drain(addr)
    }

    /// Re-activate a draining shard — or, if `addr` is not in the
    /// topology, **join** it as a new shard with the given rendezvous
    /// weight (default 1). Rendezvous hashing moves only the keys the
    /// new shard owns; everything else stays pinned.
    pub fn undrain(&self, addr: &str, weight: Option<f64>) -> Json {
        self.inner.undrain(addr, weight)
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.inner.replication
    }

    /// Number of shards whose pooled connection is currently live.
    pub fn live_shards(&self) -> usize {
        self.inner
            .shards()
            .iter()
            .filter(|s| s.live().is_some())
            .count()
    }

    /// Total shard count (live or not).
    pub fn shard_count(&self) -> usize {
        self.inner.topology.read().unwrap().len()
    }

    /// Requests routed so far (including local fallbacks).
    pub fn requests(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed on some shard and were re-routed.
    pub fn rerouted(&self) -> u64 {
        self.inner.rerouted.load(Ordering::Relaxed)
    }

    /// Replication fan-out calls dispatched so far.
    pub fn replica_writes(&self) -> u64 {
        self.inner.replica_writes.load(Ordering::Relaxed)
    }

    /// Replica fan-outs that could not be delivered (dead replica or
    /// failed call) — nonzero means some keys are singly-held.
    pub fn replica_failures(&self) -> u64 {
        self.inner.replica_failures.load(Ordering::Relaxed)
    }

    /// Requests answered by the embedded local server.
    pub fn local_fallbacks(&self) -> u64 {
        self.inner.local_fallbacks.load(Ordering::Relaxed)
    }

    /// Requests answered straight out of the admission cache, without
    /// touching a shard.
    pub fn admission_cache_hits(&self) -> u64 {
        self.inner.admission_hits.load(Ordering::Relaxed)
    }

    /// Per-shard state, refreshing each live shard's stats snapshot.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.inner
            .shards()
            .iter()
            .map(|s| {
                let polled = s.poll_stats();
                ShardSnapshot {
                    addr: s.addr.clone(),
                    alive: polled.is_some(),
                    draining: s.is_draining(),
                    weight: s.weight(),
                    routed: s.routed.load(Ordering::Relaxed),
                    failed: s.failed.load(Ordering::Relaxed),
                    retried: s.retried.load(Ordering::Relaxed),
                    replicated: s.replicated.load(Ordering::Relaxed),
                    drained_keys: s.drained_keys.load(Ordering::Relaxed),
                    stats: polled.or_else(|| s.last_stats.lock().unwrap().clone()),
                }
            })
            .collect()
    }

    /// The aggregated stats object (see [`SessionHost::stats_json`]).
    pub fn stats_json(&self) -> Json {
        self.inner.stats_json()
    }
}

impl SessionHost for Gateway {
    fn dispatch(&self, req: Request, respond: Box<dyn FnOnce(String) + Send>) {
        let inner = Arc::clone(&self.inner);
        self.inner.pool.execute(move || {
            respond(inner.submit(&req).emit());
        });
    }

    fn dispatch_obj(&self, req: Request, respond: Box<dyn FnOnce(Json) + Send>) {
        // Binary sessions skip the emit-then-reparse round trip: the
        // router already produces the response as a JSON object.
        let inner = Arc::clone(&self.inner);
        self.inner.pool.execute(move || {
            respond(inner.submit(&req));
        });
    }

    fn stats_json(&self) -> Json {
        self.inner.stats_json()
    }

    fn trace_json(&self) -> Json {
        obs_json::journal_to_json(&self.inner.journal)
    }

    fn slowlog_json(&self, since: u64) -> Json {
        obs_json::slowlog_to_json(&self.inner.slowlog.snapshot_since(since))
    }

    fn health_json(&self) -> Json {
        let (mut live, mut draining, mut dead) = (0u64, 0u64, 0u64);
        for shard in self.inner.shards() {
            if shard.is_draining() {
                draining += 1;
            } else if shard.live().is_some() {
                live += 1;
            } else {
                dead += 1;
            }
        }
        obj([
            ("ok", Json::Bool(true)),
            ("shards_live", Json::Num(live as f64)),
            ("shards_draining", Json::Num(draining as f64)),
            ("shards_dead", Json::Num(dead as f64)),
            (
                "trace_dropped",
                Json::Num(self.inner.journal.dropped() as f64),
            ),
            (
                "slowlog_dropped",
                Json::Num(self.inner.slowlog.dropped() as f64),
            ),
            (
                "alerts_firing",
                Json::Num(self.inner.engine.firing() as f64),
            ),
        ])
    }

    fn history_json(&self, series: &str, since: u64, step: u64) -> Json {
        let samples = match &self.inner.tsdb {
            Some(tsdb) => obs_json::decode_samples(tsdb.scan_since(since)),
            None => Vec::new(),
        };
        obs_json::history_to_json(series, since, step, &samples)
    }

    fn alerts_json(&self, since: u64) -> Json {
        obs_json::alertlog_to_json(
            &self.inner.engine.snapshot_since(since),
            &self.inner.engine.states(),
        )
    }

    fn dispatch_stats(&self, respond: Box<dyn FnOnce(Json) + Send>) {
        // Gateway stats poll every shard over the network; that must
        // not run on the session's read loop (a slow shard would stall
        // every request line queued behind the stats op).
        let inner = Arc::clone(&self.inner);
        self.inner.pool.execute(move || {
            respond(inner.stats_json());
        });
    }

    fn dispatch_admin(&self, op: AdminOp, respond: Box<dyn FnOnce(String) + Send>) {
        // Admin ops touch the topology lock and may dial a joining
        // shard (a full connect timeout) — worker-pool territory.
        let inner = Arc::clone(&self.inner);
        self.inner.pool.execute(move || {
            let ack = match op {
                AdminOp::Drain { shard } => inner.drain(&shard),
                AdminOp::Undrain { shard, weight } => inner.undrain(&shard, weight),
            };
            respond(ack.emit());
        });
    }

    fn dispatch_sweep(&self, op: SweepOp, emit: Box<dyn Fn(String, bool) + Send + Sync>) {
        // A sweep can run for minutes; a dedicated thread keeps it off
        // the dispatch pool so point fan-out (which *does* use pool
        // slots indirectly via shard clients) can never starve behind
        // the sweep body itself.
        let inner = Arc::clone(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("dahlia-gateway-sweep".into())
            .spawn(move || sweep::run_sweep(&inner, op, emit.as_ref()));
        if let Err(e) = spawned {
            // `emit` moved into the (failed) closure; nothing can be
            // sent — the client sees the session close without a final
            // line, the same contract as a crashed gateway.
            let _ = e;
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(handle) = self.checker.take() {
            let _ = handle.join();
        }
        // Stop the sampler before the final ledger checkpoint so a
        // racing tick cannot overwrite it with a staler view.
        self._sampler = None;
        self.inner.save_ledger();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dahlia_server::Stage;

    const GOOD: &str = "let A: float[8 bank 4];\nfor (let i = 0..8) unroll 4 { A[i] := 1.0; }";

    /// A port with nothing behind it: bind, read the address, drop.
    fn dead_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    #[test]
    fn empty_cluster_compiles_locally() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let resp = gw.submit(&Request::new("r1", Stage::Estimate, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(gw.local_fallbacks(), 1);
        let stats = gw.stats_json();
        assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(1));
        let gws = stats.get("gateway").unwrap();
        assert_eq!(gws.get("shards_live").and_then(Json::as_u64), Some(0));
        assert_eq!(gws.get("local_fallbacks").and_then(Json::as_u64), Some(1));
        assert_eq!(gws.get("replication").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn all_shards_dead_falls_back_locally() {
        let gw = GatewayConfig::new([dead_addr(), dead_addr()])
            .connect_timeout(Duration::from_millis(200))
            .build();
        assert_eq!(gw.live_shards(), 0);
        let resp = gw.submit(&Request::new("r1", Stage::Check, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gw.local_fallbacks(), 1);
        // Dead shards never received anything.
        for s in gw.shard_snapshots() {
            assert!(!s.alive);
            assert_eq!(s.routed, 0);
        }
    }

    #[test]
    fn draining_every_shard_falls_back_locally() {
        let addr = dead_addr();
        let gw = GatewayConfig::new([addr.clone()])
            .connect_timeout(Duration::from_millis(200))
            .build();
        let ack = gw.drain(&addr);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ack.get("keys_scheduled").and_then(Json::as_u64), Some(0));
        let resp = gw.submit(&Request::new("r1", Stage::Check, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gw.local_fallbacks(), 1);
        let snaps = gw.shard_snapshots();
        assert!(snaps[0].draining);
        assert_eq!(snaps[0].routed, 0);
    }

    #[test]
    fn drain_of_unknown_shard_is_an_error_ack() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let ack = gw.drain("10.9.9.9:1");
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(false));
        let code = ack
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str);
        assert_eq!(code, Some("protocol/unknown-shard"));
    }

    #[test]
    fn undrain_joins_a_new_shard_into_the_topology() {
        let gw = GatewayConfig::new(Vec::<String>::new())
            .connect_timeout(Duration::from_millis(100))
            .build();
        assert_eq!(gw.shard_count(), 0);
        let ack = gw.undrain(&dead_addr(), Some(2.0));
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ack.get("joined").and_then(Json::as_bool), Some(true));
        assert_eq!(gw.shard_count(), 1);
        let snaps = gw.shard_snapshots();
        assert_eq!(snaps[0].weight, 2.0);
        assert!(!snaps[0].draining);
        // Joining the same address again is idempotent.
        let again = gw.undrain(&snaps[0].addr, None);
        assert_eq!(again.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gw.shard_count(), 1);
    }

    #[test]
    fn undrain_reweights_an_existing_shard() {
        let addr = dead_addr();
        let gw = GatewayConfig::new([addr.clone()])
            .connect_timeout(Duration::from_millis(100))
            .build();
        assert_eq!(gw.shard_snapshots()[0].weight, 1.0);
        let ack = gw.undrain(&addr, Some(3.0));
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ack.get("joined").and_then(Json::as_bool), Some(false));
        assert_eq!(ack.get("weight").and_then(Json::as_f64), Some(3.0));
        assert_eq!(gw.shard_snapshots()[0].weight, 3.0);
        // Without a weight the op leaves the current weight in place.
        let ack = gw.undrain(&addr, None);
        assert_eq!(ack.get("weight").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn traced_local_fallback_records_gateway_spans_and_journals() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let resp = gw.submit(&Request::new("r1", Stage::Estimate, GOOD, "k").traced("t-local"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let trace = resp.get("trace").expect("traced response carries a trace");
        assert_eq!(trace.get("id").and_then(Json::as_str), Some("t-local"));
        let Some(Json::Arr(spans)) = trace.get("spans") else {
            panic!("spans array");
        };
        // The gateway's own hop leads; the embedded server's stage
        // spans follow.
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("local"));
        assert_eq!(
            spans[0].get("detail").and_then(Json::as_str),
            Some("fallback")
        );
        assert!(spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("stage:est")));

        // The combined entry landed in the gateway's journal.
        let journal = SessionHost::trace_json(&gw);
        let Some(Json::Arr(entries)) = journal.get("entries") else {
            panic!("journal entries");
        };
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].get("trace").and_then(Json::as_str),
            Some("t-local")
        );
        assert!(entries[0].get("wall_us").and_then(Json::as_u64).is_some());

        // Untraced requests stay trace-free, and the merged stats
        // carry the local server's hist section.
        let bare = gw.submit(&Request::new("r2", Stage::Check, GOOD, "k"));
        assert!(bare.get("trace").is_none());
        let stats = gw.stats_json();
        assert!(stats.get("hist").is_some(), "local hist merged into agg");

        // Liveness summary: an empty cluster is still alive.
        let health = SessionHost::health_json(&gw);
        assert_eq!(health.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(health.get("shards_live").and_then(Json::as_u64), Some(0));
        assert_eq!(health.get("shards_dead").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn windows_and_slowlog_capture_untraced_routed_work() {
        let gw = GatewayConfig::new(Vec::<String>::new())
            .slow_threshold_ms(0)
            .build();
        let resp = gw.submit(&Request::new("r1", Stage::Estimate, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(resp.get("trace").is_none(), "untraced response stays bare");

        let stats = gw.stats_json();
        let gws = stats.get("gateway").unwrap();
        let window = gws.get("window").expect("gateway window section");
        assert_eq!(window.get("requests").and_then(Json::as_u64), Some(1));
        assert_eq!(window.get("errors").and_then(Json::as_u64), Some(0));
        assert!(window.get("rate").and_then(Json::as_f64).unwrap() > 0.0);
        assert_eq!(window.get("in_flight").and_then(Json::as_u64), Some(0));
        let journals = gws.get("journals").expect("gateway journals section");
        assert_eq!(
            journals.get("trace_dropped").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            journals.get("slowlog_dropped").and_then(Json::as_u64),
            Some(0)
        );

        // A zero threshold captured the request — spans and all —
        // without the client asking for a trace.
        let log = SessionHost::slowlog_json(&gw, 0);
        assert_eq!(log.get("last_seq").and_then(Json::as_u64), Some(1));
        let Some(Json::Arr(entries)) = log.get("entries") else {
            panic!("slowlog entries");
        };
        assert_eq!(entries.len(), 1);
        assert!(
            entries[0].get("trace").is_none(),
            "untraced capture carries no trace id"
        );
        assert_eq!(entries[0].get("id").and_then(Json::as_str), Some("r1"));
        let Some(Json::Arr(spans)) = entries[0].get("spans") else {
            panic!("span breakdown");
        };
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("local"));
        // Cursoring past the newest capture drains the view.
        let tail = SessionHost::slowlog_json(&gw, 1);
        let Some(Json::Arr(rest)) = tail.get("entries") else {
            panic!();
        };
        assert!(rest.is_empty());
        // Slow capture is not tracing: the trace journal stayed empty.
        let journal = SessionHost::trace_json(&gw);
        let Some(Json::Arr(traced)) = journal.get("entries") else {
            panic!();
        };
        assert!(traced.is_empty());

        // Health carries both drop counters for probes.
        let health = SessionHost::health_json(&gw);
        assert_eq!(health.get("trace_dropped").and_then(Json::as_u64), Some(0));
        assert_eq!(
            health.get("slowlog_dropped").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn shard_entries_carry_window_gauges() {
        let addr = dead_addr();
        let gw = GatewayConfig::new([addr])
            .connect_timeout(Duration::from_millis(100))
            .build();
        let stats = gw.stats_json();
        let Some(Json::Arr(shards)) = stats.get("gateway").and_then(|g| g.get("shards")) else {
            panic!("shards array");
        };
        let s = &shards[0];
        assert_eq!(s.get("window_routed").and_then(Json::as_u64), Some(0));
        assert_eq!(s.get("window_rate").and_then(Json::as_f64), Some(0.0));
        assert_eq!(s.get("window_p99_us").and_then(Json::as_f64), Some(0.0));
        // The whole object stays machine-parseable (no NaN leaks from
        // the empty windowed histogram).
        assert!(Json::parse(&stats.emit()).is_ok());
    }

    #[test]
    fn merge_sum_adds_numbers_and_unions_objects() {
        let mut acc = Json::parse(r#"{"a":1,"nested":{"x":2}}"#).unwrap();
        merge_sum(
            &mut acc,
            &Json::parse(r#"{"a":10,"nested":{"x":5,"y":7},"b":3}"#).unwrap(),
        );
        assert_eq!(acc.emit(), r#"{"a":11,"nested":{"x":7,"y":7},"b":3}"#);
    }
}
