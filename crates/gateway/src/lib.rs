//! # dahlia-gateway
//!
//! A sharded, fault-tolerant cluster front-end for the Dahlia compile
//! service. The pipeline is a deterministic function of the source
//! text — which is what made content-addressed caching and a
//! persistent networked server possible, and it is also exactly what
//! makes the service *shardable*: any replica can answer any request,
//! so the only interesting question is where each request's warm cache
//! should live. The gateway answers it with **rendezvous hashing on
//! the source digest** ([`hash`]): every source is pinned to one shard
//! while that shard is alive, so sweeps and repeated traffic hit warm
//! caches instead of recompiling on whichever replica the load
//! balancer picked.
//!
//! ## Architecture
//!
//! ```text
//!                    ┌────────────────────────┐   pooled, pipelined
//!  clients ──TCP──►  │  Gateway (SessionHost) │ ──TCP──► shard a1 (dahliac serve --listen)
//!  (dahliac batch)   │  · rendezvous router   │ ──TCP──► shard a2
//!                    │  · health checker      │ ──TCP──► shard a3
//!                    │  · local fallback      │
//!                    └────────────────────────┘
//! ```
//!
//! * One [`PipelinedClient`] per shard multiplexes every in-flight
//!   request over a single TCP session, correlated by wire id.
//! * A background health checker pings live shards and re-dials dead
//!   ones; a failed request poisons its shard's client immediately, so
//!   in-flight *and* future requests re-route to the next shard in
//!   rendezvous order without waiting for the next health tick.
//! * When no shard is reachable the gateway compiles **locally** in an
//!   embedded [`Server`] — an empty cluster degrades to PR 2's single
//!   process, never to an outage.
//!
//! The gateway is itself a [`SessionHost`], so
//! [`dahlia_server::serve_sessions`] gives it the same TCP front end,
//! graceful shutdown, and pipelined session semantics as `dahliac
//! serve` — clients cannot tell a gateway from a server, which is the
//! point.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dahlia_gateway::GatewayConfig;
//! use dahlia_server::{Request, Stage};
//!
//! let gw = GatewayConfig::new(["10.0.0.1:4500", "10.0.0.2:4500"]).build();
//! let resp = gw.submit(&Request::new("r1", Stage::Estimate, "let x = 1;", "k"));
//! assert!(resp.get("id").is_some());
//! ```

pub mod hash;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use dahlia_server::json::{obj, Json};
use dahlia_server::{source_digest, PipelinedClient, Pool, Request, Server, SessionHost};

/// Configuration for a [`Gateway`].
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    shards: Vec<String>,
    threads: Option<usize>,
    health_interval: Duration,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl GatewayConfig {
    /// A gateway over the given shard addresses (each a `dahliac serve
    /// --listen` endpoint). An empty list is legal: every request then
    /// falls back to local compilation.
    pub fn new<S: Into<String>>(shards: impl IntoIterator<Item = S>) -> GatewayConfig {
        GatewayConfig {
            shards: shards.into_iter().map(Into::into).collect(),
            threads: None,
            health_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_millis(1000),
            io_timeout: Duration::from_secs(30),
        }
    }

    /// Size of the gateway's dispatch pool (defaults to four slots per
    /// shard, clamped to 4..=32). Dispatch threads spend their lives
    /// blocked on shard I/O, so this bounds in-flight requests, not CPU.
    pub fn threads(mut self, n: usize) -> GatewayConfig {
        self.threads = Some(n.max(1));
        self
    }

    /// How often the health checker pings live shards and re-dials
    /// dead ones.
    pub fn health_interval(mut self, d: Duration) -> GatewayConfig {
        self.health_interval = d;
        self
    }

    /// Bound on each shard connection attempt.
    pub fn connect_timeout(mut self, d: Duration) -> GatewayConfig {
        self.connect_timeout = d;
        self
    }

    /// Bound on each in-flight shard call: a shard that stops
    /// answering (stopped process, silent partition — its TCP session
    /// stays up) is declared dead after this long, releasing its
    /// in-flight requests to re-route. Must exceed the slowest
    /// legitimate compile.
    pub fn io_timeout(mut self, d: Duration) -> GatewayConfig {
        self.io_timeout = d;
        self
    }

    /// Build the gateway: dial every shard (concurrently, best-effort)
    /// and start the health checker.
    pub fn build(self) -> Gateway {
        let threads = self
            .threads
            .unwrap_or_else(|| (self.shards.len() * 4).clamp(4, 32));
        let inner = Arc::new(GwInner {
            ids: self.shards.clone(),
            shards: self
                .shards
                .iter()
                .map(|addr| Shard::new(addr.clone(), self.connect_timeout, self.io_timeout))
                .collect(),
            requests: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            local_fallbacks: AtomicU64::new(0),
            local: OnceLock::new(),
        });
        // Initial dial, in parallel: one dead address must not make
        // every other shard wait out its connect timeout.
        std::thread::scope(|s| {
            for shard in &inner.shards {
                s.spawn(|| {
                    shard.connect();
                });
            }
        });
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let t_inner = Arc::clone(&inner);
        let t_stop = Arc::clone(&stop);
        let interval = self.health_interval;
        let checker = std::thread::Builder::new()
            .name("dahlia-gateway-health".into())
            .spawn(move || loop {
                {
                    let (lock, cv) = &*t_stop;
                    let stopped = cv
                        .wait_timeout_while(lock.lock().unwrap(), interval, |stop| !*stop)
                        .unwrap()
                        .0;
                    if *stopped {
                        return;
                    }
                }
                t_inner.health_pass();
            })
            .ok();
        Gateway {
            inner,
            pool: Pool::new(threads),
            stop,
            checker,
        }
    }
}

/// One backend shard: its address, its pooled connection, and its
/// routing counters.
struct Shard {
    addr: String,
    connect_timeout: Duration,
    io_timeout: Duration,
    client: Mutex<Option<Arc<PipelinedClient>>>,
    /// Requests dispatched to this shard (including ones that failed).
    routed: AtomicU64,
    /// Dispatches that failed here (connection died mid-call).
    failed: AtomicU64,
    /// Dispatches that landed here after failing on a preferred shard.
    retried: AtomicU64,
    /// Last stats object successfully polled from this shard; dead
    /// shards keep contributing their final snapshot to the aggregate.
    last_stats: Mutex<Option<Json>>,
}

impl Shard {
    fn new(addr: String, connect_timeout: Duration, io_timeout: Duration) -> Shard {
        Shard {
            addr,
            connect_timeout,
            io_timeout,
            client: Mutex::new(None),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            last_stats: Mutex::new(None),
        }
    }

    /// The live pooled client, if the shard is up.
    fn live(&self) -> Option<Arc<PipelinedClient>> {
        let guard = self.client.lock().unwrap();
        match &*guard {
            Some(c) if !c.is_dead() => Some(Arc::clone(c)),
            _ => None,
        }
    }

    /// (Re)dial unless already connected. Returns liveness.
    ///
    /// The dial happens *outside* the client mutex: a black-holed
    /// address makes each attempt last the full connect timeout, and
    /// holding the lock that long would stall every `live()` check —
    /// i.e. the router's ability to *skip* the dead shard — for the
    /// duration. Two concurrent dials are harmless (last one wins; the
    /// loser is dropped and poisoned).
    fn connect(&self) -> bool {
        if self.live().is_some() {
            return true;
        }
        match PipelinedClient::connect_timeout(self.addr.as_str(), self.connect_timeout) {
            Ok(c) => {
                let client = Arc::new(c.with_io_timeout(self.io_timeout));
                *self.client.lock().unwrap() = Some(client);
                true
            }
            Err(_) => {
                // Drop a poisoned handle so `live()` stays cheap.
                let mut guard = self.client.lock().unwrap();
                if matches!(&*guard, Some(c) if c.is_dead()) {
                    *guard = None;
                }
                false
            }
        }
    }

    /// Ping a live shard for stats, refreshing the snapshot. `None`
    /// when the shard is down (the failed call poisons the client).
    fn poll_stats(&self) -> Option<Json> {
        let client = self.live()?;
        match client.stats() {
            Ok(s) => {
                *self.last_stats.lock().unwrap() = Some(s.clone());
                Some(s)
            }
            Err(_) => None,
        }
    }
}

struct GwInner {
    /// Shard addresses, in configuration order (the hash domain).
    ids: Vec<String>,
    shards: Vec<Shard>,
    requests: AtomicU64,
    /// Requests that failed on at least one shard and were re-routed.
    rerouted: AtomicU64,
    /// Requests answered by the embedded local server.
    local_fallbacks: AtomicU64,
    local: OnceLock<Server>,
}

impl GwInner {
    fn local(&self) -> &Server {
        // Lazy: a healthy cluster never pays for the fallback pool.
        self.local.get_or_init(Server::new)
    }

    fn health_pass(&self) {
        for shard in &self.shards {
            if shard.live().is_some() {
                shard.poll_stats();
            } else {
                shard.connect();
            }
        }
    }

    /// Route one request: try shards in rendezvous order, skipping dead
    /// ones and poisoning/skipping any that fail mid-call; compile
    /// locally when nothing is reachable.
    fn submit(&self, req: &Request) -> Json {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let key = source_digest(&req.source);
        let mut failed_before = false;
        for i in hash::rank(key, &self.ids) {
            let shard = &self.shards[i];
            let Some(client) = shard.live() else { continue };
            shard.routed.fetch_add(1, Ordering::Relaxed);
            if failed_before {
                shard.retried.fetch_add(1, Ordering::Relaxed);
            }
            match client.call(req) {
                Ok(resp) => {
                    if failed_before {
                        self.rerouted.fetch_add(1, Ordering::Relaxed);
                    }
                    return resp;
                }
                Err(_) => {
                    // The client poisoned itself; the next live shard
                    // in rendezvous order inherits this key (and every
                    // other key this shard owned).
                    shard.failed.fetch_add(1, Ordering::Relaxed);
                    failed_before = true;
                }
            }
        }
        self.local_fallbacks.fetch_add(1, Ordering::Relaxed);
        if failed_before {
            self.rerouted.fetch_add(1, Ordering::Relaxed);
        }
        self.local().submit(req.clone()).to_json()
    }

    /// The cluster-wide stats object: the numeric sum of every shard's
    /// stats (live shards are polled; dead ones contribute their last
    /// snapshot) plus the embedded local server's, with a `gateway`
    /// section carrying routing state. Shaped like a single server's
    /// stats, so existing clients (`dahliac batch`) read it unchanged.
    fn stats_json(&self) -> Json {
        let mut agg = Json::Obj(Vec::new());
        let mut shard_objs = Vec::new();
        let mut live = 0u64;
        for shard in &self.shards {
            let polled = shard.poll_stats();
            let alive = polled.is_some();
            if alive {
                live += 1;
            }
            let snapshot = polled.or_else(|| shard.last_stats.lock().unwrap().clone());
            if let Some(s) = &snapshot {
                merge_sum(&mut agg, s);
            }
            shard_objs.push(obj([
                ("addr", Json::Str(shard.addr.clone())),
                ("alive", Json::Bool(alive)),
                (
                    "routed",
                    Json::Num(shard.routed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "failed",
                    Json::Num(shard.failed.load(Ordering::Relaxed) as f64),
                ),
                (
                    "retried",
                    Json::Num(shard.retried.load(Ordering::Relaxed) as f64),
                ),
            ]));
        }
        if let Some(local) = self.local.get() {
            merge_sum(&mut agg, &local.stats().to_json());
        }
        let gateway = obj([
            (
                "requests",
                Json::Num(self.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "rerouted",
                Json::Num(self.rerouted.load(Ordering::Relaxed) as f64),
            ),
            (
                "local_fallbacks",
                Json::Num(self.local_fallbacks.load(Ordering::Relaxed) as f64),
            ),
            ("shards_live", Json::Num(live as f64)),
            ("shards", Json::Arr(shard_objs)),
        ]);
        if let Json::Obj(fields) = &mut agg {
            fields.push(("gateway".to_string(), gateway));
        }
        agg
    }
}

/// Numeric deep-merge: numbers add, objects merge recursively (keys
/// the accumulator lacks are appended in the contributor's order), and
/// everything else keeps the accumulator's value. Summing per-shard
/// stats this way survives counter additions without a schema here.
fn merge_sum(acc: &mut Json, add: &Json) {
    match (acc, add) {
        (Json::Num(a), Json::Num(b)) => *a += *b,
        (Json::Obj(af), Json::Obj(bf)) => {
            for (k, v) in bf {
                match af.iter_mut().find(|(ak, _)| ak == k) {
                    Some((_, slot)) => merge_sum(slot, v),
                    None => af.push((k.clone(), v.clone())),
                }
            }
        }
        _ => {}
    }
}

/// A point-in-time view of one shard, for tests, benches, and the CLI
/// summary line.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The shard's address as configured.
    pub addr: String,
    /// Is the pooled connection up right now?
    pub alive: bool,
    /// Requests dispatched to this shard.
    pub routed: u64,
    /// Dispatches that failed here.
    pub failed: u64,
    /// Dispatches that landed here after failing elsewhere.
    pub retried: u64,
    /// The shard server's own stats, as last successfully polled.
    pub stats: Option<Json>,
}

/// The cluster router. See the crate docs for the architecture.
pub struct Gateway {
    inner: Arc<GwInner>,
    pool: Pool,
    stop: Arc<(Mutex<bool>, Condvar)>,
    checker: Option<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Route one request and block for its response line (as JSON, with
    /// the caller's id). Never errors: a fully-dead cluster compiles
    /// locally.
    pub fn submit(&self, req: &Request) -> Json {
        self.inner.submit(req)
    }

    /// Run one synchronous health pass (what the background checker
    /// does every interval): poll live shards, re-dial dead ones.
    pub fn check_now(&self) {
        self.inner.health_pass();
    }

    /// Number of shards whose pooled connection is currently live.
    pub fn live_shards(&self) -> usize {
        self.inner
            .shards
            .iter()
            .filter(|s| s.live().is_some())
            .count()
    }

    /// Total shard count (live or not).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Requests routed so far (including local fallbacks).
    pub fn requests(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Requests that failed on some shard and were re-routed.
    pub fn rerouted(&self) -> u64 {
        self.inner.rerouted.load(Ordering::Relaxed)
    }

    /// Requests answered by the embedded local server.
    pub fn local_fallbacks(&self) -> u64 {
        self.inner.local_fallbacks.load(Ordering::Relaxed)
    }

    /// Per-shard state, refreshing each live shard's stats snapshot.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                let polled = s.poll_stats();
                ShardSnapshot {
                    addr: s.addr.clone(),
                    alive: polled.is_some(),
                    routed: s.routed.load(Ordering::Relaxed),
                    failed: s.failed.load(Ordering::Relaxed),
                    retried: s.retried.load(Ordering::Relaxed),
                    stats: polled.or_else(|| s.last_stats.lock().unwrap().clone()),
                }
            })
            .collect()
    }

    /// The aggregated stats object (see [`SessionHost::stats_json`]).
    pub fn stats_json(&self) -> Json {
        self.inner.stats_json()
    }
}

impl SessionHost for Gateway {
    fn dispatch(&self, req: Request, respond: Box<dyn FnOnce(String) + Send>) {
        let inner = Arc::clone(&self.inner);
        self.pool.execute(move || {
            respond(inner.submit(&req).emit());
        });
    }

    fn stats_json(&self) -> Json {
        self.inner.stats_json()
    }

    fn dispatch_stats(&self, respond: Box<dyn FnOnce(Json) + Send>) {
        // Gateway stats poll every shard over the network; that must
        // not run on the session's read loop (a slow shard would stall
        // every request line queued behind the stats op).
        let inner = Arc::clone(&self.inner);
        self.pool.execute(move || {
            respond(inner.stats_json());
        });
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        if let Some(handle) = self.checker.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dahlia_server::Stage;

    const GOOD: &str = "let A: float[8 bank 4];\nfor (let i = 0..8) unroll 4 { A[i] := 1.0; }";

    /// A port with nothing behind it: bind, read the address, drop.
    fn dead_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    #[test]
    fn empty_cluster_compiles_locally() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let resp = gw.submit(&Request::new("r1", Stage::Estimate, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(gw.local_fallbacks(), 1);
        let stats = gw.stats_json();
        assert_eq!(stats.get("requests").and_then(Json::as_u64), Some(1));
        let gws = stats.get("gateway").unwrap();
        assert_eq!(gws.get("shards_live").and_then(Json::as_u64), Some(0));
        assert_eq!(gws.get("local_fallbacks").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn all_shards_dead_falls_back_locally() {
        let gw = GatewayConfig::new([dead_addr(), dead_addr()])
            .connect_timeout(Duration::from_millis(200))
            .build();
        assert_eq!(gw.live_shards(), 0);
        let resp = gw.submit(&Request::new("r1", Stage::Check, GOOD, "k"));
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(gw.local_fallbacks(), 1);
        // Dead shards never received anything.
        for s in gw.shard_snapshots() {
            assert!(!s.alive);
            assert_eq!(s.routed, 0);
        }
    }

    #[test]
    fn merge_sum_adds_numbers_and_unions_objects() {
        let mut acc = Json::parse(r#"{"a":1,"nested":{"x":2}}"#).unwrap();
        merge_sum(
            &mut acc,
            &Json::parse(r#"{"a":10,"nested":{"x":5,"y":7},"b":3}"#).unwrap(),
        );
        assert_eq!(acc.emit(), r#"{"a":11,"nested":{"x":7,"y":7},"b":3}"#);
    }
}
