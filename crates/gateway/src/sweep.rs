//! The cluster `sweep` executor: distributed design-space exploration.
//!
//! A `{"op":"sweep"}` control line names a templated kernel and a
//! parameter space ([`SweepSpec`]); this module renders every point,
//! scatters the evaluations across the shard set through the gateway's
//! ordinary routing (rendezvous placement, admission cache, fail-over,
//! replication — a sweep point is just a request), and folds the
//! results through a streaming [`ParetoFront`]. Three properties carry
//! the subsystem:
//!
//! * **Durability.** Every completed point is appended to a crash-safe
//!   journal (the [`Tsdb`] record format, retention disabled) keyed by
//!   the *rendered source digest*. A gateway killed mid-sweep resumes
//!   with `"resume":true`: journaled points are folded straight into
//!   the front and never re-dispatched — zero recomputed points.
//! * **Determinism.** A Pareto front of a *set* is insertion-order
//!   independent and key-deduplicated (see `dahlia_dse::pareto`), so
//!   the final front is byte-identical whether the sweep ran once,
//!   was resumed, or completed its shards in any order.
//! * **Streaming.** Clients get incremental `"done":false` front
//!   updates every `update_every` completions over the same pipelined
//!   session, then one final `"done":true` summary.
//!
//! Opt-in pruning (`"prune":true`) samples the first point of each
//! innermost-axis region, fronts the samples, and skips regions whose
//! sample is strictly dominated — trading exhaustiveness for time on
//! monotone spaces. The summary reports what was skipped and the
//! evaluation time the cost model (mean observed per-point wall time)
//! estimates was saved; the kill/resume path keeps pruning off.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dahlia_dse::{point_digest, render, ParetoFront, SweepSpec};
use dahlia_obs::{Tsdb, TsdbOptions};
use dahlia_server::json::{obj, Json};
use dahlia_server::{Request, Stage};

use crate::GwInner;

/// Lifetime sweep counters, surfaced as the `gateway.sweeps` stats
/// section (and thus `/metrics` and `dahliac top`).
#[derive(Default)]
pub(crate) struct SweepCounters {
    /// Sweep ops accepted (including ones that later failed).
    started: AtomicU64,
    /// Sweeps that emitted their final summary.
    completed: AtomicU64,
    /// Sweeps that ran with `"resume":true`.
    resumed: AtomicU64,
    /// Points across all sweeps (after striding).
    points_total: AtomicU64,
    /// Points actually evaluated (dispatched through the router).
    points_done: AtomicU64,
    /// Points answered from the journal on resume — never dispatched.
    points_skipped: AtomicU64,
    /// Points skipped by dominance pruning.
    points_pruned: AtomicU64,
    /// Evaluated points answered warm (admission cache or shard cache).
    cache_hits: AtomicU64,
    /// Evaluated points whose compile was rejected (no objectives).
    point_failures: AtomicU64,
    /// Most recent sweep's completion rate, f64 bits.
    last_points_per_s: AtomicU64,
}

impl SweepCounters {
    pub(crate) fn to_json(&self) -> Json {
        obj([
            (
                "started",
                Json::Num(self.started.load(Ordering::Relaxed) as f64),
            ),
            (
                "completed",
                Json::Num(self.completed.load(Ordering::Relaxed) as f64),
            ),
            (
                "resumed",
                Json::Num(self.resumed.load(Ordering::Relaxed) as f64),
            ),
            (
                "points_total",
                Json::Num(self.points_total.load(Ordering::Relaxed) as f64),
            ),
            (
                "points_done",
                Json::Num(self.points_done.load(Ordering::Relaxed) as f64),
            ),
            (
                "points_skipped",
                Json::Num(self.points_skipped.load(Ordering::Relaxed) as f64),
            ),
            (
                "points_pruned",
                Json::Num(self.points_pruned.load(Ordering::Relaxed) as f64),
            ),
            (
                "cache_hits",
                Json::Num(self.cache_hits.load(Ordering::Relaxed) as f64),
            ),
            (
                "point_failures",
                Json::Num(self.point_failures.load(Ordering::Relaxed) as f64),
            ),
            (
                "last_points_per_s",
                Json::Num(f64::from_bits(
                    self.last_points_per_s.load(Ordering::Relaxed),
                )),
            ),
        ])
    }
}

/// One design point of the sweep, fully rendered.
struct Point {
    /// FNV digest of the rendered source — the journal identity.
    digest: u128,
    /// Canonical `name=value,...` config string — the front key.
    key: String,
    /// Rendered Dahlia source.
    source: String,
    /// Config string minus the innermost axis — the pruning region.
    region: String,
}

/// A journaled completion, replayed on resume.
struct Replayed {
    digest: u128,
    key: String,
    /// `None` for a point whose compile was rejected.
    objectives: Option<Vec<f64>>,
}

/// Shared fan-out state: the running front, the journal handle, and
/// the per-sweep counters the incremental updates report.
struct SweepState<'a> {
    inner: &'a Arc<GwInner>,
    op_id: String,
    name: String,
    stage: Stage,
    update_every: u64,
    total: u64,
    skipped: u64,
    journal: Option<Tsdb>,
    front: Mutex<ParetoFront>,
    done: AtomicU64,
    cache_hits: AtomicU64,
    failures: AtomicU64,
    pruned: AtomicU64,
}

/// Execute one sweep op end to end, emitting zero or more
/// `"done":false` progress lines and exactly one final line.
pub(crate) fn run_sweep(inner: &Arc<GwInner>, op: dahlia_server::SweepOp, emit: &EmitFn) {
    let t0 = Instant::now();
    inner.sweeps.started.fetch_add(1, Ordering::Relaxed);
    if op.resume {
        inner.sweeps.resumed.fetch_add(1, Ordering::Relaxed);
    }
    let spec = SweepSpec {
        name: op.name.clone(),
        template: op.template.clone(),
        params: op.params.clone(),
        stage: op.stage.clone(),
        stride: op.stride,
    };
    if let Err(msg) = spec.validate() {
        emit(error_line(&op.id, "sweep/invalid-spec", &msg), true);
        return;
    }
    // `parse_sweep` validated the stage name; a default host could
    // still hand us junk, so fail shaped rather than panicking.
    let Some(stage) = Stage::from_name(&op.stage) else {
        emit(
            error_line(&op.id, "sweep/invalid-spec", "unknown stage"),
            true,
        );
        return;
    };

    // Render the whole space up front: any failure is a spec bug that
    // affects every point identically, so it fails the sweep, not one
    // point.
    let innermost = spec
        .params
        .last()
        .map(|(n, _)| n.clone())
        .unwrap_or_default();
    let mut points = Vec::new();
    for cfg in spec.points() {
        let source = match render(&spec.template, &cfg) {
            Ok(s) => s,
            Err(msg) => {
                emit(error_line(&op.id, "sweep/render-failed", &msg), true);
                return;
            }
        };
        let key = cfg
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        let region = cfg
            .iter()
            .filter(|(k, _)| **k != innermost)
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",");
        points.push(Point {
            digest: point_digest(&source),
            key,
            source,
            region,
        });
    }

    // Durable progress: each sweep gets its own journal directory
    // keyed by the spec digest, so resuming a *different* sweep can
    // never replay this one's points.
    let (journal, replayed) = match open_journal(inner, &spec, op.resume) {
        Ok(pair) => pair,
        Err(e) => {
            emit(
                error_line(&op.id, "sweep/journal-failed", &e.to_string()),
                true,
            );
            return;
        }
    };

    // Fold journaled completions into the front and drop them from the
    // work list: the zero-recompute half of the resume contract.
    let mut front = ParetoFront::new();
    let mut done_digests = std::collections::HashSet::new();
    for r in &replayed {
        done_digests.insert(r.digest);
    }
    let mut todo = Vec::new();
    let mut skipped = 0u64;
    for p in points {
        if done_digests.contains(&p.digest) {
            skipped += 1;
        } else {
            todo.push(p);
        }
    }
    let mut journal_failures = 0u64;
    for r in replayed {
        match r.objectives {
            Some(o) => {
                front.insert(r.key, o);
            }
            None => journal_failures += 1,
        }
    }

    let state = SweepState {
        inner,
        op_id: op.id.clone(),
        name: op.name.clone(),
        stage,
        update_every: op.update_every,
        total: (todo.len() as u64) + skipped,
        skipped,
        journal,
        front: Mutex::new(front),
        done: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        failures: AtomicU64::new(journal_failures),
        pruned: AtomicU64::new(0),
    };

    if op.prune {
        // Pass 1: evaluate one sample per innermost-axis region.
        let mut samples = Vec::new();
        let mut rest = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for p in todo {
            if seen.insert(p.region.clone()) {
                samples.push(p);
            } else {
                rest.push(p);
            }
        }
        evaluate(&state, &samples, emit);
        // Pass 2: a region whose sample the sample-front strictly
        // dominates cannot contribute a front point under a monotone
        // cost model — skip it wholesale.
        let sample_front = state.front.lock().unwrap().clone();
        let dominated: std::collections::HashSet<String> = samples
            .iter()
            .filter_map(|s| {
                let e = sample_front
                    .entries()
                    .into_iter()
                    .find(|e| e.key == s.key)?;
                sample_front.dominates_point(&e.objectives).then_some(())?;
                Some(s.region.clone())
            })
            .collect();
        let (pruned, live): (Vec<Point>, Vec<Point>) = rest
            .into_iter()
            .partition(|p| dominated.contains(&p.region));
        state
            .pruned
            .fetch_add(pruned.len() as u64, Ordering::Relaxed);
        evaluate(&state, &live, emit);
    } else {
        evaluate(&state, &todo, emit);
    }

    // Global accounting, then the final summary.
    let done = state.done.load(Ordering::Relaxed);
    let pruned = state.pruned.load(Ordering::Relaxed);
    let cache_hits = state.cache_hits.load(Ordering::Relaxed);
    let failures = state.failures.load(Ordering::Relaxed);
    let elapsed_ms = t0.elapsed().as_millis() as u64;
    let pps = if elapsed_ms > 0 {
        done as f64 / (elapsed_ms as f64 / 1_000.0)
    } else {
        done as f64
    };
    let g = &inner.sweeps;
    g.completed.fetch_add(1, Ordering::Relaxed);
    g.points_total.fetch_add(state.total, Ordering::Relaxed);
    g.points_done.fetch_add(done, Ordering::Relaxed);
    g.points_skipped.fetch_add(skipped, Ordering::Relaxed);
    g.points_pruned.fetch_add(pruned, Ordering::Relaxed);
    g.cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
    g.point_failures.fetch_add(failures, Ordering::Relaxed);
    g.last_points_per_s.store(pps.to_bits(), Ordering::Relaxed);

    let mean_point_ms = if done > 0 {
        elapsed_ms as f64 / done as f64
    } else {
        0.0
    };
    let front_json: Vec<Json> = state
        .front
        .lock()
        .unwrap()
        .entries()
        .into_iter()
        .map(|e| {
            obj([
                ("key", Json::Str(e.key)),
                (
                    "objectives",
                    Json::Arr(e.objectives.into_iter().map(Json::Num).collect()),
                ),
            ])
        })
        .collect();
    let line = obj([
        ("id", Json::Str(op.id.clone())),
        ("ok", Json::Bool(true)),
        ("done", Json::Bool(true)),
        (
            "sweep",
            obj([
                ("name", Json::Str(op.name.clone())),
                ("stage", Json::Str(op.stage)),
                ("points_total", Json::Num(state.total as f64)),
                ("points_done", Json::Num(done as f64)),
                ("points_skipped", Json::Num(skipped as f64)),
                ("points_pruned", Json::Num(pruned as f64)),
                ("cache_hits", Json::Num(cache_hits as f64)),
                ("point_failures", Json::Num(failures as f64)),
                ("elapsed_ms", Json::Num(elapsed_ms as f64)),
                ("points_per_s", Json::Num(pps)),
                // The cost model's estimate of evaluation time pruning
                // saved: pruned points × mean observed per-point wall
                // time this sweep.
                ("est_saved_ms", Json::Num(pruned as f64 * mean_point_ms)),
                ("front_size", Json::Num(front_json.len() as f64)),
                ("front", Json::Arr(front_json)),
            ]),
        ),
    ])
    .emit();
    emit(line, true);
}

/// The emit callback type [`run_sweep`] streams lines through.
pub(crate) type EmitFn = dyn Fn(String, bool) + Send + Sync;

/// Scatter `pts` across the cluster and fold completions into the
/// shared state. Points are ordered by rendezvous owner first so each
/// shard sees its whole batch as one contiguous pipelined burst, then
/// pulled off a shared cursor by a small worker pool.
fn evaluate(state: &SweepState<'_>, pts: &[Point], emit: &EmitFn) {
    if pts.is_empty() {
        return;
    }
    let mut order: Vec<usize> = (0..pts.len()).collect();
    let owners: Vec<String> = pts
        .iter()
        .map(|p| {
            state
                .inner
                .candidates(dahlia_server::source_digest(&p.source))
                .first()
                .map(|s| s.addr.clone())
                .unwrap_or_default()
        })
        .collect();
    order.sort_by(|&a, &b| owners[a].cmp(&owners[b]).then(a.cmp(&b)));
    let shard_count = state.inner.shards().len();
    let workers = (shard_count.max(1) * 2).clamp(2, 12).min(pts.len());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= order.len() {
                    break;
                }
                let p = &pts[order[i]];
                let req = Request::new(
                    format!("{}:{:032x}", state.op_id, p.digest),
                    state.stage,
                    p.source.as_str(),
                    state.name.as_str(),
                );
                let resp = state.inner.submit(&req);
                let ok = resp.get("ok").and_then(Json::as_bool) == Some(true);
                if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                    state.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                let objectives = if ok { objectives_of(&resp) } else { None };
                if let Some(tsdb) = &state.journal {
                    let record = journal_record(p.digest, &p.key, objectives.as_deref());
                    tsdb.append(state.inner.clock.now_ms(), record.as_bytes());
                }
                match objectives {
                    Some(o) => {
                        state.front.lock().unwrap().insert(p.key.clone(), o);
                    }
                    None => {
                        state.failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let n = state.done.fetch_add(1, Ordering::Relaxed) + 1;
                if state.update_every > 0 && n.is_multiple_of(state.update_every) {
                    emit(progress_line(state, n), false);
                }
            });
        }
    });
}

/// The five minimization objectives of an est-stage response, in the
/// paper's order: cycles, LUTs, FFs, BRAMs, DSPs. `None` when the
/// payload has no estimate (non-est stage, or a shape mismatch).
fn objectives_of(resp: &Json) -> Option<Vec<f64>> {
    let est = resp.get("estimate")?;
    Some(vec![
        est.get("cycles")?.as_f64()?,
        est.get("luts")?.as_f64()?,
        est.get("ffs")?.as_f64()?,
        est.get("brams")?.as_f64()?,
        est.get("dsps")?.as_f64()?,
    ])
}

/// One `"done":false` incremental update.
fn progress_line(state: &SweepState<'_>, done: u64) -> String {
    obj([
        ("id", Json::Str(state.op_id.clone())),
        ("ok", Json::Bool(true)),
        ("done", Json::Bool(false)),
        (
            "sweep",
            obj([
                ("name", Json::Str(state.name.clone())),
                ("points_total", Json::Num(state.total as f64)),
                ("points_done", Json::Num(done as f64)),
                ("points_skipped", Json::Num(state.skipped as f64)),
                (
                    "points_pruned",
                    Json::Num(state.pruned.load(Ordering::Relaxed) as f64),
                ),
                (
                    "cache_hits",
                    Json::Num(state.cache_hits.load(Ordering::Relaxed) as f64),
                ),
                (
                    "front_size",
                    Json::Num(state.front.lock().unwrap().len() as f64),
                ),
            ]),
        ),
    ])
    .emit()
}

/// The final error line of a sweep that could not run.
fn error_line(id: &str, code: &str, message: &str) -> String {
    obj([
        ("id", Json::Str(id.into())),
        ("ok", Json::Bool(false)),
        ("done", Json::Bool(true)),
        (
            "error",
            obj([
                ("phase", Json::Str("sweep".into())),
                ("code", Json::Str(code.into())),
                ("message", Json::Str(message.into())),
            ]),
        ),
    ])
    .emit()
}

/// One journal record: the point's identity, front key, and outcome.
/// `objectives` is absent for rejected points — they are still
/// journaled so resume never re-dispatches them.
fn journal_record(digest: u128, key: &str, objectives: Option<&[f64]>) -> String {
    let mut fields = vec![
        ("point".to_string(), Json::Str(format!("{digest:032x}"))),
        ("key".to_string(), Json::Str(key.to_string())),
        ("ok".to_string(), Json::Bool(objectives.is_some())),
    ];
    if let Some(o) = objectives {
        fields.push((
            "objectives".to_string(),
            Json::Arr(o.iter().copied().map(Json::Num).collect()),
        ));
    }
    Json::Obj(fields).emit()
}

/// Open (or, on a fresh run, reset) the sweep's journal and replay any
/// completed points. Without a telemetry dir the sweep runs fine but
/// is not durable — there is nowhere to journal to.
#[allow(clippy::type_complexity)]
fn open_journal(
    inner: &Arc<GwInner>,
    spec: &SweepSpec,
    resume: bool,
) -> std::io::Result<(Option<Tsdb>, Vec<Replayed>)> {
    let Some(root) = &inner.telemetry_dir else {
        return Ok((None, Vec::new()));
    };
    let dir = root.join(format!("sweep-{:032x}", spec.digest()));
    if !resume {
        // A fresh (non-resume) sweep starts a fresh journal; stale
        // records would otherwise mark its points already done.
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Retention must never drop resume data: a sweep journal is not a
    // ring, it is a log the final summary retires.
    let tsdb = Tsdb::open_with(
        &dir,
        TsdbOptions {
            segment_bytes: 1 << 20,
            retain_bytes: u64::MAX,
        },
    )?;
    let mut replayed = Vec::new();
    if resume {
        for (_t, payload) in tsdb.scan_since(0) {
            let Ok(text) = String::from_utf8(payload) else {
                continue;
            };
            let Ok(v) = Json::parse(&text) else { continue };
            let Some(digest) = v
                .get("point")
                .and_then(Json::as_str)
                .and_then(|h| u128::from_str_radix(h, 16).ok())
            else {
                continue;
            };
            let Some(key) = v.get("key").and_then(Json::as_str) else {
                continue;
            };
            let ok = v.get("ok").and_then(Json::as_bool) == Some(true);
            let objectives = if ok {
                match v.get("objectives") {
                    Some(Json::Arr(items)) => {
                        let o: Option<Vec<f64>> = items.iter().map(Json::as_f64).collect();
                        o
                    }
                    _ => None,
                }
            } else {
                None
            };
            replayed.push(Replayed {
                digest,
                key: key.to_string(),
                objectives,
            });
        }
    }
    Ok((Some(tsdb), replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatewayConfig;
    use std::sync::mpsc;

    /// A small two-parameter space over a bank/unroll template; every
    /// config is legal Dahlia and estimates distinct costs.
    fn small_op(id: &str, resume: bool, update_every: u64) -> dahlia_server::SweepOp {
        dahlia_server::SweepOp {
            id: id.to_string(),
            name: "sweep-test".to_string(),
            template: "let A: float[8 bank ${b}];\n\
                       for (let i = 0..8) unroll ${u} { A[i] := 1.0; }"
                .to_string(),
            params: vec![
                ("b".to_string(), vec![1, 2, 4]),
                ("u".to_string(), vec![1, 2, 4]),
            ],
            stage: "est".to_string(),
            stride: 1,
            resume,
            prune: false,
            update_every,
        }
    }

    /// Drive a sweep synchronously, collecting every emitted line.
    fn run(gw: &crate::Gateway, op: dahlia_server::SweepOp) -> Vec<(String, bool)> {
        let (tx, rx) = mpsc::channel();
        run_sweep(&gw.inner, op, &move |line: String, done: bool| {
            let _ = tx.send((line, done));
        });
        rx.try_iter().collect()
    }

    #[test]
    fn local_sweep_streams_updates_and_fronts_the_space() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let lines = run(&gw, small_op("s1", false, 2));
        let (last, fin) = lines.last().unwrap();
        assert!(fin, "last line is final");
        // Incremental updates: 9 points, one update every 2.
        assert!(lines.len() > 1, "streamed incremental updates");
        for (l, done) in &lines[..lines.len() - 1] {
            assert!(!done);
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("done").and_then(Json::as_bool), Some(false));
        }
        let v = Json::parse(last).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("done").and_then(Json::as_bool), Some(true));
        let s = v.get("sweep").unwrap();
        assert_eq!(s.get("points_total").and_then(Json::as_u64), Some(9));
        assert_eq!(s.get("points_done").and_then(Json::as_u64), Some(9));
        assert_eq!(s.get("points_skipped").and_then(Json::as_u64), Some(0));
        let front = s.get("front_size").and_then(Json::as_u64).unwrap();
        assert!(front >= 1, "at least one non-dominated point");
        // Stats picked the sweep up.
        let stats = gw.stats_json();
        let sweeps = stats.get("gateway").unwrap().get("sweeps").unwrap();
        assert_eq!(sweeps.get("completed").and_then(Json::as_u64), Some(1));
        assert_eq!(sweeps.get("points_done").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn resume_replays_the_journal_and_recomputes_nothing() {
        let dir = std::env::temp_dir().join(format!(
            "dahlia-sweep-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        // Run 1: full sweep, journaling along the way.
        let front_a = {
            let gw = GatewayConfig::new(Vec::<String>::new())
                .telemetry_dir(&dir)
                .build();
            let lines = run(&gw, small_op("s1", false, 0));
            let v = Json::parse(&lines.last().unwrap().0).unwrap();
            v.get("sweep").unwrap().get("front").unwrap().emit()
        };
        // Run 2: a fresh gateway (the "restarted" process) resumes
        // from the same journal: every point skips, the front comes
        // back byte-identical, and nothing touches the router.
        {
            let gw = GatewayConfig::new(Vec::<String>::new())
                .telemetry_dir(&dir)
                .build();
            let before = gw.requests();
            let lines = run(&gw, small_op("s2", true, 0));
            let v = Json::parse(&lines.last().unwrap().0).unwrap();
            let s = v.get("sweep").unwrap();
            assert_eq!(s.get("points_skipped").and_then(Json::as_u64), Some(9));
            assert_eq!(s.get("points_done").and_then(Json::as_u64), Some(0));
            assert_eq!(s.get("front").unwrap().emit(), front_a);
            assert_eq!(gw.requests(), before, "zero points re-dispatched");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_spec_fails_with_a_shaped_error() {
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let mut op = small_op("bad", false, 0);
        op.template = "let A: float[${missing}];".to_string();
        let lines = run(&gw, op);
        assert_eq!(lines.len(), 1);
        let (line, fin) = &lines[0];
        assert!(fin);
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("sweep/invalid-spec")
        );
    }

    #[test]
    fn pruning_skips_dominated_regions_deterministically() {
        // `u` is the innermost axis; the `b=8` region wastes resources
        // at every unroll (more banks, same cycles at u=1), so its
        // sample is dominated and the region prunes.
        let gw = GatewayConfig::new(Vec::<String>::new()).build();
        let mut op = small_op("p1", false, 0);
        op.prune = true;
        let lines = run(&gw, op);
        let v = Json::parse(&lines.last().unwrap().0).unwrap();
        let s = v.get("sweep").unwrap();
        let done = s.get("points_done").and_then(Json::as_u64).unwrap();
        let pruned = s.get("points_pruned").and_then(Json::as_u64).unwrap();
        assert_eq!(done + pruned, 9, "every point evaluated or pruned");
    }
}
