//! Cluster integration tests: real TCP shards, a real gateway, the
//! MachSuite suite as traffic.
//!
//! The acceptance claims, pinned at test scale:
//!
//! 1. **golden** — a batch routed through a 2-shard gateway produces
//!    byte-identical artifacts to a direct single-server run;
//! 2. **pinning** — while every shard is alive, each source is served
//!    by exactly one shard (the warm pass adds zero misses anywhere);
//! 3. **failover** — killing a shard mid-batch loses no requests:
//!    in-flight and future work re-routes to the survivors;
//! 4. **warm failover** — with `--replication 2`, killing the primary
//!    mid-batch additionally recomputes **zero** pipeline stages:
//!    every displaced key is already warm on its replica;
//! 5. **draining** — draining a shard during a batch fails zero
//!    requests, migrates its warm keys to the survivors, and undrain
//!    restores the original placement.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dahlia_gateway::GatewayConfig;
use dahlia_server::json::Json;
use dahlia_server::{Client, NetConfig, NetSummary, Request, Server, Stage};

/// Spawn a real TCP shard around `server`; returns its address and the
/// listener thread's handle.
fn spawn_shard(server: Server) -> (String, std::thread::JoinHandle<NetSummary>) {
    spawn_shard_with(server, NetConfig::new())
}

/// [`spawn_shard`] with an explicit transport config (wire ceiling,
/// admission window).
fn spawn_shard_with(
    server: Server,
    cfg: NetConfig,
) -> (String, std::thread::JoinHandle<NetSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let server = Arc::new(server);
    let handle = std::thread::spawn(move || {
        dahlia_server::serve_sessions_with(server, listener, cfg).expect("serve_sessions_with")
    });
    (addr, handle)
}

fn shutdown_shard(addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.shutdown_server().expect("shutdown ack");
}

/// The MachSuite request set (id = kernel name).
fn machsuite_requests() -> Vec<Request> {
    dahlia_kernels::all_benches()
        .into_iter()
        .map(|b| Request::new(b.name, Stage::Estimate, b.source, b.name))
        .collect()
}

/// Strip the per-run fields (`latency_us`, `cached`, `trace`) so
/// responses can be compared byte-for-byte across serving topologies.
fn normalize(v: &Json) -> String {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "latency_us" && k != "cached" && k != "trace")
                .cloned()
                .collect(),
        )
        .emit(),
        other => other.emit(),
    }
}

fn shard_counter(stats: &Option<Json>, key: &str) -> u64 {
    stats
        .as_ref()
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn gateway_matches_direct_and_pins_sources() {
    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    // Admission caching off: this test pins *shard routing* — the warm
    // pass must reach the shards, not be answered at the gateway.
    let gw = GatewayConfig::new([addr_a.clone(), addr_b.clone()])
        .admission_cache(0)
        .build();
    assert_eq!(gw.live_shards(), 2);

    let direct = Server::with_threads(2);
    let requests = machsuite_requests();
    assert!(requests.len() >= 8, "MachSuite suite is the workload");

    // Cold pass: every gateway response must be byte-identical to the
    // direct server's (modulo timing fields).
    for req in &requests {
        let via_gateway = gw.submit(req);
        let direct_resp = direct.submit(req.clone()).to_json();
        assert_eq!(
            normalize(&via_gateway),
            normalize(&direct_resp),
            "artifact diverged for {}",
            req.id
        );
    }

    // Pinning: the warm pass must add zero misses on every shard — each
    // source went back to the shard that already holds its artifacts.
    let cold = gw.shard_snapshots();
    let cold_misses: u64 = cold.iter().map(|s| shard_counter(&s.stats, "misses")).sum();
    assert!(cold_misses > 0, "cold pass computed somewhere");
    for req in &requests {
        let resp = gw.submit(req);
        assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    }
    let warm = gw.shard_snapshots();
    let warm_misses: u64 = warm.iter().map(|s| shard_counter(&s.stats, "misses")).sum();
    assert_eq!(warm_misses, cold_misses, "warm pass recompiled somewhere");

    // Both shards actually participated (rendezvous spread the suite),
    // and every request went to a shard, never the local fallback.
    for s in &warm {
        assert!(s.alive);
        assert!(s.routed > 0, "shard {} never used: {warm:?}", s.addr);
        assert_eq!(s.failed, 0);
    }
    assert_eq!(
        warm.iter().map(|s| s.routed).sum::<u64>(),
        2 * requests.len() as u64
    );
    assert_eq!(gw.local_fallbacks(), 0);

    // The aggregated stats object is shaped like a single server's,
    // with the cluster section appended.
    let stats = gw.stats_json();
    assert_eq!(
        stats.get("requests").and_then(Json::as_u64),
        Some(2 * requests.len() as u64)
    );
    let shards = stats.get("gateway").and_then(|g| g.get("shards")).unwrap();
    assert!(matches!(shards, Json::Arr(xs) if xs.len() == 2));

    drop(gw);
    shutdown_shard(&addr_a);
    shutdown_shard(&addr_b);
    join_a.join().unwrap();
    join_b.join().unwrap();
}

/// Admission control, stage one: a hot source's repeat is answered at
/// the gateway — correct id, `cached: true`, zero shard dispatches —
/// while traced requests always route for their span breakdown.
#[test]
fn admission_cache_answers_hot_repeats_without_touching_a_shard() {
    let (addr, join) = spawn_shard(Server::with_threads(2));
    let gw = GatewayConfig::new([addr.clone()]).build();
    let src = "let A: float[8 bank 4];\nfor (let i = 0..8) unroll 4 { A[i] := 1.0; }";

    let cold = gw.submit(&Request::new("c1", Stage::Estimate, src, "k"));
    assert_eq!(cold.get("ok").and_then(Json::as_bool), Some(true));
    let hot = gw.submit(&Request::new("h1", Stage::Estimate, src, "k"));
    assert_eq!(hot.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(hot.get("id").and_then(Json::as_str), Some("h1"));
    assert_eq!(hot.get("cached").and_then(Json::as_bool), Some(true));
    let sans_id = |v: &Json| match Json::parse(&normalize(v)).unwrap() {
        Json::Obj(fields) => {
            Json::Obj(fields.into_iter().filter(|(k, _)| k != "id").collect()).emit()
        }
        other => other.emit(),
    };
    assert_eq!(sans_id(&cold), sans_id(&hot), "hit answers identically");
    assert_eq!(gw.admission_cache_hits(), 1);
    assert_eq!(
        gw.shard_snapshots()[0].routed,
        1,
        "the repeat never reached the shard"
    );

    // A traced repeat routes anyway: span breakdowns cannot be served
    // from the cache.
    let traced = gw.submit(&Request::new("t1", Stage::Estimate, src, "k").traced("tr-adm"));
    assert_eq!(traced.get("ok").and_then(Json::as_bool), Some(true));
    assert!(traced.get("trace").is_some());
    assert_eq!(gw.admission_cache_hits(), 1, "traced request was no hit");
    assert_eq!(gw.shard_snapshots()[0].routed, 2);

    // A different stage over the same source is its own key.
    let other = gw.submit(&Request::new("s1", Stage::Check, src, "k"));
    assert_eq!(other.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(gw.admission_cache_hits(), 1);
    assert_eq!(gw.shard_snapshots()[0].routed, 3);

    // The stats object reports the cache beside the routing counters.
    let stats = gw.stats_json();
    let gws = stats.get("gateway").unwrap();
    assert_eq!(
        gws.get("admission_cache_hits").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        gws.get("admission_cache_entries").and_then(Json::as_u64),
        Some(2)
    );
    assert!(
        gws.get("admission_cache_cap")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    drop(gw);
    shutdown_shard(&addr);
    join.join().unwrap();
}

#[test]
fn killing_a_shard_mid_batch_loses_no_requests() {
    // Shard A compiles slowly (widening the in-flight window we kill
    // into); shard B is a normal survivor.
    let (addr_a, join_a) = spawn_shard(Server::with_compute_delay(2, Duration::from_millis(30)));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = Arc::new(
        GatewayConfig::new([addr_a.clone(), addr_b.clone()])
            // A long interval keeps the health checker out of the
            // story: re-routing below is driven purely by call failure.
            .health_interval(Duration::from_secs(30))
            // Failover semantics, not gateway caching, are under test.
            .admission_cache(0)
            .build(),
    );
    assert_eq!(gw.live_shards(), 2);

    let programs: Vec<Request> = (0..24)
        .map(|i| {
            let b = 1u64 << (i % 4);
            Request::new(
                format!("r{i}"),
                Stage::Estimate,
                format!(
                    "let A: float[16 bank {b}];\nfor (let i = 0..16) unroll {b} {{ A[i] := {}.0; }}",
                    i + 1
                ),
                "k",
            )
        })
        .collect();

    // Fire the whole batch concurrently, and kill shard A while it is
    // mid-flight. Graceful TCP teardown answers what it already read
    // and drops the rest on the floor — dropped requests must re-route.
    let killer = {
        let addr_a = addr_a.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            shutdown_shard(&addr_a);
        })
    };
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = programs
            .iter()
            .map(|req| {
                let gw = Arc::clone(&gw);
                s.spawn(move || gw.submit(req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    killer.join().unwrap();
    join_a.join().unwrap();

    // Zero failed requests — the acceptance bar.
    for (req, resp) in programs.iter().zip(&responses) {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {} failed: {}",
            req.id,
            resp.emit()
        );
        assert_eq!(resp.get("id").and_then(Json::as_str), Some(req.id.as_str()));
    }

    // The cluster keeps serving after the loss, and the artifacts agree
    // with a direct run.
    let direct = Server::with_threads(2);
    for req in programs.iter().take(6) {
        let after = gw.submit(req);
        assert_eq!(normalize(&after), {
            let d = direct.submit(req.clone()).to_json();
            normalize(&d)
        });
    }
    let snaps = gw.shard_snapshots();
    let a = snaps.iter().find(|s| s.addr == addr_a).unwrap();
    let b = snaps.iter().find(|s| s.addr == addr_b).unwrap();
    assert!(!a.alive, "shard A is down");
    assert!(b.alive, "shard B survived");
    assert!(b.routed > 0);

    drop(gw);
    shutdown_shard(&addr_b);
    join_b.join().unwrap();
}

/// Poll `probe` every 10 ms until it returns true or `secs` elapse.
fn wait_for(secs: u64, mut probe: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + Duration::from_secs(secs);
    loop {
        if probe() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Sum a per-stage `executions` object across every shard snapshot
/// (dead shards contribute their final stats snapshot).
fn cluster_executions(gw: &dahlia_gateway::Gateway) -> u64 {
    gw.shard_snapshots()
        .iter()
        .map(|s| {
            s.stats
                .as_ref()
                .and_then(|v| v.get("executions"))
                .map(|ex| match ex {
                    Json::Obj(fields) => fields.iter().filter_map(|(_, v)| v.as_u64()).sum::<u64>(),
                    _ => 0,
                })
                .unwrap_or(0)
        })
        .sum()
}

fn shard_requests(gw: &dahlia_gateway::Gateway) -> u64 {
    gw.shard_snapshots()
        .iter()
        .map(|s| shard_counter(&s.stats, "requests"))
        .sum()
}

/// The tentpole acceptance test: with replication 2, every newly
/// computed artifact fans out to the secondary, so killing the primary
/// mid-batch loses zero requests AND recomputes zero pipeline stages —
/// the cluster serves the whole displaced working set warm.
#[test]
fn replicated_cluster_fails_over_warm() {
    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = Arc::new(
        GatewayConfig::new([addr_a.clone(), addr_b.clone()])
            .replication(2)
            // Keep the health checker out of the story: failover below
            // is driven purely by call failure.
            .health_interval(Duration::from_secs(30))
            // Replication, not the gateway response cache, must serve
            // the displaced keys warm — keep the cache out of the way.
            .admission_cache(0)
            .build(),
    );
    assert_eq!(gw.live_shards(), 2);
    let requests = machsuite_requests();
    let n = requests.len() as u64;

    // Cold pass: primaries compute, replicas warm up in the background.
    for req in &requests {
        let resp = gw.submit(req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    }
    // With R = 2 over 2 shards, every request reaches both shards —
    // one primary call plus one background replica write. Wait for the
    // fan-out to drain before taking the execution baseline.
    assert!(
        wait_for(20, || shard_requests(&gw) >= 2 * n),
        "replication fan-out never completed: {} of {} shard requests",
        shard_requests(&gw),
        2 * n
    );
    assert_eq!(gw.replica_writes(), n, "every cold compute fanned out");
    let baseline = cluster_executions(&gw);
    assert!(baseline > 0, "cold pass computed somewhere");

    // Kill shard A mid-batch: in-flight and future requests must land
    // warm on shard B. Zero lost requests, zero recomputed stages.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        shutdown_shard(&addr_a);
    });
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                let gw = Arc::clone(&gw);
                s.spawn(move || gw.submit(req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    killer.join().unwrap();
    join_a.join().unwrap();

    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {} failed: {}",
            req.id,
            resp.emit()
        );
    }
    assert_eq!(gw.local_fallbacks(), 0, "no request fell back locally");
    assert_eq!(
        cluster_executions(&gw),
        baseline,
        "warm failover must not recompute any pipeline stage"
    );

    drop(gw);
    shutdown_shard(&addr_b);
    join_b.join().unwrap();
}

/// Draining a shard during a batch: zero failed requests, the drained
/// shard's warm keys migrate to the survivor, and new traffic routes
/// past it until undrain puts it back.
#[test]
fn draining_a_shard_mid_batch_loses_nothing_and_migrates_keys() {
    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = Arc::new(
        GatewayConfig::new([addr_a.clone(), addr_b.clone()])
            .health_interval(Duration::from_secs(30))
            // Drain migration is observed through shard counters; the
            // gateway cache would answer the repeats before routing.
            .admission_cache(0)
            .build(),
    );
    assert_eq!(gw.live_shards(), 2);
    let requests = machsuite_requests();

    // Cold pass pins every source to its rendezvous owner.
    for req in &requests {
        assert_eq!(gw.submit(req).get("ok").and_then(Json::as_bool), Some(true));
    }
    let owned_by_a = gw
        .shard_snapshots()
        .iter()
        .find(|s| s.addr == addr_a)
        .unwrap()
        .routed;
    assert!(owned_by_a > 0, "rendezvous gave shard A some keys");

    // Drain shard A while a second batch is in flight.
    let drainer = {
        let gw = Arc::clone(&gw);
        let addr_a = addr_a.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            gw.drain(&addr_a)
        })
    };
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = requests
            .iter()
            .map(|req| {
                let gw = Arc::clone(&gw);
                s.spawn(move || gw.submit(req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ack = drainer.join().unwrap();
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
    let scheduled = ack
        .get("keys_scheduled")
        .and_then(Json::as_u64)
        .expect("drain ack carries keys_scheduled");
    assert!(scheduled > 0, "shard A had warm keys to migrate: {ack:?}");

    // The batch the drain raced lost nothing.
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {} failed during drain: {}",
            req.id,
            resp.emit()
        );
    }

    // The background walk re-homes every scheduled key.
    assert!(
        wait_for(20, || {
            gw.shard_snapshots()
                .iter()
                .find(|s| s.addr == addr_a)
                .unwrap()
                .drained_keys
                >= scheduled
        }),
        "migration never completed"
    );

    // Post-drain traffic routes entirely past shard A and is fully
    // warm on the survivor.
    let routed_a_before = gw
        .shard_snapshots()
        .iter()
        .find(|s| s.addr == addr_a)
        .unwrap()
        .routed;
    for req in &requests {
        let resp = gw.submit(req);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            resp.get("cached").and_then(Json::as_bool),
            Some(true),
            "migrated key recomputed: {}",
            resp.emit()
        );
    }
    let snap_a = gw
        .shard_snapshots()
        .into_iter()
        .find(|s| s.addr == addr_a)
        .unwrap();
    assert!(snap_a.draining);
    assert_eq!(
        snap_a.routed, routed_a_before,
        "a draining shard received new keys"
    );
    assert_eq!(gw.local_fallbacks(), 0);

    // Undrain: shard A rejoins, its keys come straight back (its own
    // warm cache is intact — zero recomputes again).
    let ack = gw.undrain(&addr_a, None);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(ack.get("joined").and_then(Json::as_bool), Some(false));
    let executions_before = cluster_executions(&gw);
    let mut back_on_a = 0u64;
    for req in &requests {
        let resp = gw.submit(req);
        assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    }
    let snap_a = gw
        .shard_snapshots()
        .into_iter()
        .find(|s| s.addr == addr_a)
        .unwrap();
    back_on_a += snap_a.routed - routed_a_before;
    assert!(back_on_a > 0, "undrained shard got its keys back");
    assert_eq!(
        cluster_executions(&gw),
        executions_before,
        "undrain recomputed something"
    );

    drop(gw);
    shutdown_shard(&addr_a);
    shutdown_shard(&addr_b);
    join_a.join().unwrap();
    join_b.join().unwrap();
}

/// A traced request through a 2-shard gateway reports the full span
/// tree — the gateway hop first, then the shard's queue wait and
/// per-stage compute spans — lands in the gateway's journal, and the
/// merged cluster stats carry a hist section with percentiles
/// re-derived from the summed buckets.
#[test]
fn traced_request_reports_gateway_and_stage_spans_and_merged_hist() {
    use dahlia_server::SessionHost;
    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = GatewayConfig::new([addr_a.clone(), addr_b.clone()])
        .health_interval(Duration::from_secs(30))
        .build();
    let src = "let A: float[8 bank 4];\nfor (let i = 0..8) unroll 4 { A[i] := 1.0; }";

    let resp = gw.submit(&Request::new("t1", Stage::Estimate, src, "k").traced("tr-1"));
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        resp.keys().last().copied(),
        Some("trace"),
        "trace is the trailing field"
    );
    let trace = resp.get("trace").unwrap();
    assert_eq!(trace.get("id").and_then(Json::as_str), Some("tr-1"));
    let Some(Json::Arr(spans)) = trace.get("spans") else {
        panic!("spans array");
    };
    let name = |s: &Json| {
        s.get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    assert!(
        name(&spans[0]).starts_with("shard:"),
        "gateway hop leads: {}",
        trace.emit()
    );
    assert_eq!(
        spans[0].get("detail").and_then(Json::as_str),
        Some("routed")
    );
    assert!(spans.iter().any(|s| name(s) == "queue"), "{}", trace.emit());
    for stage in ["stage:parse", "stage:check", "stage:lower", "stage:est"] {
        assert!(
            spans.iter().any(|s| name(s) == stage),
            "missing {stage}: {}",
            trace.emit()
        );
    }
    // The remote spans nest under the gateway hop: their sum cannot
    // exceed the round-trip the gateway measured.
    let hop_us = spans[0].get("us").and_then(Json::as_u64).unwrap();
    let nested: u64 = spans[1..]
        .iter()
        .filter_map(|s| s.get("us").and_then(Json::as_u64))
        .sum();
    assert!(nested <= hop_us, "nested {nested}us > hop {hop_us}us");

    // The combined entry is queryable from the gateway's journal.
    let journal = SessionHost::trace_json(&gw);
    let Some(Json::Arr(entries)) = journal.get("entries") else {
        panic!("journal entries");
    };
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].get("trace").and_then(Json::as_str), Some("tr-1"));
    assert_eq!(entries[0].get("stage").and_then(Json::as_str), Some("est"));

    // An untraced request is byte-compatible with the old protocol.
    let bare = gw.submit(&Request::new("t2", Stage::Estimate, src, "k"));
    assert!(bare.get("trace").is_none());

    // Merged stats: bucket counts summed across shards, count and
    // percentiles re-derived from the merged buckets.
    let stats = gw.stats_json();
    let lat = stats
        .get("hist")
        .and_then(|h| h.get("latency_us"))
        .expect("merged hist section");
    assert_eq!(lat.get("count").and_then(Json::as_u64), Some(2));
    let p50 = lat.get("p50").and_then(Json::as_f64).unwrap();
    let p99 = lat.get("p99").and_then(Json::as_f64).unwrap();
    assert!(p50 <= p99 && p99 > 0.0, "p50={p50} p99={p99}");

    // Liveness summary backing /healthz.
    let health = SessionHost::health_json(&gw);
    assert_eq!(health.get("shards_live").and_then(Json::as_u64), Some(2));
    assert_eq!(health.get("shards_dead").and_then(Json::as_u64), Some(0));

    drop(gw);
    shutdown_shard(&addr_a);
    shutdown_shard(&addr_b);
    join_a.join().unwrap();
    join_b.join().unwrap();
}

/// A shard that accepts one connection, reads one byte, and slams it —
/// a deterministic mid-call failure, the in-process stand-in for
/// SIGKILLing the primary.
fn spawn_flaky_shard() -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            use std::io::Read;
            let mut buf = [0u8; 1];
            let _ = stream.read(&mut buf);
            // Drop the stream: EOF with the request in flight.
        }
    });
    (addr, handle)
}

/// Killing the primary mid-call leaves a visible failover hop in the
/// span tree: the dead shard's failed attempt, then the survivor
/// answering as a re-route.
#[test]
fn failover_records_the_reroute_hop_in_the_span_tree() {
    let (flaky_addr, flaky_join) = spawn_flaky_shard();
    let (real_addr, real_join) = spawn_shard(Server::with_threads(2));
    // The flaky shard massively out-weighs the survivor, so rendezvous
    // prefers it for the key — the first attempt always dies mid-call.
    let gw =
        GatewayConfig::new_weighted([(flaky_addr.clone(), 1_000_000.0), (real_addr.clone(), 1.0)])
            .health_interval(Duration::from_secs(30))
            // The flaky stand-in speaks no protocol at all, so the v1
            // hello exchange would already fail at connect time and the
            // shard would never look live. Pin the v0 wire: connect is
            // a bare TCP handshake again and the death lands mid-call,
            // which is the failure this test is about.
            .wire_max(0)
            .build();
    let src = "let A: float[4 bank 2]; for (let i = 0..4) unroll 2 { A[i] := 1.0; }";

    let resp = gw.submit(&Request::new("f1", Stage::Estimate, src, "k").traced("tr-fail"));
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "{}",
        resp.emit()
    );
    let trace = resp.get("trace").unwrap();
    let Some(Json::Arr(spans)) = trace.get("spans") else {
        panic!("spans array: {}", trace.emit());
    };
    let name = |s: &Json| {
        s.get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    let detail = |s: &Json| {
        s.get("detail")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    assert_eq!(name(&spans[0]), format!("shard:{flaky_addr}"));
    assert_eq!(detail(&spans[0]), "failed");
    assert_eq!(name(&spans[1]), format!("shard:{real_addr}"));
    assert_eq!(detail(&spans[1]), "rerouted");
    assert!(spans.iter().any(|s| name(s) == "stage:est"));

    drop(gw);
    flaky_join.join().unwrap();
    shutdown_shard(&real_addr);
    real_join.join().unwrap();
}

#[test]
fn dead_shard_keeps_contributing_its_last_stats_snapshot() {
    let (addr, join) = spawn_shard(Server::with_threads(1));
    let gw = GatewayConfig::new([addr.clone()])
        .health_interval(Duration::from_secs(30))
        .build();
    let req = Request::new(
        "r1",
        Stage::Check,
        "let A: float[4 bank 2]; for (let i = 0..4) unroll 2 { A[i] := 1.0; }",
        "k",
    );
    gw.submit(&req);
    let live_stats = gw.stats_json();
    assert_eq!(live_stats.get("requests").and_then(Json::as_u64), Some(1));

    shutdown_shard(&addr);
    join.join().unwrap();
    // Wait for the pooled client to observe the hangup.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while gw.live_shards() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(gw.live_shards(), 0);

    // The aggregate survives on the snapshot: monotonic counters do not
    // vanish when their shard does (deltas stay non-negative downstream).
    let after = gw.stats_json();
    assert_eq!(after.get("requests").and_then(Json::as_u64), Some(1));
    let gws = after.get("gateway").unwrap();
    assert_eq!(gws.get("shards_live").and_then(Json::as_u64), Some(0));
}

/// Durable-telemetry acceptance: a shard that fails consecutive
/// health checks is auto-drained (journalled, counted, never the last
/// live shard), the warm-key ledger survives a gateway restart, and
/// `{"op":"history"}` answers from the on-disk ring written before the
/// restart.
#[test]
fn auto_drain_and_durable_telemetry_survive_a_gateway_restart() {
    use dahlia_server::SessionHost;

    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let dir = std::env::temp_dir().join(format!("dahlia-gw-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let gw = GatewayConfig::new([addr_a.clone(), addr_b.clone()])
        .health_interval(Duration::from_millis(20))
        .connect_timeout(Duration::from_millis(200))
        .telemetry_dir(&dir)
        .telemetry_interval_ms(20)
        .auto_drain_after(2)
        .build();
    for req in machsuite_requests() {
        gw.submit(&req);
    }

    // Kill B: two failed health passes later the gateway drains it.
    shutdown_shard(&addr_b);
    join_b.join().unwrap();
    assert!(
        wait_for(10, || gw
            .shard_snapshots()
            .iter()
            .any(|s| s.addr == addr_b && s.draining)),
        "dead shard was never auto-drained"
    );

    // The remediation left an audit trail: an alert-journal event with
    // the drained address, and the per-shard counter.
    let alerts = SessionHost::alerts_json(&gw, 0);
    let Some(Json::Arr(events)) = alerts.get("entries") else {
        panic!("{alerts:?}")
    };
    assert!(
        events.iter().any(|e| {
            e.get("event").and_then(Json::as_str) == Some("auto_drain")
                && e.get("detail").and_then(Json::as_str) == Some(addr_b.as_str())
        }),
        "no auto_drain event for {addr_b}: {alerts:?}"
    );
    let stats = gw.stats_json();
    let Some(Json::Arr(shards)) = stats.get("gateway").and_then(|g| g.get("shards")) else {
        panic!("{stats:?}")
    };
    let b_entry = shards
        .iter()
        .find(|s| s.get("addr").and_then(Json::as_str) == Some(addr_b.as_str()))
        .unwrap();
    assert_eq!(b_entry.get("auto_drained").and_then(Json::as_u64), Some(1));
    // The sampler has been writing the ring all along.
    assert!(
        stats
            .get("telemetry")
            .and_then(|t| t.get("appended"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1,
        "{stats:?}"
    );

    // Restart the gateway on the same telemetry dir.
    drop(gw);
    let gw2 = GatewayConfig::new([addr_a.clone(), addr_b.clone()])
        .health_interval(Duration::from_millis(20))
        .connect_timeout(Duration::from_millis(200))
        .telemetry_dir(&dir)
        .telemetry_interval_ms(20)
        .auto_drain_after(2)
        .build();

    // The warm-key ledger came back from the checkpoint: the surviving
    // shard's warm keys are known before any new traffic flows.
    let stats2 = gw2.stats_json();
    let Some(Json::Arr(shards2)) = stats2.get("gateway").and_then(|g| g.get("shards")) else {
        panic!("{stats2:?}")
    };
    let warm: u64 = shards2
        .iter()
        .filter_map(|s| s.get("warm_keys").and_then(Json::as_u64))
        .sum();
    assert!(warm > 0, "ledger not rehydrated: {stats2:?}");

    // History answers from the ring written by the *previous* gateway.
    let history = SessionHost::history_json(&gw2, "gateway.requests", 0, 0);
    let Some(Json::Arr(points)) = history.get("points") else {
        panic!("{history:?}")
    };
    assert!(
        !points.is_empty(),
        "no pre-restart history points: {history:?}"
    );

    // B is still dead: gw2 auto-drains it again (A survives it).
    assert!(
        wait_for(10, || gw2
            .shard_snapshots()
            .iter()
            .any(|s| s.addr == addr_b && s.draining)),
        "restarted gateway never re-drained the dead shard"
    );
    // Kill A too: now the last live shard is failing, and the guard
    // must refuse to drain it.
    shutdown_shard(&addr_a);
    join_a.join().unwrap();
    assert!(
        wait_for(5, || {
            gw2.shard_snapshots()
                .iter()
                .find(|s| s.addr == addr_a)
                .map(|s| !s.alive)
                .unwrap_or(false)
        }),
        "shard A never observed dead"
    );
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        !gw2.shard_snapshots()
            .iter()
            .find(|s| s.addr == addr_a)
            .unwrap()
            .draining,
        "the last live shard must never be auto-drained"
    );

    drop(gw2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fetch a shard's stats envelope over a plain v0 client connection.
/// The reactor appends its `transport` section to every stats reply,
/// which is how these tests observe what the gateway hop negotiated.
fn shard_transport(addr: &str) -> Json {
    let mut c = Client::connect(addr).expect("stats connection");
    c.send_line(r#"{"op":"stats"}"#).expect("send stats");
    let line = c.recv_line().expect("recv stats").expect("stats line");
    Json::parse(&line)
        .expect("stats parses")
        .get("stats")
        .and_then(|s| s.get("transport"))
        .cloned()
        .expect("transport section")
}

fn transport_counter(t: &Json, key: &str) -> u64 {
    t.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Mixed clusters must interoperate in both directions: a v1 gateway
/// degrades to JSON lines against a v0-pinned shard, a v0-pinned
/// gateway never offers `hello` to a v1-capable shard, and two current
/// builds negotiate the binary wire — each asserted through the shard's
/// own transport counters, with byte-identical artifacts throughout.
#[test]
fn mixed_wire_clusters_interoperate_in_both_directions() {
    let direct = Server::with_threads(2);
    let requests: Vec<Request> = machsuite_requests().into_iter().take(4).collect();

    let check = |gw: &dahlia_gateway::Gateway, tag: &str| {
        for req in &requests {
            let via = gw.submit(req);
            let direct_resp = direct.submit(req.clone()).to_json();
            assert_eq!(
                normalize(&via),
                normalize(&direct_resp),
                "[{tag}] artifact diverged for {}",
                req.id
            );
        }
    };

    // New gateway, old shard: the `hello` exchange answers version 0,
    // so the hop stays JSON lines and nothing is ever framed.
    let (addr_old, join_old) =
        spawn_shard_with(Server::with_threads(2), NetConfig::new().max_wire(0));
    let gw = GatewayConfig::new([addr_old.clone()])
        .admission_cache(0)
        .build();
    check(&gw, "v1-gw/v0-shard");
    let t = shard_transport(&addr_old);
    assert_eq!(transport_counter(&t, "sessions_v1"), 0);
    assert_eq!(transport_counter(&t, "frames_in"), 0);
    assert!(transport_counter(&t, "sessions_v0") >= 1);
    drop(gw);
    shutdown_shard(&addr_old);
    join_old.join().unwrap();

    // Old gateway, new shard: a v0-pinned gateway skips `hello`
    // entirely, and the shard keeps speaking bytes any v0 client knows.
    let (addr_new, join_new) = spawn_shard(Server::with_threads(2));
    let gw = GatewayConfig::new([addr_new.clone()])
        .wire_max(0)
        .admission_cache(0)
        .build();
    check(&gw, "v0-gw/v1-shard");
    let t = shard_transport(&addr_new);
    assert_eq!(transport_counter(&t, "sessions_v1"), 0);
    assert_eq!(transport_counter(&t, "frames_in"), 0);
    drop(gw);

    // Two current builds: the hop negotiates v1 and the request/response
    // traffic is binary frames.
    let gw = GatewayConfig::new([addr_new.clone()])
        .admission_cache(0)
        .build();
    check(&gw, "v1-gw/v1-shard");
    let t = shard_transport(&addr_new);
    assert!(transport_counter(&t, "sessions_v1") >= 1, "{t:?}");
    assert!(transport_counter(&t, "frames_in") > 0, "{t:?}");
    assert!(transport_counter(&t, "frames_out") > 0, "{t:?}");
    drop(gw);
    shutdown_shard(&addr_new);
    join_new.join().unwrap();
}
