//! Cluster integration tests: real TCP shards, a real gateway, the
//! MachSuite suite as traffic.
//!
//! The three acceptance claims, pinned at test scale:
//!
//! 1. **golden** — a batch routed through a 2-shard gateway produces
//!    byte-identical artifacts to a direct single-server run;
//! 2. **pinning** — while every shard is alive, each source is served
//!    by exactly one shard (the warm pass adds zero misses anywhere);
//! 3. **failover** — killing a shard mid-batch loses no requests:
//!    in-flight and future work re-routes to the survivors.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dahlia_gateway::GatewayConfig;
use dahlia_server::json::Json;
use dahlia_server::{serve_listener, Client, NetSummary, Request, Server, Stage};

/// Spawn a real TCP shard around `server`; returns its address and the
/// listener thread's handle.
fn spawn_shard(server: Server) -> (String, std::thread::JoinHandle<NetSummary>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    let server = Arc::new(server);
    let handle =
        std::thread::spawn(move || serve_listener(server, listener).expect("serve_listener"));
    (addr, handle)
}

fn shutdown_shard(addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.shutdown_server().expect("shutdown ack");
}

/// The MachSuite request set (id = kernel name).
fn machsuite_requests() -> Vec<Request> {
    dahlia_kernels::all_benches()
        .into_iter()
        .map(|b| Request::new(b.name, Stage::Estimate, b.source, b.name))
        .collect()
}

/// Strip the per-run fields (`latency_us`, `cached`) so responses can
/// be compared byte-for-byte across serving topologies.
fn normalize(v: &Json) -> String {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "latency_us" && k != "cached")
                .cloned()
                .collect(),
        )
        .emit(),
        other => other.emit(),
    }
}

fn shard_counter(stats: &Option<Json>, key: &str) -> u64 {
    stats
        .as_ref()
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn gateway_matches_direct_and_pins_sources() {
    let (addr_a, join_a) = spawn_shard(Server::with_threads(2));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = GatewayConfig::new([addr_a.clone(), addr_b.clone()]).build();
    assert_eq!(gw.live_shards(), 2);

    let direct = Server::with_threads(2);
    let requests = machsuite_requests();
    assert!(requests.len() >= 8, "MachSuite suite is the workload");

    // Cold pass: every gateway response must be byte-identical to the
    // direct server's (modulo timing fields).
    for req in &requests {
        let via_gateway = gw.submit(req);
        let direct_resp = direct.submit(req.clone()).to_json();
        assert_eq!(
            normalize(&via_gateway),
            normalize(&direct_resp),
            "artifact diverged for {}",
            req.id
        );
    }

    // Pinning: the warm pass must add zero misses on every shard — each
    // source went back to the shard that already holds its artifacts.
    let cold = gw.shard_snapshots();
    let cold_misses: u64 = cold.iter().map(|s| shard_counter(&s.stats, "misses")).sum();
    assert!(cold_misses > 0, "cold pass computed somewhere");
    for req in &requests {
        let resp = gw.submit(req);
        assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    }
    let warm = gw.shard_snapshots();
    let warm_misses: u64 = warm.iter().map(|s| shard_counter(&s.stats, "misses")).sum();
    assert_eq!(warm_misses, cold_misses, "warm pass recompiled somewhere");

    // Both shards actually participated (rendezvous spread the suite),
    // and every request went to a shard, never the local fallback.
    for s in &warm {
        assert!(s.alive);
        assert!(s.routed > 0, "shard {} never used: {warm:?}", s.addr);
        assert_eq!(s.failed, 0);
    }
    assert_eq!(
        warm.iter().map(|s| s.routed).sum::<u64>(),
        2 * requests.len() as u64
    );
    assert_eq!(gw.local_fallbacks(), 0);

    // The aggregated stats object is shaped like a single server's,
    // with the cluster section appended.
    let stats = gw.stats_json();
    assert_eq!(
        stats.get("requests").and_then(Json::as_u64),
        Some(2 * requests.len() as u64)
    );
    let shards = stats.get("gateway").and_then(|g| g.get("shards")).unwrap();
    assert!(matches!(shards, Json::Arr(xs) if xs.len() == 2));

    drop(gw);
    shutdown_shard(&addr_a);
    shutdown_shard(&addr_b);
    join_a.join().unwrap();
    join_b.join().unwrap();
}

#[test]
fn killing_a_shard_mid_batch_loses_no_requests() {
    // Shard A compiles slowly (widening the in-flight window we kill
    // into); shard B is a normal survivor.
    let (addr_a, join_a) = spawn_shard(Server::with_compute_delay(2, Duration::from_millis(30)));
    let (addr_b, join_b) = spawn_shard(Server::with_threads(2));
    let gw = Arc::new(
        GatewayConfig::new([addr_a.clone(), addr_b.clone()])
            // A long interval keeps the health checker out of the
            // story: re-routing below is driven purely by call failure.
            .health_interval(Duration::from_secs(30))
            .build(),
    );
    assert_eq!(gw.live_shards(), 2);

    let programs: Vec<Request> = (0..24)
        .map(|i| {
            let b = 1u64 << (i % 4);
            Request::new(
                format!("r{i}"),
                Stage::Estimate,
                format!(
                    "let A: float[16 bank {b}];\nfor (let i = 0..16) unroll {b} {{ A[i] := {}.0; }}",
                    i + 1
                ),
                "k",
            )
        })
        .collect();

    // Fire the whole batch concurrently, and kill shard A while it is
    // mid-flight. Graceful TCP teardown answers what it already read
    // and drops the rest on the floor — dropped requests must re-route.
    let killer = {
        let addr_a = addr_a.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            shutdown_shard(&addr_a);
        })
    };
    let responses: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = programs
            .iter()
            .map(|req| {
                let gw = Arc::clone(&gw);
                s.spawn(move || gw.submit(req))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    killer.join().unwrap();
    join_a.join().unwrap();

    // Zero failed requests — the acceptance bar.
    for (req, resp) in programs.iter().zip(&responses) {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {} failed: {}",
            req.id,
            resp.emit()
        );
        assert_eq!(resp.get("id").and_then(Json::as_str), Some(req.id.as_str()));
    }

    // The cluster keeps serving after the loss, and the artifacts agree
    // with a direct run.
    let direct = Server::with_threads(2);
    for req in programs.iter().take(6) {
        let after = gw.submit(req);
        assert_eq!(normalize(&after), {
            let d = direct.submit(req.clone()).to_json();
            normalize(&d)
        });
    }
    let snaps = gw.shard_snapshots();
    let a = snaps.iter().find(|s| s.addr == addr_a).unwrap();
    let b = snaps.iter().find(|s| s.addr == addr_b).unwrap();
    assert!(!a.alive, "shard A is down");
    assert!(b.alive, "shard B survived");
    assert!(b.routed > 0);

    drop(gw);
    shutdown_shard(&addr_b);
    join_b.join().unwrap();
}

#[test]
fn dead_shard_keeps_contributing_its_last_stats_snapshot() {
    let (addr, join) = spawn_shard(Server::with_threads(1));
    let gw = GatewayConfig::new([addr.clone()])
        .health_interval(Duration::from_secs(30))
        .build();
    let req = Request::new(
        "r1",
        Stage::Check,
        "let A: float[4 bank 2]; for (let i = 0..4) unroll 2 { A[i] := 1.0; }",
        "k",
    );
    gw.submit(&req);
    let live_stats = gw.stats_json();
    assert_eq!(live_stats.get("requests").and_then(Json::as_u64), Some(1));

    shutdown_shard(&addr);
    join.join().unwrap();
    // Wait for the pooled client to observe the hangup.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while gw.live_shards() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(gw.live_shards(), 0);

    // The aggregate survives on the snapshot: monotonic counters do not
    // vanish when their shard does (deltas stay non-negative downstream).
    let after = gw.stats_json();
    assert_eq!(after.get("requests").and_then(Json::as_u64), Some(1));
    let gws = after.get("gateway").unwrap();
    assert_eq!(gws.get("shards_live").and_then(Json::as_u64), Some(0));
}
