//! Property tests for the rendezvous router: distribution and
//! stability over randomized keys, shard sets, and weights. The
//! headline properties — keys move only off dead shards, and only
//! from/to a re-weighted shard — are what make failover and re-sharding
//! cheap: a topology change invalidates exactly the affected shard's
//! cache locality, never the whole cluster's.

use proptest::prelude::*;

use dahlia_gateway::hash::{owner, rank, score, weighted_owner, weighted_rank};

fn shard_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.1.0.{i}:4500")).collect()
}

fn key(lo: u64, hi: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rank_is_a_permutation_headed_by_the_owner(
        lo in any::<u64>(), hi in any::<u64>(), n in 1usize..9
    ) {
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let r = rank(k, &shards);
        prop_assert_eq!(r[0], owner(k, &shards, |_| true).unwrap());
        let mut sorted = r;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn keys_move_only_off_dead_shards(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9, pick in any::<u64>()
    ) {
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let dead = (pick as usize) % n;
        let before = owner(k, &shards, |_| true).unwrap();
        let after = owner(k, &shards, |i| i != dead).unwrap();
        if before == dead {
            // Displaced keys land on their second choice…
            prop_assert_eq!(after, rank(k, &shards)[1]);
        } else {
            // …everything else stays pinned.
            prop_assert_eq!(after, before);
        }
    }

    #[test]
    fn revived_shards_reclaim_exactly_their_keys(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9, pick in any::<u64>()
    ) {
        // Kill-then-revive round-trips placement: failover is symmetric.
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let dead = (pick as usize) % n;
        let original = owner(k, &shards, |_| true).unwrap();
        let _failed_over = owner(k, &shards, |i| i != dead).unwrap();
        let revived = owner(k, &shards, |_| true).unwrap();
        prop_assert_eq!(revived, original);
    }

    #[test]
    fn scores_are_deterministic_functions(
        lo in any::<u64>(), hi in any::<u64>(), shard in any::<u16>()
    ) {
        let id = format!("10.1.0.{shard}:4500");
        prop_assert_eq!(score(key(lo, hi), &id), score(key(lo, hi), &id));
    }

    #[test]
    fn weighted_rank_is_a_permutation_headed_by_the_owner(
        lo in any::<u64>(), hi in any::<u64>(), n in 1usize..9, heavy in any::<u64>()
    ) {
        let shards: Vec<(String, f64)> = shard_ids(n)
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, if i == (heavy as usize) % n { 3.0 } else { 1.0 }))
            .collect();
        let k = key(lo, hi);
        let r = weighted_rank(k, &shards);
        prop_assert_eq!(r[0], weighted_owner(k, &shards, |_| true).unwrap());
        let mut sorted = r;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn keys_move_only_off_dead_shards_under_weights(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9,
        pick in any::<u64>(), heavy in any::<u64>()
    ) {
        // The minimal-disruption property survives heterogeneous
        // weights: killing one shard displaces exactly its keys, each
        // to its weighted second choice.
        let shards: Vec<(String, f64)> = shard_ids(n)
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, if i == (heavy as usize) % n { 2.5 } else { 1.0 }))
            .collect();
        let k = key(lo, hi);
        let dead = (pick as usize) % n;
        let before = weighted_owner(k, &shards, |_| true).unwrap();
        let after = weighted_owner(k, &shards, |i| i != dead).unwrap();
        if before == dead {
            prop_assert_eq!(after, weighted_rank(k, &shards)[1]);
        } else {
            prop_assert_eq!(after, before);
        }
    }

    #[test]
    fn reweighting_moves_keys_only_from_or_to_that_shard(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9,
        pick in any::<u64>(), up in any::<bool>()
    ) {
        // Raising shard i's weight only pulls keys *to* i; lowering it
        // only pushes keys *off* i. Every other pairwise order is
        // untouched, so no key moves between two unchanged shards —
        // the re-sharding analogue of the dead-shard property.
        let base: Vec<(String, f64)> = shard_ids(n).into_iter().map(|id| (id, 1.0)).collect();
        let target = (pick as usize) % n;
        let mut changed = base.clone();
        changed[target].1 = if up { 2.0 } else { 0.5 };
        let k = key(lo, hi);
        let before = weighted_owner(k, &base, |_| true).unwrap();
        let after = weighted_owner(k, &changed, |_| true).unwrap();
        if up {
            // Weight raised: keys move only TO the target.
            prop_assert!(after == before || after == target,
                "key moved between unchanged shards: {before}→{after}");
        } else {
            // Weight lowered: keys move only OFF the target.
            prop_assert!(after == before || before == target,
                "key moved between unchanged shards: {before}→{after}");
        }
    }
}

#[test]
fn load_spreads_across_shards() {
    // Deterministic distribution check at a fixed scale: 4 shards,
    // 4096 keys derived from a counter, each shard within ±40% of the
    // uniform share.
    let shards = shard_ids(4);
    let n = 4096u64;
    let mut counts = [0usize; 4];
    for i in 0..n {
        let k = key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        counts[owner(k, &shards, |_| true).unwrap()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (614..=1434).contains(&c),
            "shard {i} got {c} of {n} keys: {counts:?}"
        );
    }
}

#[test]
fn key_share_is_weight_proportional() {
    // Weights 4:2:1:1 over 8192 keys: each shard's share must be
    // within ±20% of weight/Σweight — the defining property of the
    // logarithmic-score method.
    let weights = [4.0, 2.0, 1.0, 1.0];
    let shards: Vec<(String, f64)> = shard_ids(4).into_iter().zip(weights).collect();
    let n = 8192u64;
    let total: f64 = weights.iter().sum();
    let mut counts = [0usize; 4];
    for i in 0..n {
        let k = key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i.rotate_left(17));
        counts[weighted_owner(k, &shards, |_| true).unwrap()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        let expected = n as f64 * weights[i] / total;
        let lo = (expected * 0.8) as usize;
        let hi = (expected * 1.2) as usize;
        assert!(
            (lo..=hi).contains(&c),
            "shard {i} (weight {}) got {c} of {n} keys, expected ~{expected}: {counts:?}",
            weights[i]
        );
    }
}
