//! Property tests for the rendezvous router: distribution and
//! stability over randomized keys and shard sets. The headline
//! property — keys move only off dead shards — is what makes failover
//! cheap: a shard loss invalidates exactly one shard's cache locality.

use proptest::prelude::*;

use dahlia_gateway::hash::{owner, rank, score};

fn shard_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.1.0.{i}:4500")).collect()
}

fn key(lo: u64, hi: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn rank_is_a_permutation_headed_by_the_owner(
        lo in any::<u64>(), hi in any::<u64>(), n in 1usize..9
    ) {
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let r = rank(k, &shards);
        prop_assert_eq!(r[0], owner(k, &shards, |_| true).unwrap());
        let mut sorted = r;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn keys_move_only_off_dead_shards(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9, pick in any::<u64>()
    ) {
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let dead = (pick as usize) % n;
        let before = owner(k, &shards, |_| true).unwrap();
        let after = owner(k, &shards, |i| i != dead).unwrap();
        if before == dead {
            // Displaced keys land on their second choice…
            prop_assert_eq!(after, rank(k, &shards)[1]);
        } else {
            // …everything else stays pinned.
            prop_assert_eq!(after, before);
        }
    }

    #[test]
    fn revived_shards_reclaim_exactly_their_keys(
        lo in any::<u64>(), hi in any::<u64>(), n in 2usize..9, pick in any::<u64>()
    ) {
        // Kill-then-revive round-trips placement: failover is symmetric.
        let shards = shard_ids(n);
        let k = key(lo, hi);
        let dead = (pick as usize) % n;
        let original = owner(k, &shards, |_| true).unwrap();
        let _failed_over = owner(k, &shards, |i| i != dead).unwrap();
        let revived = owner(k, &shards, |_| true).unwrap();
        prop_assert_eq!(revived, original);
    }

    #[test]
    fn scores_are_deterministic_functions(
        lo in any::<u64>(), hi in any::<u64>(), shard in any::<u16>()
    ) {
        let id = format!("10.1.0.{shard}:4500");
        prop_assert_eq!(score(key(lo, hi), &id), score(key(lo, hi), &id));
    }
}

#[test]
fn load_spreads_across_shards() {
    // Deterministic distribution check at a fixed scale: 4 shards,
    // 4096 keys derived from a counter, each shard within ±40% of the
    // uniform share.
    let shards = shard_ids(4);
    let n = 4096u64;
    let mut counts = [0usize; 4];
    for i in 0..n {
        let k = key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
        counts[owner(k, &shards, |_| true).unwrap()] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        assert!(
            (614..=1434).contains(&c),
            "shard {i} got {c} of {n} keys: {counts:?}"
        );
    }
}
