//! Bank-access-pattern analysis.
//!
//! For every access in an unrolled loop body the toolchain needs to know
//! (a) how many banks each processing element (PE) must be able to reach —
//! the *mux width* that determines indirection hardware (Fig. 3b of the
//! paper), and (b) how many simultaneous accesses land on the same bank in
//! one iteration group — the *port demand* that forces the scheduler to
//! serialize (the Fig. 4a/4b pitfalls).

use crate::ir::{Access, ArrayDecl, Idx};

/// Enclosing unrolled loops: `(iterator, unroll factor)`, outermost first.
/// Only factors > 1 matter.
#[derive(Debug, Clone, Default)]
pub struct UnrollCtx {
    vars: Vec<(String, u64)>,
}

impl UnrollCtx {
    /// Empty context (no unrolling).
    pub fn new() -> Self {
        UnrollCtx::default()
    }

    /// Enter a loop.
    pub fn push(&mut self, var: &str, unroll: u64) {
        self.vars.push((var.to_string(), unroll.max(1)));
    }

    /// Leave a loop.
    pub fn pop(&mut self) {
        self.vars.pop();
    }

    /// Total parallel copies of the innermost body.
    pub fn copies(&self) -> u64 {
        self.vars.iter().map(|(_, u)| *u).product::<u64>().max(1)
    }

    /// Unroll factor of `var` (1 if not unrolled or unknown).
    pub fn factor(&self, var: &str) -> u64 {
        self.vars
            .iter()
            .find(|(v, _)| v == var)
            .map(|(_, u)| *u)
            .unwrap_or(1)
    }

    fn unrolled_vars(&self) -> Vec<(String, u64)> {
        self.vars.iter().filter(|(_, u)| *u > 1).cloned().collect()
    }
}

/// What the toolchain learns about one access under a given unrolling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankStats {
    /// Parallel copies of the access (product of enclosing unroll factors).
    pub copies: u64,
    /// Worst-case number of copies hitting the *same* bank in one group.
    pub max_demand: u64,
    /// Number of banks a single copy must be able to reach over the loop's
    /// lifetime (1 = direct wire, >1 = mux / crossbar).
    pub mux_ways: u64,
    /// Distinct banks touched by the copies within one group.
    pub distinct_banks: u64,
}

/// Cap on exact copy enumeration; beyond it we fall back to worst case.
const ENUM_CAP: u64 = 1 << 14;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Analyze an access to `array` in the given unroll context.
pub fn analyze(access: &Access, array: &ArrayDecl, ctx: &UnrollCtx) -> BankStats {
    let copies = ctx.copies();
    let dims = array.dims.len();
    let banks: Vec<u64> = (0..dims)
        .map(|d| array.partition.get(d).copied().unwrap_or(1).max(1))
        .collect();

    // Mux width: per dimension, how many banks one copy can reach across
    // the whole iteration space.
    let mut mux_ways = 1u64;
    for (d, b) in banks.iter().enumerate() {
        let reach = match access.idx.get(d) {
            Some(Idx::Const(_)) | None => 1,
            Some(Idx::Dynamic) => *b,
            Some(Idx::Affine { var, stride, .. }) => {
                // Copy `c` sees indices stride·(u·g + c) + offset as g
                // varies: a coset of ⟨stride·u⟩ in Z_b.
                let u = ctx.factor(var);
                let step = stride.unsigned_abs().wrapping_mul(u) % *b;
                // step = 0 means the copy is pinned to one bank.
                b / gcd(*b, if step == 0 { *b } else { step })
            }
        };
        mux_ways = mux_ways.saturating_mul(reach.max(1));
    }

    // Demand: enumerate the copies of one iteration group (g = 0) and count
    // collisions of their flat bank coordinates.
    let unrolled = ctx.unrolled_vars();
    let total: u64 = unrolled.iter().map(|(_, u)| *u).product::<u64>().max(1);
    if total > ENUM_CAP || access.idx.iter().any(|i| matches!(i, Idx::Dynamic)) {
        // Dynamic or huge: the tool must assume every copy can collide.
        return BankStats {
            copies,
            max_demand: copies,
            mux_ways,
            distinct_banks: 1,
        };
    }

    let mut counts = std::collections::HashMap::<Vec<u64>, u64>::new();
    let mut assignment = vec![0u64; unrolled.len()];
    loop {
        // Flat bank coordinate of this copy.
        let mut coord = Vec::with_capacity(dims);
        for (d, b) in banks.iter().enumerate() {
            let bank = match access.idx.get(d) {
                Some(Idx::Const(n)) => n.rem_euclid(*b as i64) as u64,
                // Dynamic was handled by the early return; missing dims act
                // like constants.
                Some(Idx::Dynamic) | None => 0,
                Some(Idx::Affine {
                    var,
                    stride,
                    offset,
                }) => {
                    let c = unrolled
                        .iter()
                        .position(|(v, _)| v == var)
                        .map(|i| assignment[i])
                        .unwrap_or(0);
                    (stride.wrapping_mul(c as i64) + offset).rem_euclid(*b as i64) as u64
                }
            };
            coord.push(bank);
        }
        *counts.entry(coord).or_insert(0) += 1;

        // Next copy assignment.
        let mut carry = true;
        for (slot, (_, u)) in assignment.iter_mut().zip(&unrolled) {
            if carry {
                *slot += 1;
                if *slot == *u {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }

    let max_demand = counts.values().copied().max().unwrap_or(1);
    let distinct_banks = counts.len() as u64;
    BankStats {
        copies,
        max_demand,
        mux_ways,
        distinct_banks,
    }
}

/// Concrete (flat bank) targets of each copy of an access in one group,
/// used by the port scheduler. Dynamic accesses map every copy to bank 0
/// (worst case).
pub fn copy_banks(access: &Access, array: &ArrayDecl, ctx: &UnrollCtx) -> Vec<u64> {
    let unrolled = ctx.unrolled_vars();
    let total: u64 = unrolled.iter().map(|(_, u)| *u).product::<u64>().max(1);
    let dims = array.dims.len();
    let banks: Vec<u64> = (0..dims)
        .map(|d| array.partition.get(d).copied().unwrap_or(1).max(1))
        .collect();
    if total > ENUM_CAP {
        return vec![0; ENUM_CAP as usize];
    }
    let mut out = Vec::with_capacity(total as usize);
    let mut assignment = vec![0u64; unrolled.len()];
    loop {
        let mut flat = 0u64;
        for (d, b) in banks.iter().enumerate() {
            let bank = match access.idx.get(d) {
                Some(Idx::Const(n)) => n.rem_euclid(*b as i64) as u64,
                Some(Idx::Dynamic) | None => 0,
                Some(Idx::Affine {
                    var,
                    stride,
                    offset,
                }) => {
                    let c = unrolled
                        .iter()
                        .position(|(v, _)| v == var)
                        .map(|i| assignment[i])
                        .unwrap_or(0);
                    (stride.wrapping_mul(c as i64) + offset).rem_euclid(*b as i64) as u64
                }
            };
            flat = flat * b + bank;
        }
        out.push(flat);
        let mut carry = true;
        for (slot, (_, u)) in assignment.iter_mut().zip(&unrolled) {
            if carry {
                *slot += 1;
                if *slot == *u {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
        }
        if carry {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArrayDecl;

    fn arr(banks: u64) -> ArrayDecl {
        ArrayDecl::new("a", 32, &[512]).partitioned(&[banks])
    }

    fn ctx(u: u64) -> UnrollCtx {
        let mut c = UnrollCtx::new();
        c.push("i", u);
        c
    }

    fn acc() -> Access {
        Access::new("a", vec![Idx::var("i")])
    }

    #[test]
    fn matched_unroll_and_banking_is_clean() {
        let s = analyze(&acc(), &arr(8), &ctx(8));
        assert_eq!(s.copies, 8);
        assert_eq!(s.max_demand, 1, "one access per bank");
        assert_eq!(s.mux_ways, 1, "direct wiring");
        assert_eq!(s.distinct_banks, 8);
    }

    #[test]
    fn unroll_without_banks_serializes() {
        let s = analyze(&acc(), &arr(1), &ctx(8));
        assert_eq!(s.max_demand, 8, "all copies pile on the single bank");
        assert_eq!(s.mux_ways, 1);
    }

    #[test]
    fn unroll_nine_on_eight_banks_needs_indirection() {
        // The Fig. 4b pitfall: 9 ∤ 8 — PE 0 must reach every bank, and two
        // copies collide on bank 0.
        let s = analyze(&acc(), &arr(8), &ctx(9));
        assert_eq!(s.max_demand, 2);
        assert_eq!(s.mux_ways, 8, "coset of ⟨9⟩ in Z₈ is everything");
    }

    #[test]
    fn unroll_below_banking_needs_moderate_mux() {
        // u = 4, B = 8: each PE reaches banks {c, c+4}.
        let s = analyze(&acc(), &arr(8), &ctx(4));
        assert_eq!(s.max_demand, 1);
        assert_eq!(s.mux_ways, 2);
    }

    #[test]
    fn constant_index_collides_across_copies() {
        let a = Access::new("a", vec![Idx::Const(0)]);
        let s = analyze(&a, &arr(8), &ctx(4));
        assert_eq!(s.max_demand, 4, "every copy reads bank 0");
        assert_eq!(s.mux_ways, 1);
    }

    #[test]
    fn dynamic_index_is_worst_case() {
        let a = Access::new("a", vec![Idx::Dynamic]);
        let s = analyze(&a, &arr(8), &ctx(4));
        assert_eq!(s.max_demand, 4);
        assert_eq!(s.mux_ways, 8);
    }

    #[test]
    fn sequential_loop_single_access() {
        let s = analyze(&acc(), &arr(4), &UnrollCtx::new());
        assert_eq!(s.copies, 1);
        assert_eq!(s.max_demand, 1);
        // One PE sweeps all four banks over time.
        assert_eq!(s.mux_ways, 4);
    }

    #[test]
    fn strided_access_reach() {
        // stride 2, u = 2 on 8 banks: step 4 → coset size 2.
        let a = Access::new("a", vec![Idx::affine("i", 2, 0)]);
        let s = analyze(&a, &arr(8), &ctx(2));
        assert_eq!(s.mux_ways, 2);
        assert_eq!(s.max_demand, 1);
    }

    #[test]
    fn multidim_banking() {
        let arr2 = ArrayDecl::new("m", 32, &[16, 16]).partitioned(&[2, 2]);
        let mut c = UnrollCtx::new();
        c.push("i", 2);
        c.push("j", 2);
        let a = Access::new("m", vec![Idx::var("i"), Idx::var("j")]);
        let s = analyze(&a, &arr2, &c);
        assert_eq!(s.copies, 4);
        assert_eq!(s.max_demand, 1);
        assert_eq!(s.distinct_banks, 4);
    }

    #[test]
    fn copy_banks_concrete() {
        let b = copy_banks(&acc(), &arr(8), &ctx(9));
        assert_eq!(b.len(), 9);
        assert_eq!(b[0], 0);
        assert_eq!(b[8], 0, "copy 8 wraps to bank 0");
    }
}
