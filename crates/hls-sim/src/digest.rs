//! Stable content digests for IR and estimate artifacts.
//!
//! The compilation service content-addresses every pipeline artifact, so
//! the IR and estimate types need a hash that is (a) independent of
//! `std::collections::HashMap` seeding and Rust's unstable `Hash` layout
//! guarantees, and (b) a pure function of the *semantic* content — two
//! structurally equal kernels always digest equally, across processes and
//! compilers. This module is that serde-free stable serialization: every
//! field is fed to a FNV-1a accumulator in a fixed documented order, with
//! length prefixes so concatenations cannot collide by reassociation.
//!
//! ```
//! use hls_sim::{ArrayDecl, Kernel};
//! use hls_sim::digest::StableDigest;
//!
//! let a = Kernel::new("k").array(ArrayDecl::new("x", 32, &[64]));
//! let b = Kernel::new("k").array(ArrayDecl::new("x", 32, &[64]));
//! assert_eq!(a.stable_digest(), b.stable_digest());
//! assert_ne!(a.stable_digest(), Kernel::new("k2").stable_digest());
//! ```

use crate::estimate::Estimate;
use crate::ir::{Access, ArrayDecl, Idx, Kernel, Loop, Op, Stmt};

/// 128-bit FNV-1a accumulator (two independent 64-bit lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fnv {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// A fresh accumulator.
    pub fn new() -> Fnv {
        // Distinct offsets decorrelate the two lanes.
        Fnv {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Absorb raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Fnv {
        for &x in b {
            self.lo = (self.lo ^ x as u64).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ (x as u64).rotate_left(17)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorb a length-prefixed string.
    pub fn str(&mut self, s: &str) -> &mut Fnv {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Absorb a `u64` as 8 little-endian bytes.
    pub fn u64(&mut self, v: u64) -> &mut Fnv {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb an `i64`.
    pub fn i64(&mut self, v: i64) -> &mut Fnv {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorb an `f64` by bit pattern (canonicalizing the zero sign).
    pub fn f64(&mut self, v: f64) -> &mut Fnv {
        let v = if v == 0.0 { 0.0 } else { v };
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Absorb a tag byte (enum discriminants, field separators).
    pub fn tag(&mut self, t: u8) -> &mut Fnv {
        self.bytes(&[t])
    }

    /// Finish: fold the two lanes into a 128-bit value.
    pub fn finish(&self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

/// Types with a stable, structure-derived content digest.
pub trait StableDigest {
    /// Feed this value's content into `h` in a fixed order.
    fn absorb(&self, h: &mut Fnv);

    /// The 128-bit digest of this value alone.
    fn stable_digest(&self) -> u128 {
        let mut h = Fnv::new();
        self.absorb(&mut h);
        h.finish()
    }
}

impl StableDigest for Kernel {
    fn absorb(&self, h: &mut Fnv) {
        h.tag(b'K')
            .str(&self.name)
            .f64(self.clock_mhz)
            .tag(self.pipeline as u8);
        h.u64(self.arrays.len() as u64);
        for a in &self.arrays {
            a.absorb(h);
        }
        h.u64(self.body.len() as u64);
        for s in &self.body {
            s.absorb(h);
        }
    }
}

impl StableDigest for ArrayDecl {
    fn absorb(&self, h: &mut Fnv) {
        h.tag(b'A')
            .str(&self.name)
            .u64(self.elem_bits as u64)
            .u64(self.ports as u64);
        h.u64(self.dims.len() as u64);
        for &d in &self.dims {
            h.u64(d);
        }
        h.u64(self.partition.len() as u64);
        for &p in &self.partition {
            h.u64(p);
        }
    }
}

impl StableDigest for Stmt {
    fn absorb(&self, h: &mut Fnv) {
        match self {
            Stmt::Loop(l) => {
                h.tag(b'L');
                l.absorb(h);
            }
            Stmt::Op(o) => {
                h.tag(b'O');
                o.absorb(h);
            }
        }
    }
}

impl StableDigest for Loop {
    fn absorb(&self, h: &mut Fnv) {
        h.str(&self.var).u64(self.trips).u64(self.unroll);
        h.u64(self.body.len() as u64);
        for s in &self.body {
            s.absorb(h);
        }
    }
}

impl StableDigest for Op {
    fn absorb(&self, h: &mut Fnv) {
        h.tag(self.kind as u8);
        h.u64(self.reads.len() as u64);
        for a in &self.reads {
            a.absorb(h);
        }
        h.u64(self.writes.len() as u64);
        for a in &self.writes {
            a.absorb(h);
        }
    }
}

impl StableDigest for Access {
    fn absorb(&self, h: &mut Fnv) {
        h.str(&self.array);
        h.u64(self.idx.len() as u64);
        for i in &self.idx {
            i.absorb(h);
        }
    }
}

impl StableDigest for Idx {
    fn absorb(&self, h: &mut Fnv) {
        match self {
            Idx::Affine {
                var,
                stride,
                offset,
            } => {
                h.tag(0).str(var).i64(*stride).i64(*offset);
            }
            Idx::Const(c) => {
                h.tag(1).i64(*c);
            }
            Idx::Dynamic => {
                h.tag(2);
            }
        }
    }
}

impl StableDigest for Estimate {
    fn absorb(&self, h: &mut Fnv) {
        h.tag(b'E')
            .str(&self.name)
            .u64(self.cycles)
            .u64(self.luts)
            .u64(self.ffs)
            .u64(self.dsps)
            .u64(self.brams)
            .u64(self.lut_mems)
            .tag(self.correct as u8);
        h.u64(self.notes.len() as u64);
        for n in &self.notes {
            h.str(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpKind;

    fn sample_kernel(unroll: u64) -> Kernel {
        Kernel::new("k")
            .array(ArrayDecl::new("a", 32, &[64]).partitioned(&[4]))
            .stmt(
                Loop::new("i", 64)
                    .unrolled(unroll)
                    .stmt(
                        Op::compute(OpKind::FMul)
                            .read(Access::new("a", vec![Idx::var("i")]))
                            .into_stmt(),
                    )
                    .into_stmt(),
            )
    }

    #[test]
    fn equal_structure_equal_digest() {
        assert_eq!(
            sample_kernel(4).stable_digest(),
            sample_kernel(4).stable_digest()
        );
    }

    #[test]
    fn digest_sees_every_layer() {
        let base = sample_kernel(4).stable_digest();
        assert_ne!(base, sample_kernel(2).stable_digest(), "unroll factor");
        let mut renamed = sample_kernel(4);
        renamed.arrays[0].name = "b".into();
        assert_ne!(base, renamed.stable_digest(), "array name");
        let mut reclocked = sample_kernel(4);
        reclocked.clock_mhz = 100.0;
        assert_ne!(base, reclocked.stable_digest(), "clock");
    }

    #[test]
    fn length_prefixes_prevent_reassociation() {
        // ["ab", "c"] vs ["a", "bc"] must not collide.
        let mut h1 = Fnv::new();
        h1.str("ab").str("c");
        let mut h2 = Fnv::new();
        h2.str("a").str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn estimate_digest_tracks_fields() {
        let e = crate::estimate(&sample_kernel(4));
        let mut e2 = e.clone();
        assert_eq!(e.stable_digest(), e2.stable_digest());
        e2.cycles += 1;
        assert_ne!(e.stable_digest(), e2.stable_digest());
    }
}
