//! The estimation backend: area and latency for a [`Kernel`].
//!
//! This is the stand-in for Vivado HLS's *estimation mode*, which the paper
//! used for its 32,000-point design-space exploration. The model charges
//! for exactly the mechanisms the paper identifies:
//!
//! * **datapath** — operator cost × number of unrolled copies;
//! * **bank indirection** — a mux per PE sized by how many banks it must
//!   reach ([`crate::bank::BankStats::mux_ways`], Fig. 3b);
//! * **port serialization** — the initiation interval produced by the
//!   greedy port scheduler ([`crate::schedule`]), Fig. 4a/4b;
//! * **leftover hardware** — bounds/epilogue logic when banking does not
//!   divide the array size or unrolling does not divide the trip count
//!   (Fig. 4c);
//! * **heuristic noise** — deterministic, seed-hashed area/latency jitter
//!   applied *only* to configurations that trigger serialization or
//!   leftover hardware, modelling the unpredictable interactions of
//!   scheduling heuristics. Clean configurations (the ones Dahlia accepts)
//!   are exactly reproducible and smooth.

use crate::bank::{analyze, UnrollCtx};
use crate::ir::{ArrayDecl, Kernel, Op, Stmt};
use crate::schedule::schedule_group;

/// Resource and latency estimate for one kernel configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Kernel name.
    pub name: String,
    /// Total cycle count.
    pub cycles: u64,
    /// Lookup tables.
    pub luts: u64,
    /// Flip-flops / registers.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// 18Kb block RAMs.
    pub brams: u64,
    /// LUTs used as distributed memory.
    pub lut_mems: u64,
    /// `false` when the simulated toolchain miscompiled the configuration
    /// (the unlabelled "incorrect hardware" points of Fig. 4b).
    pub correct: bool,
    /// Human-readable notes on what the toolchain had to synthesize.
    pub notes: Vec<String>,
}

impl Estimate {
    /// Wall-clock runtime at the given clock.
    pub fn runtime_ms(&self, clock_mhz: f64) -> f64 {
        self.cycles as f64 / (clock_mhz * 1e6) * 1e3
    }
}

/// An FPGA device, for utilization reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Device {
    /// Device name.
    pub name: &'static str,
    /// Available LUTs.
    pub luts: u64,
    /// Available flip-flops.
    pub ffs: u64,
    /// Available 18Kb BRAMs.
    pub brams: u64,
    /// Available DSP blocks.
    pub dsps: u64,
}

/// The UltraScale+ VU9P on an AWS F1 instance (the paper's target).
pub const VU9P: Device = Device {
    name: "xcvu9p",
    luts: 1_182_240,
    ffs: 2_364_480,
    brams: 4_320,
    dsps: 6_840,
};

impl Estimate {
    /// LUT utilization fraction on `dev`.
    pub fn lut_utilization(&self, dev: &Device) -> f64 {
        self.luts as f64 / dev.luts as f64
    }

    /// Does the design fit on `dev`?
    pub fn fits(&self, dev: &Device) -> bool {
        self.luts <= dev.luts
            && self.ffs <= dev.ffs
            && self.brams <= dev.brams
            && self.dsps <= dev.dsps
    }
}

/// Estimate a kernel (see module docs for the model).
pub fn estimate(k: &Kernel) -> Estimate {
    let mut w = Walker {
        kernel: k,
        ctx: UnrollCtx::new(),
        luts: 0,
        ffs: 0,
        dsps: 0,
        seed: k.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        }),
        messy: false,
        notes: Vec::new(),
    };

    // Memory area.
    let (brams, lut_mems, guard_luts) = memory_area(&k.arrays, &mut w.notes, &mut w.messy);
    w.luts += guard_luts;

    let mut cycles = 0u64;
    for s in &k.body {
        cycles += w.stmt(s);
    }
    // Kernel-level control overhead.
    w.luts += 120;
    w.ffs += w.luts * 3 / 5;

    // Deterministic heuristic jitter on messy configurations only.
    let mut luts = w.luts;
    let mut correct = true;
    if w.messy {
        let h = splitmix(w.seed);
        luts = luts * (97 + h % 16) / 100;
        cycles = cycles * (100 + splitmix(h) % 26) / 100;
        if splitmix(h ^ 0xbeef).is_multiple_of(7) {
            correct = false;
            w.notes.push("simulated toolchain miscompilation".into());
        }
    }

    Estimate {
        name: k.name.clone(),
        cycles: cycles.max(1),
        luts,
        ffs: w.ffs,
        dsps: w.dsps,
        brams,
        lut_mems,
        correct,
        notes: w.notes,
    }
}

/// BRAM / distributed-RAM allocation. Banks whose contents fit in ≤ 1024
/// bits become LUT memory, mirroring Vivado's distributed-RAM inference.
/// Returns `(brams, lut_mems, guard_luts)` — the last is the leftover-
/// element hardware for uneven banking (Fig. 4c).
fn memory_area(arrays: &[ArrayDecl], notes: &mut Vec<String>, messy: &mut bool) -> (u64, u64, u64) {
    let mut brams = 0u64;
    let mut lut_mems = 0u64;
    let mut guard_luts = 0u64;
    for a in arrays {
        let banks = a.total_banks();
        // Uneven banking pads each bank up to the ceiling.
        let bank_elems: u64 = a
            .dims
            .iter()
            .zip(&a.partition)
            .map(|(d, p)| d.div_ceil(*p.max(&1)))
            .product();
        let bank_bits = bank_elems * a.elem_bits as u64;
        if bank_bits <= 1024 {
            lut_mems += banks * bank_bits.div_ceil(64);
        } else {
            brams += banks * bank_bits.div_ceil(18_432);
        }
        if !a.evenly_banked() {
            *messy = true;
            // Per-bank bounds guards plus per-PE self-disable logic.
            guard_luts += banks * 26 + 48;
            notes.push(format!(
                "array `{}`: banking does not divide the size; banks padded and guarded",
                a.name
            ));
        }
    }
    (brams, lut_mems, guard_luts)
}

struct Walker<'a> {
    kernel: &'a Kernel,
    ctx: UnrollCtx,
    luts: u64,
    ffs: u64,
    dsps: u64,
    seed: u64,
    messy: bool,
    notes: Vec<String>,
}

/// Cycles of loop-entry/exit bookkeeping.
const LOOP_OVERHEAD: u64 = 2;

impl Walker<'_> {
    fn stmt(&mut self, s: &Stmt) -> u64 {
        match s {
            Stmt::Op(op) => self.op(op),
            Stmt::Loop(l) => {
                let u = l.unroll.min(l.trips.max(1)).max(1);
                self.seed ^= splitmix(l.trips.wrapping_mul(31).wrapping_add(u));
                self.ctx.push(&l.var, u);

                // Loop control: one FSM plus per-copy increment logic.
                let copies = self.ctx.copies();
                self.luts += 45 + 2 * (64 - l.trips.leading_zeros() as u64) + 8 * copies;

                let has_subloops = l.body.iter().any(|s| matches!(s, Stmt::Loop(_)));
                let groups = l.trips.div_ceil(u);
                if l.trips % u != 0 {
                    self.messy = true;
                    self.notes.push(format!(
                        "loop `{}`: unroll {} does not divide trip count {}; epilogue generated",
                        l.var, u, l.trips
                    ));
                    // The epilogue duplicates the body datapath once more.
                    self.luts += 60;
                }

                let cycles = if has_subloops {
                    let mut body = 0u64;
                    for s in &l.body {
                        body += self.stmt(s);
                    }
                    groups * (body + LOOP_OVERHEAD)
                } else {
                    // Innermost loop: pipeline with the port-scheduled II.
                    let ops: Vec<&Op> = l
                        .body
                        .iter()
                        .filter_map(|s| match s {
                            Stmt::Op(o) => Some(o),
                            Stmt::Loop(_) => None,
                        })
                        .collect();
                    let mut depth = 1u64;
                    for op in &ops {
                        depth += self.op_area(op);
                    }
                    let sched = schedule_group(&ops, &self.kernel.arrays, &self.ctx);
                    if sched.ii > 1 {
                        self.messy = true;
                        self.notes.push(format!(
                            "loop `{}`: bank ports force II = {}",
                            l.var, sched.ii
                        ));
                        // Arbitration hardware between copies and banks.
                        self.luts += sched.worst_queue * 20 * copies.min(64);
                    }
                    // Pipeline registers.
                    self.ffs += depth * copies * 12;
                    if self.kernel.pipeline {
                        // Every group takes `ii` cycles to issue its memory
                        // transactions (the port-constrained makespan), so
                        // a fully unrolled loop still pays its bandwidth.
                        depth + groups * sched.ii
                    } else {
                        groups * depth.max(sched.ii)
                    }
                };

                self.ctx.pop();
                cycles + LOOP_OVERHEAD
            }
        }
    }

    /// A straight-line op outside any innermost pipeline.
    fn op(&mut self, op: &Op) -> u64 {
        self.op_area(op)
    }

    /// Charge area for an op in the current context; return its latency
    /// contribution.
    fn op_area(&mut self, op: &Op) -> u64 {
        let copies = self.ctx.copies();
        self.luts += op.kind.luts() * copies;
        self.dsps += op.kind.dsps() * copies;
        let mut depth = op.kind.latency();
        for access in op.reads.iter().chain(&op.writes) {
            depth = depth.max(1);
            let Some(array) = self.kernel.array_named(&access.array) else {
                continue;
            };
            let stats = analyze(access, array, &self.ctx);
            if stats.mux_ways > 1 {
                // K-way bank indirection per copy (Fig. 3b / Fig. 5).
                let sel_bits = 64 - (stats.mux_ways - 1).leading_zeros() as u64;
                self.luts += copies * sel_bits * (array.elem_bits as u64) / 2;
                self.notes.push(format!(
                    "access to `{}`: {}-way bank mux per PE",
                    access.array, stats.mux_ways
                ));
            }
            if stats.max_demand > array.ports as u64 {
                self.messy = true;
            }
            // Address adapter for non-trivial offsets.
            if let Some(crate::ir::Idx::Affine { stride, offset, .. }) = access.idx.first() {
                if *stride != 1 || *offset != 0 {
                    self.luts += copies * 9;
                }
            }
            self.seed ^= splitmix(stats.copies * 7 + stats.mux_ways * 131 + stats.max_demand);
        }
        depth
    }
}

/// SplitMix64 — deterministic hash for the heuristic-noise model.
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Access, ArrayDecl, Idx, Kernel, Loop, Op, OpKind};

    /// A 1-D vector-scale kernel: `for i in 0..n unroll u { b[i] = 2*a[i] }`
    /// with both arrays partitioned `banks` ways.
    fn vscale(n: u64, banks: u64, unroll: u64) -> Kernel {
        Kernel::new(format!("vscale-{n}-{banks}-{unroll}"))
            .array(ArrayDecl::new("a", 32, &[n]).partitioned(&[banks]))
            .array(ArrayDecl::new("b", 32, &[n]).partitioned(&[banks]))
            .stmt(
                Loop::new("i", n)
                    .unrolled(unroll)
                    .stmt(
                        Op::compute(OpKind::IntMul)
                            .read(Access::new("a", vec![Idx::var("i")]))
                            .write(Access::new("b", vec![Idx::var("i")]))
                            .into_stmt(),
                    )
                    .into_stmt(),
            )
    }

    #[test]
    fn estimates_are_deterministic() {
        let k = vscale(512, 8, 9);
        assert_eq!(estimate(&k), estimate(&k));
    }

    #[test]
    fn matched_unroll_scales_performance() {
        let base = estimate(&vscale(512, 1, 1));
        let fast = estimate(&vscale(512, 8, 8));
        assert!(
            (fast.cycles as f64) < base.cycles as f64 / 4.0,
            "8-way banking+unroll must speed up ≥4×: {} vs {}",
            fast.cycles,
            base.cycles
        );
        assert!(fast.luts > base.luts, "more PEs cost more area");
    }

    #[test]
    fn unroll_without_banks_gives_no_speedup() {
        // Fig. 4a: PEs serialize on the single bank. A read and a write per
        // copy share one port, so latency can even regress.
        let base = estimate(&vscale(512, 1, 1));
        let wide = estimate(&vscale(512, 1, 8));
        assert!(
            wide.cycles * 10 >= base.cycles * 9,
            "no real speedup expected: {} vs {}",
            wide.cycles,
            base.cycles
        );
        assert!(wide.luts > base.luts, "but area still grows");
        assert!(!wide.notes.is_empty());
    }

    #[test]
    fn mismatched_unroll_is_worse_than_matched() {
        // Fig. 4b at partition 8: unroll 9 vs unroll 8.
        let eight = estimate(&vscale(576, 8, 8));
        let nine = estimate(&vscale(576, 8, 9));
        assert!(
            nine.cycles > eight.cycles,
            "{} vs {}",
            nine.cycles,
            eight.cycles
        );
        assert!(nine.luts > eight.luts, "indirection muxes cost area");
    }

    #[test]
    fn uneven_banking_pays_leftover_hardware() {
        // Fig. 4c: banking 7 does not divide 512.
        let even = estimate(&vscale(512, 8, 8));
        let uneven = estimate(&vscale(512, 7, 7));
        assert!(
            uneven.notes.iter().any(|n| n.contains("padded")),
            "{:?}",
            uneven.notes
        );
        // Per-PE area is larger despite fewer PEs.
        assert!(uneven.luts * 8 > even.luts * 7);
    }

    #[test]
    fn clean_configs_have_no_notes_or_jitter() {
        let e = estimate(&vscale(512, 4, 4));
        assert!(e.correct);
        assert!(
            e.notes.iter().all(|n| !n.contains("II")),
            "matched config must not serialize: {:?}",
            e.notes
        );
    }

    #[test]
    fn bram_and_lutram_split() {
        let big = estimate(&vscale(4096, 1, 1));
        assert!(big.brams > 0);
        assert_eq!(big.lut_mems, 0);
        let tiny = estimate(&vscale(16, 1, 1));
        assert_eq!(tiny.brams, 0);
        assert!(tiny.lut_mems > 0);
    }

    #[test]
    fn runtime_conversion() {
        let e = estimate(&vscale(512, 1, 1));
        let ms = e.runtime_ms(250.0);
        assert!((ms - e.cycles as f64 / 250e3).abs() < 1e-9);
    }

    #[test]
    fn fits_on_vu9p() {
        let e = estimate(&vscale(512, 8, 8));
        assert!(e.fits(&VU9P));
        assert!(e.lut_utilization(&VU9P) < 0.05);
    }

    #[test]
    fn nested_loops_multiply() {
        let inner = Loop::new("j", 8).stmt(Op::compute(OpKind::FMul).into_stmt());
        let outer = Loop::new("i", 8).stmt(inner.into_stmt());
        let k = Kernel::new("nest").stmt(outer.into_stmt());
        let e = estimate(&k);
        // 8 × (inner ≈ 8·depth) — at least 64 cycles of work.
        assert!(e.cycles > 64, "{}", e.cycles);
    }

    #[test]
    fn some_messy_points_miscompile() {
        // Sweep mismatched unrolls over a few sizes; the deterministic hash
        // should flag at least one configuration as miscompiled, and never
        // a clean one.
        let mut bad = 0;
        for n in [7 * 16 * 9, 5 * 16 * 9, 1008] {
            for u in 2..=16 {
                if !estimate(&vscale(n, 8, u)).correct {
                    bad += 1;
                }
            }
        }
        for u in [1, 2, 4, 8] {
            assert!(estimate(&vscale(512, 8, u)).correct);
        }
        assert!(bad >= 1, "expected at least one simulated miscompilation");
    }
}
