//! The kernel IR consumed by the HLS toolchain simulator.
//!
//! A [`Kernel`] is a loop nest over partitioned arrays — the level of
//! abstraction at which a traditional HLS tool makes its banking,
//! scheduling, and binding decisions. Both the Dahlia backend (lowering a
//! typed surface program) and the MachSuite baselines (hand-built, standing
//! in for the original C with `#pragma HLS` annotations) produce this IR.

/// A complete kernel: arrays plus a loop-nest body.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name (reported in estimates).
    pub name: String,
    /// Array declarations (on-chip memories).
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Target clock in MHz (the paper synthesizes at 250 MHz).
    pub clock_mhz: f64,
    /// Pipeline innermost loops (HLS default behaviour).
    pub pipeline: bool,
}

impl Kernel {
    /// A kernel with the given name and defaults matching the paper's
    /// experimental setup.
    pub fn new(name: impl Into<String>) -> Kernel {
        Kernel {
            name: name.into(),
            arrays: Vec::new(),
            body: Vec::new(),
            clock_mhz: 250.0,
            pipeline: true,
        }
    }

    /// Add an array and return `self` for chaining.
    pub fn array(mut self, a: ArrayDecl) -> Kernel {
        self.arrays.push(a);
        self
    }

    /// Add a top-level statement and return `self` for chaining.
    pub fn stmt(mut self, s: Stmt) -> Kernel {
        self.body.push(s);
        self
    }

    /// Find an array by name.
    pub fn array_named(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

/// An on-chip array with cyclic partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// Element width in bits.
    pub elem_bits: u32,
    /// Dimension sizes, outermost first.
    pub dims: Vec<u64>,
    /// Cyclic partitioning factor per dimension (1 = unpartitioned).
    pub partition: Vec<u64>,
    /// Read/write ports per bank (BRAMs have 1 or 2).
    pub ports: u32,
}

impl ArrayDecl {
    /// An unpartitioned single-ported array.
    pub fn new(name: impl Into<String>, elem_bits: u32, dims: &[u64]) -> ArrayDecl {
        ArrayDecl {
            name: name.into(),
            elem_bits,
            dims: dims.to_vec(),
            partition: vec![1; dims.len()],
            ports: 1,
        }
    }

    /// Set cyclic partition factors (one per dimension).
    pub fn partitioned(mut self, factors: &[u64]) -> ArrayDecl {
        assert_eq!(factors.len(), self.dims.len(), "one factor per dimension");
        self.partition = factors.to_vec();
        self
    }

    /// Set the per-bank port count.
    pub fn with_ports(mut self, ports: u32) -> ArrayDecl {
        self.ports = ports;
        self
    }

    /// Total number of banks.
    pub fn total_banks(&self) -> u64 {
        self.partition.iter().product::<u64>().max(1)
    }

    /// Total number of elements.
    pub fn total_elems(&self) -> u64 {
        self.dims.iter().product::<u64>().max(1)
    }

    /// Does every partition factor evenly divide its dimension?
    ///
    /// When it does not, the HLS tool silently pads banks and adds
    /// bounds-handling hardware (the Fig. 4c pitfall).
    pub fn evenly_banked(&self) -> bool {
        self.dims
            .iter()
            .zip(&self.partition)
            .all(|(d, p)| d % p.max(&1) == 0)
    }
}

/// A statement: a loop or a straight-line operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A counted loop.
    Loop(Loop),
    /// A compute operation with its memory accesses.
    Op(Op),
}

/// A counted loop with an unroll directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    /// Iterator name (referenced by [`Idx::var`]).
    pub var: String,
    /// Trip count.
    pub trips: u64,
    /// `#pragma HLS UNROLL FACTOR=` equivalent.
    pub unroll: u64,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl Loop {
    /// A sequential loop.
    pub fn new(var: impl Into<String>, trips: u64) -> Loop {
        Loop {
            var: var.into(),
            trips,
            unroll: 1,
            body: Vec::new(),
        }
    }

    /// Set the unroll factor.
    pub fn unrolled(mut self, factor: u64) -> Loop {
        self.unroll = factor.max(1);
        self
    }

    /// Append a body statement.
    pub fn stmt(mut self, s: Stmt) -> Loop {
        self.body.push(s);
        self
    }

    /// Wrap into a [`Stmt`].
    pub fn into_stmt(self) -> Stmt {
        Stmt::Loop(self)
    }
}

/// Operation kinds with distinct datapath costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer add/sub/compare.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating add/sub.
    FAdd,
    /// Floating multiply.
    FMul,
    /// Floating divide / sqrt (long latency).
    FDiv,
    /// Bitwise logic / select.
    Logic,
    /// Pure data movement.
    Copy,
}

impl OpKind {
    /// Pipeline latency in cycles.
    pub fn latency(self) -> u64 {
        match self {
            OpKind::IntAlu => 1,
            OpKind::IntMul => 3,
            OpKind::FAdd => 4,
            OpKind::FMul => 4,
            OpKind::FDiv => 16,
            OpKind::Logic => 1,
            OpKind::Copy => 0,
        }
    }

    /// LUT cost per instance (32-bit datapath).
    pub fn luts(self) -> u64 {
        match self {
            OpKind::IntAlu => 40,
            OpKind::IntMul => 90,
            OpKind::FAdd => 220,
            OpKind::FMul => 130,
            OpKind::FDiv => 800,
            OpKind::Logic => 16,
            OpKind::Copy => 0,
        }
    }

    /// DSP blocks per instance.
    pub fn dsps(self) -> u64 {
        match self {
            OpKind::IntMul => 3,
            OpKind::FAdd => 2,
            OpKind::FMul => 3,
            OpKind::FDiv => 0,
            _ => 0,
        }
    }
}

/// A compute operation: `kind` applied to values read from `reads`,
/// written to `writes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Datapath operation.
    pub kind: OpKind,
    /// Memory reads feeding the op.
    pub reads: Vec<Access>,
    /// Memory writes of the result.
    pub writes: Vec<Access>,
}

impl Op {
    /// A compute op with no memory traffic.
    pub fn compute(kind: OpKind) -> Op {
        Op {
            kind,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Add a read access.
    pub fn read(mut self, a: Access) -> Op {
        self.reads.push(a);
        self
    }

    /// Add a write access.
    pub fn write(mut self, a: Access) -> Op {
        self.writes.push(a);
        self
    }

    /// Wrap into a [`Stmt`].
    pub fn into_stmt(self) -> Stmt {
        Stmt::Op(self)
    }
}

/// A (multi-dimensional) array access with one index pattern per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Array name.
    pub array: String,
    /// Index pattern per dimension.
    pub idx: Vec<Idx>,
}

impl Access {
    /// Build an access.
    pub fn new(array: impl Into<String>, idx: Vec<Idx>) -> Access {
        Access {
            array: array.into(),
            idx,
        }
    }
}

/// An affine (or opaque) index pattern for one dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum Idx {
    /// `stride * var + offset`.
    Affine {
        /// Loop iterator driving this index.
        var: String,
        /// Multiplier.
        stride: i64,
        /// Additive constant.
        offset: i64,
    },
    /// A compile-time constant.
    Const(i64),
    /// Data-dependent / unanalyzable (the tool assumes any bank).
    Dynamic,
}

impl Idx {
    /// `var` with stride 1, offset 0.
    pub fn var(v: impl Into<String>) -> Idx {
        Idx::Affine {
            var: v.into(),
            stride: 1,
            offset: 0,
        }
    }

    /// `stride * var + offset`.
    pub fn affine(v: impl Into<String>, stride: i64, offset: i64) -> Idx {
        Idx::Affine {
            var: v.into(),
            stride,
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_banks_and_evenness() {
        let a = ArrayDecl::new("m", 32, &[512, 512]).partitioned(&[8, 1]);
        assert_eq!(a.total_banks(), 8);
        assert_eq!(a.total_elems(), 512 * 512);
        assert!(a.evenly_banked());
        let b = ArrayDecl::new("m", 32, &[512]).partitioned(&[7]);
        assert!(!b.evenly_banked());
    }

    #[test]
    fn builders_compose() {
        let k = Kernel::new("k")
            .array(ArrayDecl::new("a", 32, &[16]).partitioned(&[2]))
            .stmt(
                Loop::new("i", 16)
                    .unrolled(2)
                    .stmt(
                        Op::compute(OpKind::IntAlu)
                            .read(Access::new("a", vec![Idx::var("i")]))
                            .into_stmt(),
                    )
                    .into_stmt(),
            );
        assert_eq!(k.arrays.len(), 1);
        assert!(k.array_named("a").is_some());
        assert!(k.array_named("b").is_none());
    }

    #[test]
    fn op_kind_costs_ordered() {
        assert!(OpKind::FDiv.latency() > OpKind::FMul.latency());
        assert!(OpKind::FAdd.luts() > OpKind::IntAlu.luts());
        assert_eq!(OpKind::Copy.luts(), 0);
    }
}
