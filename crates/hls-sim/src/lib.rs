//! # hls-sim
//!
//! A simulator for a *traditional* high-level-synthesis toolchain — the
//! substrate the Dahlia paper evaluates against (Xilinx Vivado HLS /
//! SDAccel targeting an UltraScale+ VU9P on AWS F1).
//!
//! The simulator consumes a loop-nest IR with per-array cyclic partitioning
//! and per-loop unroll directives (the moral equivalent of
//! `#pragma HLS ARRAY_PARTITION` and `#pragma HLS UNROLL`) and produces the
//! estimates the paper's figures are drawn from: cycles, LUTs, FFs, DSPs,
//! BRAMs, and LUT memories.
//!
//! It reproduces the paper's predictability pitfalls *mechanistically*:
//! bank-port serialization, PE↔bank indirection muxes, and leftover-element
//! hardware — plus deterministic "heuristic noise" on exactly those
//! configurations, so Dahlia-accepted (clean) points stay smooth.
//!
//! ```
//! use hls_sim::{estimate, Access, ArrayDecl, Idx, Kernel, Loop, Op, OpKind};
//!
//! let k = Kernel::new("axpy")
//!     .array(ArrayDecl::new("x", 32, &[1024]).partitioned(&[4]))
//!     .stmt(
//!         Loop::new("i", 1024)
//!             .unrolled(4)
//!             .stmt(Op::compute(OpKind::FMul)
//!                 .read(Access::new("x", vec![Idx::var("i")]))
//!                 .write(Access::new("x", vec![Idx::var("i")]))
//!                 .into_stmt())
//!             .into_stmt(),
//!     );
//! let e = estimate(&k);
//! assert!(e.correct);
//! assert!(e.cycles < 1024);
//! ```

pub mod bank;
pub mod digest;
pub mod estimate;
pub mod ir;
pub mod schedule;

pub use bank::{analyze, BankStats, UnrollCtx};
pub use digest::{Fnv, StableDigest};
pub use estimate::{estimate, Device, Estimate, VU9P};
pub use ir::{Access, ArrayDecl, Idx, Kernel, Loop, Op, OpKind, Stmt};
pub use schedule::{schedule_group, GroupSchedule};
